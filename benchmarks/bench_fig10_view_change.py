"""Figure 10: throughput of PoE and PBFT across a primary failure.

The paper lets the primary run for a while, crashes it, and plots system
throughput over time: steady throughput, a dip to zero while clients and
replicas time out and run the view-change, then recovery under the new
primary.  This benchmark reproduces that timeline for both PoE and PBFT
(the paper omits Zyzzyva/SBFT because a single failure already cripples
them, and HotStuff because it changes primaries every round).
"""

import pytest

from repro.bench.report import print_series
from repro.fabric.timeline import run_view_change_timeline


def run_timeline(protocol: str, scale):
    num_replicas = 32 if 32 in scale.replica_counts else max(scale.replica_counts)
    duration = scale.view_change_duration_ms
    return run_view_change_timeline(
        protocol=protocol,
        num_replicas=num_replicas,
        batch_size=100,
        crash_at_ms=duration * 0.25,
        duration_ms=duration,
        request_timeout_ms=duration * 0.075,
        bucket_ms=duration / 16,
        client_outstanding=8,
    )


@pytest.mark.parametrize("protocol", ["poe", "pbft"])
def test_figure10_view_change_timeline(benchmark, scale, protocol):
    timeline = benchmark.pedantic(run_timeline, args=(protocol, scale),
                                  rounds=1, iterations=1)
    buckets = timeline.timeline.buckets
    crash_bucket = int(timeline.primary_crash_ms // timeline.timeline.bucket_ms)
    before = max(buckets[:crash_bucket])
    dip = min(buckets[crash_bucket:crash_bucket + 6])
    after = buckets[-1]
    assert timeline.view_changes_completed >= 1, "the view-change must complete"
    assert timeline.new_view >= 1
    assert dip < before * 0.2, "throughput must dip during the view-change"
    assert after > before * 0.5, "throughput must recover under the new primary"
    print_series(
        f"Figure 10 — {timeline.protocol} throughput across a primary failure "
        f"(crash at {timeline.primary_crash_ms / 1000.0:.2f}s, "
        f"{timeline.view_changes_completed} view-change)",
        timeline.series(),
    )
