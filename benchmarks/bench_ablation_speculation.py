"""Ablation: how much does non-divergent speculative execution buy?

Not a figure from the paper, but a direct measurement of its ingredient I1:
``poe-nospec`` is PoE with speculation disabled — replicas run an extra
PBFT-style commit phase after the view-commit before executing.  Comparing
PoE, PoE-NoSpec and PBFT isolates the contribution of speculation from the
contribution of linear communication:

* PoE vs PoE-NoSpec  — the value of executing at view-commit time
  (one less phase of latency on the critical path);
* PoE-NoSpec vs PBFT — the value of the linear SUPPORT/CERTIFY exchange
  versus PBFT's two all-to-all phases.
"""


from repro.bench.report import print_results
from repro.fabric.experiments import ExperimentConfig, run_experiment

PROTOCOLS = ["poe", "poe-nospec", "pbft"]


def run_ablation(scale):
    rows = []
    results = {}
    for n in scale.replica_counts:
        for protocol in PROTOCOLS:
            config = ExperimentConfig(
                protocol=protocol,
                num_replicas=n,
                batch_size=100,
                num_batches=scale.num_batches,
                single_backup_failure=True,
            )
            result = run_experiment(config)
            results[(protocol, n)] = result
            rows.append({
                "protocol": result.protocol,
                "n": n,
                "throughput_txn_per_s": round(result.throughput_txn_per_s),
                "latency_ms": round(result.avg_latency_ms, 2),
            })
    return rows, results


def test_ablation_speculative_execution(benchmark, scale):
    rows, results = benchmark.pedantic(run_ablation, args=(scale,), rounds=1,
                                       iterations=1)
    for n in scale.replica_counts:
        poe = results[("poe", n)]
        nospec = results[("poe-nospec", n)]
        # Removing speculation must not improve latency: the extra commit
        # phase adds at least one message delay to the critical path.
        assert poe.avg_latency_ms <= nospec.avg_latency_ms
        # And PoE's throughput should be at least as good as the ablated
        # variant (the extra phase costs CPU and bandwidth as well).
        assert poe.throughput_txn_per_s >= nospec.throughput_txn_per_s * 0.95
    print_results("Ablation — speculative execution (ingredient I1), "
                  "single backup failure", rows)
