"""Figures 9(e)-(h): scalability under zero payload.

Zero-payload proposals remove the primary's bandwidth bottleneck: replicas
still execute ``batch_size`` dummy instructions per slot but the PROPOSE
message carries no request data.  The paper's observation: PoE's margin
over PBFT and SBFT widens, and in the failure-free case PoE becomes
comparable to Zyzzyva.
"""


from repro.bench.report import print_results
from repro.fabric.experiments import ExperimentConfig, run_experiment
from repro.fabric.registry import protocol_names


def run_sweep(scale, single_backup_failure: bool):
    rows = []
    results = {}
    for n in scale.replica_counts:
        for protocol in protocol_names():
            config = ExperimentConfig(
                protocol=protocol,
                num_replicas=n,
                batch_size=100,
                num_batches=scale.num_batches,
                single_backup_failure=single_backup_failure,
                zero_payload=True,
            )
            result = run_experiment(config)
            results[(protocol, n)] = result
            rows.append({
                "protocol": result.protocol,
                "n": n,
                "throughput_txn_per_s": round(result.throughput_txn_per_s),
                "latency_ms": round(result.avg_latency_ms, 2),
            })
    return rows, results


def test_figure9ef_zero_payload_single_failure(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_sweep, args=(scale, True), rounds=1, iterations=1)
    for n in scale.replica_counts:
        if n < 16:
            continue
        poe = results[("poe", n)].throughput_txn_per_s
        assert poe > results[("pbft", n)].throughput_txn_per_s
        assert poe > 5 * results[("zyzzyva", n)].throughput_txn_per_s
    print_results("Figure 9(e,f) — zero payload, single backup failure", rows)


def test_figure9gh_zero_payload_no_failures(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_sweep, args=(scale, False), rounds=1, iterations=1)
    for n in scale.replica_counts:
        if n < 16:
            continue
        poe = results[("poe", n)].throughput_txn_per_s
        zyzzyva = results[("zyzzyva", n)].throughput_txn_per_s
        assert poe > results[("pbft", n)].throughput_txn_per_s
        assert poe > results[("hotstuff", n)].throughput_txn_per_s
        # Zero payload brings PoE within a factor ~2 of Zyzzyva's fast path.
        assert poe > zyzzyva * 0.4
    print_results("Figure 9(g,h) — zero payload, no failures", rows)
