"""Figure 8: effect of the cryptographic signature scheme.

The paper runs PBFT with 16 replicas under three configurations: no
signatures at all ("None"), ED25519 digital signatures everywhere ("ED"),
and CMAC+AES between replicas with ED25519 clients ("CMAC").  The shape to
reproduce: None > CMAC > ED in throughput, reversed for latency.
"""


from repro.bench.report import print_results
from repro.crypto.cost import CryptoCostModel
from repro.fabric.experiments import ExperimentConfig, build_cluster

CONFIGURATIONS = {
    "None": CryptoCostModel.none(),
    "ED": CryptoCostModel.digital_signatures(),
    "CMAC": CryptoCostModel.cmac(),
}


def run_pbft_with(cost_model, num_batches):
    config = ExperimentConfig(protocol="pbft", num_replicas=16, batch_size=100,
                              num_batches=num_batches)
    cluster = build_cluster(config, cost_model=cost_model)
    cluster.start()
    cluster.run_until_done(max_ms=600_000)
    return cluster.result(metadata={"signature_scheme": True})


def test_figure8_signature_schemes(benchmark, scale):
    def run_all():
        return {name: run_pbft_with(model, scale.num_batches)
                for name, model in CONFIGURATIONS.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    throughput = {name: r.throughput_txn_per_s for name, r in results.items()}
    # Shape check from the paper: no crypto is fastest, signatures everywhere
    # slowest, MACs in between.
    assert throughput["None"] > throughput["CMAC"] > throughput["ED"]
    rows = [
        {"scheme": name,
         "throughput_txn_per_s": round(result.throughput_txn_per_s),
         "latency_ms": round(result.avg_latency_ms, 2)}
        for name, result in results.items()
    ]
    print_results("Figure 8 — PBFT (n=16) under different signature schemes", rows)
