"""Figure 1: comparison of BFT consensus protocols.

Regenerates the paper's protocol-comparison table (phases, messages,
resilience, requirements) from the static metadata attached to each
protocol implementation.
"""

from repro.bench.report import print_results
from repro.fabric.registry import get_spec

#: Order in which the paper's Figure 1 lists the protocols.
FIGURE_1_ORDER = ["zyzzyva", "poe", "pbft", "hotstuff", "sbft"]


def figure1_rows():
    rows = []
    for key in FIGURE_1_ORDER:
        info = get_spec(key).info
        rows.append({
            "protocol": info.name,
            "phases": info.phases,
            "messages": info.messages,
            "resilience": info.resilience,
            "requirements": info.requirements or "-",
        })
    return rows


def test_figure1_protocol_table(benchmark):
    rows = benchmark.pedantic(figure1_rows, rounds=1, iterations=1)
    assert len(rows) == 5
    by_name = {row["protocol"]: row for row in rows}
    assert by_name["PoE"]["phases"] == 3
    assert by_name["PBFT"]["messages"] == "O(n + 2n^2)"
    assert by_name["Zyzzyva"]["resilience"] == "0"
    print_results("Figure 1 — Comparison of BFT consensus protocols", rows,
                  columns=["protocol", "phases", "messages", "resilience",
                           "requirements"])
