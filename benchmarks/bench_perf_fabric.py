"""Wall-clock performance of the simulation fabric (not a paper figure).

Every paper figure is regenerated on the pure-Python discrete-event
simulator, so simulator overhead — not protocol cost — caps how many
replicas, batches and scenarios the suite can sweep.  This benchmark
measures that overhead directly: raw scheduler events per wall second,
end-to-end cluster runs across protocols and replica counts, and a
determinism check (same seed, byte-identical outcome).

The results are written to ``BENCH_simperf.json`` at the repository root
(override the location with ``REPRO_BENCH_PERF_PATH``) so that future
performance work is compared against a recorded baseline.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_perf_fabric.py``
or through pytest like the figure benchmarks.
"""

import os
import sys

if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.perf import current_perf_scale, run_suite, write_report
from repro.bench.report import print_results

#: Columns reported for the per-cluster rows.
_CLUSTER_COLUMNS = (
    "protocol", "n", "total_batches", "wall_s", "processed_events",
    "events_per_wall_sec", "txns_per_wall_sec", "virtual_throughput_txn_per_s",
)


def perf_report_path() -> str:
    """Resolve the output path (repo root unless overridden by env)."""
    override = os.environ.get("REPRO_BENCH_PERF_PATH")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_simperf.json")


def run_and_record() -> dict:
    results = run_suite(current_perf_scale())
    write_report(results, perf_report_path())
    return results


def test_simulation_fabric_perf():
    results = run_and_record()
    assert results["determinism"]["ok"], (
        "same-seed cluster runs diverged: " + str(results["determinism"]))
    assert results["event_loop"]["events_per_sec"] > 0
    assert all(row["completed_txns"] > 0 for row in results["clusters"])
    print_results(
        f"Simulation-fabric wall-clock performance (scale: {results['scale']})",
        results["clusters"], columns=_CLUSTER_COLUMNS)
    print_results(
        "Raw event loop (schedule + drain)",
        [{"num_events": results["event_loop"]["num_events"],
          "events_per_sec": results["event_loop"]["events_per_sec"],
          "cancel_mix_events_per_sec":
              results["event_loop"]["cancellation_mix"]["events_per_sec"]}])


if __name__ == "__main__":
    recorded = run_and_record()
    loop = recorded["event_loop"]
    print(f"event loop: {loop['events_per_sec']:,.0f} events/s")
    for row in recorded["clusters"]:
        print(f"{row['protocol']} n={row['n']}: "
              f"{row['events_per_wall_sec']:,.0f} events/s (wall)")
    print(f"determinism ok: {recorded['determinism']['ok']}")
    print(f"wrote {perf_report_path()}")
    # A same-seed divergence must fail the smoke run, not just be recorded.
    if not recorded["determinism"]["ok"]:
        raise SystemExit(1)
