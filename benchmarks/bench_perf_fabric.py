"""Wall-clock performance of the simulation fabric (not a paper figure).

Every paper figure is regenerated on the pure-Python discrete-event
simulator, so simulator overhead — not protocol cost — caps how many
replicas, batches and scenarios the suite can sweep.  This benchmark
measures that overhead directly: raw scheduler events per wall second,
end-to-end cluster runs across protocols and replica counts (including
the large-n MAC-mode rows, n up to 128), and a determinism check (same
seed, byte-identical outcome).

The results are written to ``BENCH_simperf.json`` at the repository root
(override the location with ``REPRO_BENCH_PERF_PATH`` or ``--output``)
so that future performance work is compared against a recorded baseline.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_perf_fabric.py``
or through pytest like the figure benchmarks.  Standalone extras:

* ``--profile PROTOCOL:N`` — cProfile one row and print the top-25
  cumulative entries (the hot list for the next perf PR); sharded row
  labels work too (``--profile poe-2sh-x20:4`` profiles the sequential
  sharded run, N = replicas per shard, and appends the per-shard
  ``processed_events`` breakdown);
* ``--shards K`` — measure only the sharded rows with K PoE consensus
  groups (cross-shard fractions 0.0 and 0.2) and exit;
* ``--parallel`` — same-host sequential-vs-parallel comparison over the
  sharded rows (2/4/8 shards, one worker process per shard): asserts the
  per-shard event counts are driver-identical and prints the wall-clock
  speedup per row.  Real speedups need real cores — on a single-core
  host the workers time-slice and the row degrades to IPC overhead;
* ``--compare BASELINE.json`` — same-host HEAD-vs-baseline delta mode:
  run the suite, print per-row speedups against the recorded baseline
  and do **not** overwrite it (wall-clock numbers are host-relative, so
  re-recording on a different/noisy host would poison the baseline);
* ``--check-events EXPECTATIONS.json`` — behaviour guard for CI: fail if
  ``processed_events`` deviates from the checked-in expectations on any
  row (see ``benchmarks/PERF_EXPECTATIONS.json``).
"""

import argparse
import json
import os
import sys

if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.perf import (
    check_processed_events,
    compare_reports,
    current_perf_scale,
    measure_parallel_speedup,
    measure_sharded_cluster,
    profile_row,
    run_suite,
    write_report,
)
from repro.bench.report import print_results

#: Columns reported for the per-cluster rows.
_CLUSTER_COLUMNS = (
    "protocol", "n", "total_batches", "wall_s", "processed_events",
    "events_per_wall_sec", "txns_per_wall_sec", "virtual_throughput_txn_per_s",
)


def perf_report_path() -> str:
    """Resolve the output path (repo root unless overridden by env)."""
    override = os.environ.get("REPRO_BENCH_PERF_PATH")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_simperf.json")


def run_and_record() -> dict:
    results = run_suite(current_perf_scale())
    write_report(results, perf_report_path())
    return results


def test_simulation_fabric_perf():
    results = run_and_record()
    assert results["determinism"]["ok"], (
        "same-seed cluster runs diverged: " + str(results["determinism"]))
    assert results["event_loop"]["events_per_sec"] > 0
    assert all(row["completed_txns"] > 0 for row in results["clusters"])
    print_results(
        f"Simulation-fabric wall-clock performance (scale: {results['scale']})",
        results["clusters"], columns=_CLUSTER_COLUMNS)
    print_results(
        "Raw event loop (schedule + drain)",
        [{"num_events": results["event_loop"]["num_events"],
          "events_per_sec": results["event_loop"]["events_per_sec"],
          "cancel_mix_events_per_sec":
              results["event_loop"]["cancellation_mix"]["events_per_sec"]}])


def _print_summary(results: dict) -> None:
    loop = results["event_loop"]
    print(f"event loop: {loop['events_per_sec']:,.0f} events/s")
    for row in results["clusters"]:
        print(f"{row['protocol']} n={row['n']}: "
              f"{row['events_per_wall_sec']:,.0f} events/s (wall)")
    print(f"determinism ok: {results['determinism']['ok']}")


def _print_delta(delta: dict) -> None:
    if delta["event_loop_speedup"] is not None:
        print(f"event loop speedup: {delta['event_loop_speedup']}x")
    for row in delta["rows"]:
        if row["status"] == "new":
            print(f"{row['row']}: new row, "
                  f"{row['events_per_wall_sec']:,.0f} events/s")
        elif row["status"] == "missing":
            print(f"{row['row']}: MISSING from this run (baseline "
                  f"{row['baseline_events_per_wall_sec']:,.0f} events/s)")
        else:
            flag = "" if row["behaviour_unchanged"] else "  !! processed_events drifted"
            print(f"{row['row']}: {row['speedup']}x "
                  f"({row['baseline_events_per_wall_sec']:,.0f} -> "
                  f"{row['events_per_wall_sec']:,.0f} events/s){flag}")
    print(f"behaviour unchanged on compared rows: {delta['behaviour_unchanged']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", metavar="PROTOCOL:N",
                        help="cProfile one row (e.g. poe-mac:32, or a "
                             "sharded label like poe-2sh-x20:4 with N = "
                             "replicas per shard) and exit")
    parser.add_argument("--shards", metavar="K", type=int, default=None,
                        help="measure only the sharded rows with K PoE "
                             "shards (cross-shard fractions 0.0 and 0.2) "
                             "and exit — the local-iteration shortcut for "
                             "multi-group perf work")
    parser.add_argument("--parallel", action="store_true",
                        help="same-host sequential-vs-parallel driver "
                             "comparison over the sharded rows and exit")
    parser.add_argument("--compare", metavar="BASELINE.json",
                        help="delta mode: compare against a recorded report "
                             "instead of overwriting it")
    parser.add_argument("--output", metavar="PATH",
                        help="write the suite report to PATH (default: "
                             "BENCH_simperf.json at the repo root; with "
                             "--compare the default is to not write)")
    parser.add_argument("--check-events", metavar="EXPECTATIONS.json",
                        help="fail unless per-row processed_events matches "
                             "the expectations file (behaviour guard)")
    args = parser.parse_args(argv)

    if args.profile:
        protocol, _, n = args.profile.rpartition(":")
        if not (protocol and n.isdigit()):
            parser.error("--profile expects PROTOCOL:N, e.g. poe-mac:32 "
                         "or poe-2sh-x20:4")
        print(profile_row(protocol, int(n)))
        return 0

    if args.parallel:
        comparison = measure_parallel_speedup()
        print(f"host cores: {comparison['cpu_count']} "
              "(parallel wins need >1 — single-core hosts time-slice "
              "the shard workers)")
        print_results(
            "Sequential vs parallel sharded driver (same host, "
            f"{comparison['protocol']})",
            comparison["rows"],
            columns=("row", "num_shards", "processed_events",
                     "sequential_events_per_wall_sec",
                     "parallel_events_per_wall_sec", "speedup",
                     "behaviour_unchanged"))
        if not comparison["behaviour_unchanged"]:
            print("PARALLEL DRIVER BEHAVIOUR DRIFT: per-shard event counts "
                  "differ between drivers")
            return 1
        return 0

    if args.shards is not None:
        if args.shards < 2:
            parser.error("--shards expects K >= 2 consensus groups")
        scale = current_perf_scale()
        rows = [
            measure_sharded_cluster(
                "poe", num_shards=args.shards, cross_shard_fraction=cross,
                total_batches=scale.cluster_batches,
                repeats=scale.cluster_repeats)
            for cross in (0.0, 0.2)
        ]
        print_results(
            f"Sharded fabric wall-clock performance ({args.shards} shards, "
            f"scale: {scale.name})",
            rows, columns=_CLUSTER_COLUMNS)
        return 0

    results = run_suite(current_perf_scale())

    if args.output:
        write_report(results, args.output)
        print(f"wrote {args.output}")
    elif not args.compare:
        write_report(results, perf_report_path())
        print(f"wrote {perf_report_path()}")

    exit_code = 0
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        _print_delta(compare_reports(baseline, results))
    else:
        _print_summary(results)

    if args.check_events:
        with open(args.check_events, "r", encoding="utf-8") as handle:
            expectations = json.load(handle)
        problems = check_processed_events(results, expectations)
        if problems:
            print("processed_events expectations FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            exit_code = 1
        else:
            print(f"processed_events match {args.check_events} "
                  f"({len(expectations.get('rows', {}))} rows)")

    # A same-seed divergence must fail the smoke run, not just be recorded.
    if not results["determinism"]["ok"]:
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
