"""Figures 9(k), 9(l): out-of-order processing disabled.

Clients submit a new request only after the previous one completed (the
paper allows HotStuff four outstanding requests, matching its four-phase
chained pipeline).  Shapes to reproduce: every protocol drops from
hundreds of thousands of transactions per second to a few thousand, and
HotStuff — the only protocol whose design does not rely on out-of-order
processing — now comes out ahead, at the cost of higher latency than in
its own Figure 9(c) numbers.
"""


from repro.bench.report import print_results
from repro.fabric.experiments import ExperimentConfig, run_experiment

PROTOCOLS = ["poe", "pbft", "sbft", "hotstuff", "zyzzyva"]


def run_sweep(scale):
    rows = []
    results = {}
    for n in scale.replica_counts:
        for protocol in PROTOCOLS:
            config = ExperimentConfig(
                protocol=protocol,
                num_replicas=n,
                batch_size=100,
                num_batches=min(scale.num_batches, 60),
                out_of_order=False,
            )
            result = run_experiment(config)
            results[(protocol, n)] = result
            rows.append({
                "protocol": result.protocol,
                "n": n,
                "throughput_txn_per_s": round(result.throughput_txn_per_s),
                "latency_ms": round(result.avg_latency_ms, 2),
            })
    return rows, results


def test_figure9kl_out_of_order_disabled(benchmark, scale):
    rows, results = benchmark.pedantic(run_sweep, args=(scale,), rounds=1,
                                       iterations=1)
    for n in scale.replica_counts:
        poe_closed = results[("poe", n)].throughput_txn_per_s
        hotstuff_closed = results[("hotstuff", n)].throughput_txn_per_s
        # HotStuff's pipelined rounds give it the edge once nobody may
        # process requests out of order.
        assert hotstuff_closed > poe_closed
    # Closed-loop throughput is orders of magnitude below the out-of-order
    # numbers of Figure 9(c): a few thousand txn/s at most.
    poe_open = run_experiment(ExperimentConfig(
        protocol="poe", num_replicas=scale.replica_counts[0], batch_size=100,
        num_batches=min(scale.num_batches, 60)))
    slowest_n = scale.replica_counts[0]
    assert (results[("poe", slowest_n)].throughput_txn_per_s
            < poe_open.throughput_txn_per_s / 5)
    print_results("Figure 9(k,l) — out-of-order processing disabled", rows)
