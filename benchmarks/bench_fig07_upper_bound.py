"""Figure 7: upper bound on fabric performance without consensus.

The paper measures the maximum throughput of RESILIENTDB when clients talk
to a single primary with no replica communication, with and without
executing the requests.  The shape to reproduce: both configurations far
exceed any consensus protocol's throughput, and skipping execution is
faster than executing.
"""

from repro.bench.report import print_results
from repro.fabric.upper_bound import run_upper_bound


def run_bound(execute: bool, num_batches: int):
    return run_upper_bound(execute=execute, batch_size=100,
                           num_batches=num_batches, client_outstanding=32)


def test_figure7_upper_bound(benchmark, scale):
    def run_both():
        return {
            "no_exec": run_bound(execute=False, num_batches=scale.num_batches * 4),
            "exec": run_bound(execute=True, num_batches=scale.num_batches * 4),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    no_exec, with_exec = results["no_exec"], results["exec"]
    # Shape check: not executing is at least as fast as executing.
    assert no_exec.throughput_txn_per_s >= with_exec.throughput_txn_per_s
    assert with_exec.throughput_txn_per_s > 0
    rows = [
        {"configuration": "No execution",
         "throughput_txn_per_s": round(no_exec.throughput_txn_per_s),
         "latency_ms": round(no_exec.avg_latency_ms, 3)},
        {"configuration": "Execution",
         "throughput_txn_per_s": round(with_exec.throughput_txn_per_s),
         "latency_ms": round(with_exec.avg_latency_ms, 3)},
    ]
    print_results("Figure 7 — Upper bound without consensus", rows)
