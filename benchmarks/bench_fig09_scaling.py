"""Figures 9(a)-(d): scalability under standard payload.

Sweeps the number of replicas for all five protocols, once with a single
crashed backup (Figures 9(a), 9(b)) and once failure-free (Figures 9(c),
9(d)), reporting throughput and average latency for each point — the same
series the paper plots.

Shapes to reproduce:
* with a backup failure, PoE leads, PBFT and SBFT follow, Zyzzyva collapses
  to timeout-bound throughput and HotStuff stays far below the
  out-of-order protocols;
* without failures, Zyzzyva is fastest (single phase, nothing times out),
  PoE stays within tens of percent of it and still beats PBFT/SBFT/HotStuff.
"""


from repro.bench.report import print_results
from repro.fabric.experiments import ExperimentConfig, run_experiment
from repro.fabric.registry import protocol_names


def run_sweep(scale, single_backup_failure: bool):
    rows = []
    results = {}
    for n in scale.replica_counts:
        for protocol in protocol_names():
            config = ExperimentConfig(
                protocol=protocol,
                num_replicas=n,
                batch_size=100,
                num_batches=scale.num_batches,
                single_backup_failure=single_backup_failure,
            )
            result = run_experiment(config)
            results[(protocol, n)] = result
            rows.append({
                "protocol": result.protocol,
                "n": n,
                "throughput_txn_per_s": round(result.throughput_txn_per_s),
                "latency_ms": round(result.avg_latency_ms, 2),
            })
    return rows, results


def check_failure_shape(results, n):
    poe = results[("poe", n)].throughput_txn_per_s
    pbft = results[("pbft", n)].throughput_txn_per_s
    zyzzyva = results[("zyzzyva", n)].throughput_txn_per_s
    hotstuff = results[("hotstuff", n)].throughput_txn_per_s
    assert poe > pbft, "PoE should outperform PBFT under a backup failure"
    assert poe > 5 * zyzzyva, "Zyzzyva should collapse under a backup failure"
    assert poe > 2 * hotstuff, "HotStuff should trail the out-of-order protocols"


def check_no_failure_shape(results, n):
    poe = results[("poe", n)].throughput_txn_per_s
    pbft = results[("pbft", n)].throughput_txn_per_s
    zyzzyva = results[("zyzzyva", n)].throughput_txn_per_s
    hotstuff = results[("hotstuff", n)].throughput_txn_per_s
    # The paper puts Zyzzyva ahead of PoE by 13-20% when nothing fails; the
    # simulator reproduces "Zyzzyva at least on par" (small reversals fall
    # within measurement noise of the count-based runs).
    assert zyzzyva >= poe * 0.8, "Zyzzyva's fault-free fast path should lead"
    assert poe > pbft, "PoE should outperform PBFT without failures"
    assert poe > hotstuff, "sequential HotStuff should trail PoE"


def test_figure9ab_scaling_single_backup_failure(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_sweep, args=(scale, True), rounds=1, iterations=1)
    for n in scale.replica_counts:
        if n >= 16:
            check_failure_shape(results, n)
    print_results("Figure 9(a,b) — scalability, standard payload, single backup failure",
                  rows)


def test_figure9cd_scaling_no_failures(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_sweep, args=(scale, False), rounds=1, iterations=1)
    for n in scale.replica_counts:
        if n >= 16:
            check_no_failure_shape(results, n)
    print_results("Figure 9(c,d) — scalability, standard payload, no failures", rows)
