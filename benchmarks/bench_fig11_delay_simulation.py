"""Figure 11: simulated consensus throughput as a function of message delay.

The paper's simulation processes every message send/receive but replaces
computation with a fixed message delay.  Shapes to reproduce:

* without out-of-order processing, throughput depends only on the number
  of communication rounds and the delay — PoE and PBFT achieve roughly
  two thirds of HotStuff's decisions/s at every replica count, and
  doubling the delay halves throughput;
* allowing up to 250 decisions in flight multiplies PoE/PBFT throughput by
  roughly two orders of magnitude, even with 128 replicas.
"""

import pytest

from repro.bench.report import print_results
from repro.sim.delay_model import simulate_out_of_order, sweep_delays

DELAYS_MS = (10.0, 20.0, 40.0)
REPLICA_COUNTS = (4, 16, 128)


def run_sequential(decisions):
    return sweep_delays(protocols=("poe", "pbft", "hotstuff"),
                        replica_counts=REPLICA_COUNTS,
                        delays_ms=DELAYS_MS, decisions=decisions)


def run_out_of_order(decisions):
    return sweep_delays(protocols=("poe", "pbft"), replica_counts=(128,),
                        delays_ms=DELAYS_MS, decisions=decisions,
                        out_of_order=True, window=250)


def test_figure11_sequential_simulation(benchmark, scale):
    results = benchmark.pedantic(run_sequential, args=(scale.delay_decisions,),
                                 rounds=1, iterations=1)
    indexed = {(r.protocol, r.num_replicas, r.message_delay_ms): r for r in results}
    for n in REPLICA_COUNTS:
        for delay in DELAYS_MS:
            poe = indexed[("poe", n, delay)].throughput_decisions_per_s
            pbft = indexed[("pbft", n, delay)].throughput_decisions_per_s
            hotstuff = indexed[("hotstuff", n, delay)].throughput_decisions_per_s
            assert poe == pytest.approx(pbft)
            assert poe == pytest.approx(hotstuff * 2.0 / 3.0, rel=0.01)
        # Doubling the delay halves throughput.
        assert indexed[("poe", n, 20.0)].throughput_decisions_per_s == pytest.approx(
            2 * indexed[("poe", n, 40.0)].throughput_decisions_per_s)
    print_results("Figure 11 (plots 1-3) — simulated decisions/s, sequential",
                  [r.row() for r in results])


def test_figure11_out_of_order_simulation(benchmark, scale):
    results = benchmark.pedantic(run_out_of_order, args=(scale.delay_decisions,),
                                 rounds=1, iterations=1)
    sequential = simulate_out_of_order("poe", 128, 10.0,
                                       decisions=scale.delay_decisions, window=1)
    indexed = {(r.protocol, r.message_delay_ms): r for r in results}
    speedup = (indexed[("poe", 10.0)].throughput_decisions_per_s
               / sequential.throughput_decisions_per_s)
    # The paper reports roughly a 200x improvement with a 250-decision window.
    assert speedup > 100
    print_results("Figure 11 (plot 4) — simulated decisions/s, out-of-order window 250",
                  [r.row() for r in results])
