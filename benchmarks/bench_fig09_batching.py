"""Figures 9(i), 9(j): impact of batching under a backup failure.

The paper fixes 32 replicas (one crashed) and sweeps the batch size from
10 to 400.  Shapes to reproduce: throughput rises and latency falls as the
batch size grows, with diminishing returns past ~100 requests per batch;
PoE keeps its lead over PBFT/SBFT throughout and Zyzzyva remains
timeout-bound regardless of the batch size.
"""


from repro.bench.report import print_results
from repro.fabric.experiments import ExperimentConfig, run_experiment

PROTOCOLS = ["poe", "pbft", "sbft", "hotstuff", "zyzzyva"]


def run_sweep(scale):
    num_replicas = 32 if 32 in scale.replica_counts else max(scale.replica_counts)
    rows = []
    results = {}
    for batch_size in scale.batch_sizes:
        for protocol in PROTOCOLS:
            config = ExperimentConfig(
                protocol=protocol,
                num_replicas=num_replicas,
                batch_size=batch_size,
                num_batches=scale.num_batches,
                single_backup_failure=True,
            )
            result = run_experiment(config)
            results[(protocol, batch_size)] = result
            rows.append({
                "protocol": result.protocol,
                "batch_size": batch_size,
                "throughput_txn_per_s": round(result.throughput_txn_per_s),
                "latency_ms": round(result.avg_latency_ms, 2),
            })
    return rows, results


def test_figure9ij_batching_under_failure(benchmark, scale):
    rows, results = benchmark.pedantic(run_sweep, args=(scale,), rounds=1,
                                       iterations=1)
    sizes = sorted(scale.batch_sizes)
    # Larger batches give higher throughput for the out-of-order protocols.
    for protocol in ["poe", "pbft"]:
        small = results[(protocol, sizes[0])].throughput_txn_per_s
        large = results[(protocol, sizes[-1])].throughput_txn_per_s
        assert large > small
    # PoE keeps its lead over PBFT at every batch size.
    for batch_size in sizes:
        assert (results[("poe", batch_size)].throughput_txn_per_s
                > results[("pbft", batch_size)].throughput_txn_per_s)
    print_results("Figure 9(i,j) — batching, n=32, single backup failure", rows)
