"""Workload substrate: YCSB-style transactions, Zipfian skew, client pools.

The paper evaluates with YCSB from Blockbench's macro benchmarks: a table
of 500 k active records, 90 % write queries, requests following a heavily
skewed Zipfian distribution (skew factor 0.9), and batches of 100 requests
(Section IV, "Configuration and Benchmarking").  This package reproduces
that workload generator and the client populations that drive it.
"""

from repro.workload.transactions import (
    Operation,
    OpType,
    Transaction,
    RequestBatch,
    make_no_op_batch,
    make_synthetic_batch,
)
from repro.workload.zipfian import ZipfianGenerator
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.workload.clients import (
    ClientPool,
    ClosedLoopClient,
    CompletionRecord,
    synthetic_batch_source,
)

__all__ = [
    "Operation",
    "OpType",
    "Transaction",
    "RequestBatch",
    "make_no_op_batch",
    "make_synthetic_batch",
    "ZipfianGenerator",
    "YcsbConfig",
    "YcsbWorkload",
    "ClientPool",
    "ClosedLoopClient",
    "CompletionRecord",
    "synthetic_batch_source",
]
