"""Transactions and request batches exchanged between clients and replicas.

A :class:`Transaction` is an ordered list of read/write operations over
the replicated key-value table (the YCSB table in the paper).  Clients
sign transactions (``<T>_c`` in the paper's notation) so that a malicious
primary cannot forge requests; the signature travels with the transaction
inside every proposal.

A :class:`RequestBatch` groups ``batch_size`` transactions into one
consensus slot, mirroring RESILIENTDB's batching (Section III).

For multi-group deployments the keyspace is partitioned across consensus
groups by :func:`shard_of_key`: a pure function of the key bytes, so every
client, replica and auditor assigns the same shard to the same key with no
directory service in the loop.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.hashing import digest
from repro.crypto.signatures import Signature


def shard_of_key(key: str, num_shards: int) -> int:
    """Deterministic key -> shard routing.

    CRC32 of the key bytes modulo the shard count: stable across processes
    and Python versions (unlike ``hash``), cheap enough to call per
    operation, and uniform enough that YCSB's ``user{rank}`` keys spread
    evenly.  ``num_shards <= 1`` always routes to shard 0.
    """
    if num_shards <= 1:
        return 0
    return zlib.crc32(key.encode("utf-8")) % num_shards


class OpType(enum.Enum):
    """Operation kinds supported by the YCSB-style store."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """A single read or write against the replicated table."""

    op_type: OpType
    key: str
    value: Optional[str] = None

    def canonical_bytes(self) -> bytes:
        value = self.value if self.value is not None else ""
        return f"{self.op_type.value}|{self.key}|{value}".encode("utf-8")

    def shard(self, num_shards: int) -> int:
        """The consensus group this operation's key routes to."""
        return shard_of_key(self.key, num_shards)


@dataclass(frozen=True)
class Transaction:
    """A client transaction ``<T>_c``.

    Attributes:
        txn_id: unique identifier chosen by the client.
        client_id: identifier of the issuing client (or client pool).
        operations: the read/write operations to execute.
        signature: the client's digital signature over the transaction,
            or ``None`` for cost-modelled bulk workloads.
        created_at_ms: client-side creation timestamp (virtual time),
            used to measure end-to-end latency.
    """

    txn_id: str
    client_id: str
    operations: Tuple[Operation, ...] = ()
    signature: Optional[Signature] = None
    created_at_ms: float = 0.0

    def digest(self) -> bytes:
        # Memoised: a transaction is immutable, but its digest is requested
        # once per replica per protocol phase.  ``object.__setattr__`` is the
        # sanctioned way to initialise a cache slot on a frozen dataclass.
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = digest("txn", self.txn_id, self.client_id,
                            [op.canonical_bytes() for op in self.operations])
            object.__setattr__(self, "_digest", cached)
        return cached

    def canonical_bytes(self) -> bytes:
        return self.digest()

    def touched_shards(self, num_shards: int) -> Tuple[int, ...]:
        """Sorted distinct shards this transaction's keys route to.

        A transaction with no operations (zero-payload workloads) touches
        shard 0 by convention, so routing never has to special-case it.
        """
        if not self.operations:
            return (0,)
        return tuple(sorted({shard_of_key(op.key, num_shards)
                             for op in self.operations}))


@dataclass(frozen=True)
class RequestBatch:
    """A batch of transactions proposed as one consensus slot.

    Attributes:
        batch_id: unique identifier (assigned by the batcher or client pool).
        transactions: the batched transactions, in execution order.
        created_at_ms: time the batch was formed (latency measurement).
        reply_to: client identifier replicas reply to.  When empty,
            replicas reply to every distinct ``client_id`` in the batch.
        logical_size: for synthetic (cost-modelled) batches that carry no
            transaction objects, the number of transactions the batch
            represents; ``len(batch)`` reports it.
    """

    batch_id: str
    transactions: Tuple[Transaction, ...]
    created_at_ms: float = 0.0
    reply_to: str = ""
    logical_size: int = 0

    #: Non-empty on cross-shard 2PC control records (see
    #: ``repro.workload.xshard.ControlBatch``).  A plain class attribute —
    #: not a dataclass field — so ordinary batches pay nothing for it and
    #: the replica execution path can gate on ``batch.control_phase`` with
    #: a single attribute load.
    control_phase = ""

    def __len__(self) -> int:
        return len(self.transactions) if self.transactions else self.logical_size

    def digest(self) -> bytes:
        # Memoised for the same reason as Transaction.digest: every replica
        # hashes the proposed batch on PROPOSE and again on CERTIFY-style
        # phases, and the batch never changes after construction.
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = digest("batch", self.batch_id,
                            [txn.digest() for txn in self.transactions])
            object.__setattr__(self, "_digest", cached)
        return cached

    def canonical_bytes(self) -> bytes:
        return self.digest()

    @property
    def client_ids(self) -> Tuple[str, ...]:
        """Distinct client identifiers appearing in the batch (order kept)."""
        return tuple(dict.fromkeys(txn.client_id for txn in self.transactions))

    def touched_shards(self, num_shards: int) -> Tuple[int, ...]:
        """Sorted distinct shards touched by any transaction in the batch."""
        shards = set()
        for txn in self.transactions:
            shards.update(txn.touched_shards(num_shards))
        return tuple(sorted(shards)) if shards else (0,)


def make_no_op_batch(batch_id: str, client_id: str, size: int,
                     created_at_ms: float = 0.0) -> RequestBatch:
    """Create a batch of empty (zero-payload) transactions.

    Used by the zero-payload experiments (Figures 9(e)-(h)): replicas still
    execute ``size`` dummy instructions but the proposal carries no data.
    """
    transactions = tuple(
        Transaction(txn_id=f"{batch_id}:{i}", client_id=client_id,
                    operations=(), created_at_ms=created_at_ms)
        for i in range(size)
    )
    return RequestBatch(batch_id=batch_id, transactions=transactions,
                        created_at_ms=created_at_ms, reply_to=client_id)


def make_synthetic_batch(batch_id: str, client_id: str, size: int,
                         created_at_ms: float = 0.0) -> RequestBatch:
    """Create a cost-modelled batch that carries no transaction objects.

    Large-scale simulator benchmarks use these to avoid allocating
    ``batch_size`` transaction objects per consensus slot; the batch still
    reports ``len(batch) == size`` so throughput accounting is unchanged.
    """
    return RequestBatch(batch_id=batch_id, transactions=(),
                        created_at_ms=created_at_ms, reply_to=client_id,
                        logical_size=size)
