"""YCSB-style workload generator.

Reproduces the paper's benchmarking configuration (Section IV,
"Configuration and Benchmarking"): a table holding 500 000 active
records, requests that are 90 % writes, keys drawn from a heavily skewed
Zipfian distribution (theta = 0.9), and request batches of 100.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.crypto.authenticator import Authenticator
from repro.workload.transactions import (
    Operation,
    OpType,
    RequestBatch,
    Transaction,
    shard_of_key,
)
from repro.workload.zipfian import ZipfianGenerator


@dataclass(frozen=True)
class YcsbConfig:
    """Parameters of the YCSB workload.

    Attributes:
        num_records: rows in the replicated table (paper: 500 000).
        write_fraction: fraction of operations that are writes (paper: 0.9).
        zipf_theta: Zipfian skew factor (paper: 0.9).
        operations_per_txn: read/write operations per client transaction.
        value_size: size in characters of written values.
        seed: RNG seed for reproducible workloads.
    """

    num_records: int = 500_000
    write_fraction: float = 0.9
    zipf_theta: float = 0.9
    operations_per_txn: int = 1
    value_size: int = 16
    seed: int = 42

    @classmethod
    def small(cls, seed: int = 42) -> "YcsbConfig":
        """A laptop-sized table for unit tests and examples."""
        return cls(num_records=1_000, seed=seed)


class YcsbWorkload:
    """Generates YCSB transactions and request batches."""

    def __init__(self, config: Optional[YcsbConfig] = None,
                 client_id: str = "client:pool",
                 authenticator: Optional[Authenticator] = None) -> None:
        self.config = config or YcsbConfig()
        self.client_id = client_id
        self.auth = authenticator
        self._zipf = ZipfianGenerator(
            num_items=self.config.num_records,
            theta=self.config.zipf_theta,
            seed=self.config.seed,
        )
        self._rng = random.Random(self.config.seed + 1)
        self._txn_counter = 0
        self._batch_counter = 0

    # -- table bootstrap -----------------------------------------------------------
    def initial_table(self, num_records: Optional[int] = None) -> Dict[str, str]:
        """Build the initial table every replica starts from.

        The paper initialises each replica with an identical copy of the
        YCSB table before the experiments.
        """
        count = num_records if num_records is not None else self.config.num_records
        return {self.key_for(i): f"value-{i}" for i in range(count)}

    @staticmethod
    def key_for(rank: int) -> str:
        return f"user{rank}"

    # -- transaction generation -------------------------------------------------------
    def next_transaction(self, created_at_ms: float = 0.0) -> Transaction:
        """Generate the next client transaction."""
        operations: List[Operation] = []
        for _ in range(self.config.operations_per_txn):
            key = self.key_for(self._zipf.sample())
            if self._rng.random() < self.config.write_fraction:
                value = f"w{self._txn_counter}-" + "x" * self.config.value_size
                operations.append(Operation(op_type=OpType.WRITE, key=key, value=value))
            else:
                operations.append(Operation(op_type=OpType.READ, key=key))
        txn_id = f"{self.client_id}:txn:{self._txn_counter}"
        self._txn_counter += 1
        transaction = Transaction(
            txn_id=txn_id,
            client_id=self.client_id,
            operations=tuple(operations),
            created_at_ms=created_at_ms,
        )
        if self.auth is not None:
            transaction = Transaction(
                txn_id=transaction.txn_id,
                client_id=transaction.client_id,
                operations=transaction.operations,
                signature=self.auth.sign(transaction.digest()),
                created_at_ms=created_at_ms,
            )
        return transaction

    def next_batch(self, batch_size: int, created_at_ms: float = 0.0) -> RequestBatch:
        """Generate a batch of *batch_size* transactions."""
        transactions = tuple(
            self.next_transaction(created_at_ms=created_at_ms) for _ in range(batch_size)
        )
        batch_id = f"{self.client_id}:batch:{self._batch_counter}"
        self._batch_counter += 1
        return RequestBatch(batch_id=batch_id, transactions=transactions,
                            created_at_ms=created_at_ms)

    def batches(self, count: int, batch_size: int) -> Iterator[RequestBatch]:
        """Yield *count* consecutive batches."""
        for _ in range(count):
            yield self.next_batch(batch_size)

    # -- sharded generation ---------------------------------------------------------
    def shard_of(self, key: str, num_shards: int) -> int:
        """Where *key* routes in an *num_shards*-group deployment."""
        return shard_of_key(key, num_shards)

    def next_transaction_in_shard(self, shard: int, num_shards: int,
                                  created_at_ms: float = 0.0) -> Transaction:
        """Generate a transaction whose every key routes to *shard*.

        Keys keep their Zipfian popularity *within* the shard: the draw is
        the normal skewed draw, rejected until it lands in the shard.
        """
        operations: List[Operation] = []
        for _ in range(self.config.operations_per_txn):
            rank = self._zipf.sample_where(
                lambda r: shard_of_key(self.key_for(r), num_shards) == shard)
            key = self.key_for(rank)
            if self._rng.random() < self.config.write_fraction:
                value = f"w{self._txn_counter}-" + "x" * self.config.value_size
                operations.append(Operation(op_type=OpType.WRITE, key=key, value=value))
            else:
                operations.append(Operation(op_type=OpType.READ, key=key))
        txn_id = f"{self.client_id}:txn:{self._txn_counter}"
        self._txn_counter += 1
        return Transaction(
            txn_id=txn_id,
            client_id=self.client_id,
            operations=tuple(operations),
            created_at_ms=created_at_ms,
        )

    def next_batch_for_shard(self, shard: int, num_shards: int, batch_size: int,
                             created_at_ms: float = 0.0) -> RequestBatch:
        """Generate a single-shard batch: every key routes to *shard*."""
        transactions = tuple(
            self.next_transaction_in_shard(shard, num_shards,
                                           created_at_ms=created_at_ms)
            for _ in range(batch_size)
        )
        batch_id = f"{self.client_id}:batch:{self._batch_counter}"
        self._batch_counter += 1
        return RequestBatch(batch_id=batch_id, transactions=transactions,
                            created_at_ms=created_at_ms)

    def next_cross_shard_operations(self, shards: List[int], num_shards: int,
                                    created_at_ms: float = 0.0) -> Dict[int, Transaction]:
        """Generate one cross-shard transaction's per-shard write sets.

        Returns one single-shard :class:`Transaction` per touched shard —
        the shape 2PC needs, since each shard consensus-commits only its
        own slice of the transaction.  The slices share a transaction
        counter so their ids correlate (``...:txn:N/s0``, ``...:txn:N/s1``).
        """
        base = self._txn_counter
        self._txn_counter += 1
        slices: Dict[int, Transaction] = {}
        for shard in shards:
            operations: List[Operation] = []
            for _ in range(self.config.operations_per_txn):
                rank = self._zipf.sample_where(
                    lambda r: shard_of_key(self.key_for(r), num_shards) == shard)
                key = self.key_for(rank)
                if self._rng.random() < self.config.write_fraction:
                    value = f"w{base}-" + "x" * self.config.value_size
                    operations.append(Operation(op_type=OpType.WRITE, key=key,
                                                value=value))
                else:
                    operations.append(Operation(op_type=OpType.READ, key=key))
            slices[shard] = Transaction(
                txn_id=f"{self.client_id}:txn:{base}/s{shard}",
                client_id=self.client_id,
                operations=tuple(operations),
                created_at_ms=created_at_ms,
            )
        return slices
