"""Zipfian key-popularity generator.

YCSB's request keys follow a Zipfian distribution; the paper uses a skew
factor of 0.9 over half a million records.  This implementation uses the
classic Gray et al. "quick and portable" rejection-inversion approximation
also used by the reference YCSB generator: it precomputes the harmonic
normalisation constant ``zeta(n, theta)`` and maps uniform samples to
ranks, so sampling is O(1) per request after O(n) setup (the setup is
cached per (n, theta) pair because the scaling experiments reuse it).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    """Compute (and cache) the generalised harmonic number ``H_{n,theta}``."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is not None:
        return cached
    total = 0.0
    for i in range(1, n + 1):
        total += 1.0 / (i ** theta)
    _ZETA_CACHE[key] = total
    return total


class ZipfianGenerator:
    """Samples integer ranks in ``[0, num_items)`` with Zipfian skew.

    Args:
        num_items: size of the key space (paper: 500 000).
        theta: skew factor in ``[0, 1)``; 0 is uniform, 0.99 extremely
            skewed (paper: 0.9).
        seed: seed for the private RNG so runs are reproducible.
    """

    def __init__(self, num_items: int, theta: float = 0.9, seed: int = 42) -> None:
        if num_items < 1:
            raise ValueError("num_items must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.num_items = num_items
        self.theta = theta
        self._rng = random.Random(seed)
        self._zeta_n = _zeta(num_items, theta)
        self._zeta_2 = _zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta > 0 else 1.0
        # For num_items <= 2 the eta expression degenerates to 0/0 (both the
        # numerator and ``1 - zeta_2/zeta_n`` vanish); any finite value works
        # because sample() resolves ranks 0 and 1 before eta is consulted.
        eta_denominator = 1.0 - self._zeta_2 / self._zeta_n
        self._eta = (
            (1.0 - (2.0 / num_items) ** (1.0 - theta)) / eta_denominator
            if theta > 0 and eta_denominator != 0.0
            else 1.0
        )

    def sample(self) -> int:
        """Draw one rank; rank 0 is the most popular item."""
        if self.theta == 0.0:
            return self._rng.randrange(self.num_items)
        u = self._rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self.num_items * ((self._eta * u - self._eta + 1.0) ** self._alpha))
        return min(rank, self.num_items - 1)

    def sample_many(self, count: int) -> list:
        """Draw *count* ranks."""
        return [self.sample() for _ in range(count)]

    def sample_where(self, predicate, max_tries: int = 64) -> int:
        """Draw a rank satisfying *predicate*, by rejection sampling.

        Sharded workloads use this to draw a popular key that routes to a
        specific consensus group: with S shards roughly 1/S of draws
        qualify, so the expected number of tries is S.  Falls back to a
        linear scan from the most popular rank if *max_tries* rejections
        occur (possible only for tiny keyspaces where a shard owns very
        few ranks), which keeps the draw count bounded and deterministic.
        """
        for _ in range(max_tries):
            rank = self.sample()
            if predicate(rank):
                return rank
        for rank in range(self.num_items):
            if predicate(rank):
                return rank
        raise ValueError("no rank satisfies the predicate")
