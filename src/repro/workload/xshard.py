"""Cross-shard transaction primitives: control batches, certificates, 2PC state.

Multi-group deployments partition the keyspace across independent
consensus groups (:func:`repro.workload.transactions.shard_of_key`).  A
transaction touching one shard rides the normal request path; one touching
several commits atomically through two-phase commit *over consensus*:

* **prepare** — the coordinator asks every touched shard to
  consensus-commit a lock/intent record.  Executing it transitions the
  transaction to ``prepared`` on that shard (or reports ``refused`` if a
  presumed-abort probe got there first).
* **decide** — once every shard is prepared the coordinator
  consensus-commits a ``commit`` record per shard (or an ``abort`` record
  if any shard refused).  The decide record carries a **certificate**:
  per touched shard, f+1 distinct replica attestations of the state that
  justifies the decision.  Replicas validate the certificate before
  applying the decision (:func:`decide_record_valid`) — this is the check
  that stops a Byzantine coordinator from committing a transaction on one
  shard while aborting it on a sibling.
* **probe** (presumed abort) — a participant that times out waiting for a
  decision asks each touched shard for the transaction's status; an
  unprepared shard marks it ``refused``, which permanently blocks a late
  prepare, so the prober can always drive the transaction to a terminal
  state with a valid certificate.

Everything here is pure data + deterministic state transitions — no
network, no simulator — so the same code serves the coordinator, the
recovering client pool, the per-replica :class:`ShardTxnManager` and the
safety auditor's independent re-validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.hashing import digest
from repro.protocols.base import Message
from repro.workload.transactions import (
    RequestBatch,
    Transaction,
    make_synthetic_batch,
)

# -- control batches -------------------------------------------------------------

#: 2PC phases carried by control batches.
PREPARE = "prepare"
PROBE = "probe"
COMMIT = "commit"
ABORT = "abort"

DECIDE_PHASES = (COMMIT, ABORT)

#: Outcomes a replica can report for executing a control record.  The
#: reply encodes the outcome in its result digest, so clients decode it by
#: candidate matching and quorums only form over *identical* outcomes.
OUTCOMES = ("prepared", "refused", "committed", "aborted", "rejected")

#: One certificate claim: (shard, outcome, attesting replica ids).  Plain
#: tuples keep control batches hashable and cheaply comparable.
ShardClaim = Tuple[int, str, Tuple[str, ...]]


@dataclass(frozen=True)
class ControlBatch(RequestBatch):
    """A 2PC control record ordered through a shard's consensus.

    Rides the ordinary client-request path (it *is* a request batch), but
    carries no directly-executable transactions: ``transactions`` stays
    empty so the executor never applies anything before the per-replica
    :class:`ShardTxnManager` has validated the record.  Commit records
    carry the shard's slice of the transaction in ``payload_txns``; the
    manager applies it only after certificate validation.

    ``logical_size`` defaults to 1 so throughput accounting counts the
    control record as one unit of work.
    """

    control_phase: str = ""
    txn: str = ""
    shard: int = -1
    shards: Tuple[int, ...] = ()
    cert: Tuple[ShardClaim, ...] = ()
    payload_txns: Tuple[Transaction, ...] = ()


def control_batch_id(txn: str, phase: str, shard: int) -> str:
    """Canonical id of the control record for (txn, phase, shard).

    Canonical ids are what make recovery idempotent: a recovering client
    pool re-issuing the coordinator's commit record produces the *same*
    batch id, so shard replicas deduplicate it and resend the cached
    reply instead of double-deciding.
    """
    return f"{txn}|{phase}|s{shard}"


def make_control_batch(txn: str, phase: str, shard: int,
                       shards: Sequence[int],
                       cert: Sequence[ShardClaim] = (),
                       payload_txns: Sequence[Transaction] = (),
                       reply_to: str = "",
                       created_at_ms: float = 0.0,
                       logical_size: int = 1) -> ControlBatch:
    return ControlBatch(
        batch_id=control_batch_id(txn, phase, shard),
        transactions=(),
        created_at_ms=created_at_ms,
        reply_to=reply_to,
        logical_size=logical_size,
        control_phase=phase,
        txn=txn,
        shard=shard,
        shards=tuple(shards),
        cert=tuple(cert),
        payload_txns=tuple(payload_txns),
    )


def control_result_digest(txn: str, phase: str, shard: int, outcome: str) -> bytes:
    """Result digest replicas report for a control record execution.

    Deterministic in (txn, phase, shard, outcome) alone, so every honest
    replica of a shard produces the same digest for the same decision and
    clients can decode the outcome by matching against the candidates.
    """
    return digest("xshard", txn, phase, shard, outcome)


def decode_outcome(result_digest: bytes, txn: str, phase: str,
                   shard: int) -> Optional[str]:
    """Which outcome *result_digest* encodes, or ``None`` if none match."""
    for outcome in OUTCOMES:
        if control_result_digest(txn, phase, shard, outcome) == result_digest:
            return outcome
    return None


def parse_control_batch_id(batch_id: str) -> Optional[Tuple[str, str, int]]:
    """Invert :func:`control_batch_id`; ``None`` for ordinary batch ids."""
    if "|" not in batch_id:
        return None
    txn, _, rest = batch_id.rpartition("|s")
    if not rest.isdigit():
        return None
    txn, _, phase = txn.rpartition("|")
    if phase not in (PREPARE, PROBE, COMMIT, ABORT):
        return None
    return txn, phase, int(rest)


# -- shard layout ----------------------------------------------------------------

@dataclass(frozen=True)
class ShardLayout:
    """Static membership and quorum rules of a sharded deployment.

    Attributes:
        members: per-shard ordered replica ids.
        reply_quorums: per-shard number of matching replies that complete
            a request for a client (the shard protocol's client quorum).
        broadcast_requests: per-shard flag for rotating-leader protocols
            whose clients must broadcast requests rather than target the
            primary (HotStuff).
    """

    members: Tuple[Tuple[str, ...], ...]
    reply_quorums: Tuple[int, ...]
    broadcast_requests: Tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "_member_sets",
                           tuple(frozenset(ids) for ids in self.members))
        object.__setattr__(self, "_index_maps", tuple(
            {rid: index for index, rid in enumerate(ids)}
            for ids in self.members))

    @property
    def num_shards(self) -> int:
        return len(self.members)

    def replicas(self, shard: int) -> Tuple[str, ...]:
        return self.members[shard]

    def f(self, shard: int) -> int:
        return (len(self.members[shard]) - 1) // 3

    def reply_quorum(self, shard: int) -> int:
        return self.reply_quorums[shard]

    def cert_quorum(self, shard: int) -> int:
        """Attestations needed for a certificate claim: f+1 (one honest)."""
        return self.f(shard) + 1

    def index_map(self, shard: int) -> Dict[str, int]:
        return self._index_maps[shard]

    def primary(self, shard: int, view: int) -> str:
        ids = self.members[shard]
        return ids[view % len(ids)]

    def wants_broadcast(self, shard: int) -> bool:
        if not self.broadcast_requests:
            return False
        return self.broadcast_requests[shard]

    def claim_quorate(self, claim: ShardClaim) -> bool:
        """Does *claim* carry f+1 distinct attestations by shard members?"""
        shard, _, voters = claim
        if not 0 <= shard < self.num_shards:
            return False
        members = self._member_sets[shard]
        distinct = {voter for voter in voters if voter in members}
        return len(distinct) >= self.cert_quorum(shard)


def decide_record_valid(batch: ControlBatch, layout: ShardLayout) -> bool:
    """Validate a decide record's certificate against the shard layout.

    This is the coordinator-equivocation fix: a commit record must carry,
    for **every** touched shard, f+1 distinct attestations that the shard
    prepared (or already committed) the transaction; an abort record must
    carry f+1 attestations that **some** touched shard refused (or already
    aborted) it.  A coordinator that merely *claims* a different decision
    to different shards cannot fabricate either certificate — it would
    need f+1 replicas of a shard to attest a state the shard never
    reached.  The safety auditor re-runs this exact check over every
    decide certificate the replicas accepted.
    """
    if batch.control_phase == COMMIT:
        needed = set(batch.shards)
        for claim in batch.cert:
            shard, outcome, _ = claim
            if outcome in ("prepared", "committed") and layout.claim_quorate(claim):
                needed.discard(shard)
        return not needed
    if batch.control_phase == ABORT:
        for claim in batch.cert:
            shard, outcome, _ = claim
            if (shard in batch.shards and outcome in ("refused", "aborted")
                    and layout.claim_quorate(claim)):
                return True
        return False
    return False


# -- per-replica 2PC state machine ------------------------------------------------

class ShardTxnManager:
    """Per-replica cross-shard transaction state, driven by consensus order.

    Installed on every replica of a sharded cluster (``replica.control_layer``).
    :meth:`execute_control` runs in place of normal batch execution when a
    committed slot carries a :class:`ControlBatch`: it applies the 2PC
    state transition the record asks for, appends the slot to the ledger
    through the ordinary executor (so chain integrity, checkpoints and
    rollback keep working), and stamps the reply digest with the outcome.

    Transitions are deterministic functions of (consensus order, record
    contents, prior status), so all honest replicas of a shard agree on
    every transaction's status — that per-shard agreement is what makes
    the certificates in decide records meaningful.
    """

    def __init__(self, shard: int, layout: ShardLayout) -> None:
        self.shard = shard
        self.layout = layout
        #: txn -> "prepared" | "refused" | "committed" | "aborted"
        self.status: Dict[str, str] = {}
        #: txn -> (phase, touched shards, certificate) for every decide
        #: record this replica accepted — the journal the safety auditor
        #: re-validates.
        self.accepted_decides: Dict[
            str, Tuple[str, Tuple[int, ...], Tuple[ShardClaim, ...]]] = {}
        #: Decide records whose certificate failed validation (audit trail;
        #: non-empty under a Byzantine coordinator).
        self.rejected_decides: List[str] = []

    def execute_control(self, replica, slot, now_ms: float):
        """Execute the control record in *slot*; returns the ExecutedBatch."""
        batch: ControlBatch = slot.batch
        phase = batch.control_phase
        txn = batch.txn
        status = self.status.get(txn)
        apply_payload = False
        if phase == PREPARE:
            if status in ("refused", "aborted"):
                outcome = "refused"
            elif status == "committed":
                outcome = "committed"
            else:
                if status is None:
                    self.status[txn] = "prepared"
                outcome = "prepared"
        elif phase == PROBE:
            if status is None:
                # Presumed abort: an unprepared transaction that is being
                # probed must never prepare later, or the prober's abort
                # could race a fresh prepare-then-commit.
                self.status[txn] = "refused"
                outcome = "refused"
            else:
                outcome = status
        elif phase in DECIDE_PHASES:
            target = "committed" if phase == COMMIT else "aborted"
            if status in ("committed", "aborted"):
                # Terminal already: the record that got us here applied any
                # payload, so a duplicate decide only re-reports the outcome.
                outcome = status
            elif decide_record_valid(batch, self.layout):
                self.status[txn] = target
                self.accepted_decides[txn] = (phase, batch.shards, batch.cert)
                outcome = target
                apply_payload = phase == COMMIT
            else:
                self.rejected_decides.append(batch.batch_id)
                outcome = "rejected"
        else:
            outcome = "rejected"
        record = replica.executor.execute(
            sequence=slot.sequence, view=slot.view, batch=batch, proof=slot.proof,
        )
        if (apply_payload and batch.payload_txns
                and replica.config.execute_operations):
            # The committed transaction's writes for this shard: applied
            # only now — after certificate validation — and journaled into
            # the slot's undo log so view-change rollbacks revert them.
            for txn_slice in batch.payload_txns:
                _, undo = replica.executor.store.apply(txn_slice)
                record.undo.extend(undo)
        record.result_digest = control_result_digest(
            txn, phase, batch.shard, outcome)
        return record


# -- sharded workload plans -------------------------------------------------------

@dataclass(frozen=True)
class SingleShardBatch:
    """A request batch routed wholesale to one shard."""

    shard: int
    batch: RequestBatch


@dataclass(frozen=True)
class CrossShardPlan:
    """One cross-shard transaction, ready for 2PC.

    Attributes:
        txn: globally unique transaction id.
        shards: sorted touched shards (at least two).
        slices: per-shard transaction slices (empty for cost-modelled
            workloads; each slice's keys all route to its shard).
        logical_size: transactions this plan represents for throughput
            accounting.
    """

    txn: str
    shards: Tuple[int, ...]
    slices: Tuple[Tuple[int, Tuple[Transaction, ...]], ...] = ()
    logical_size: int = 1

    def slice_for(self, shard: int) -> Tuple[Transaction, ...]:
        for owner, txns in self.slices:
            if owner == shard:
                return txns
        return ()


@dataclass(slots=True)
class CoordSubmit(Message):
    """Client pool -> coordinator: run 2PC for this cross-shard plan."""

    plan: Optional[CrossShardPlan] = None
    reply_to: str = ""


@dataclass(slots=True)
class CoordAck(Message):
    """Client pool -> coordinator: *txn* is decided everywhere; stop retrying."""

    txn: str = ""


#: Factory signature: (request_index, now_ms) -> SingleShardBatch | CrossShardPlan.
ShardedBatchSource = Callable[[int, float], Union[SingleShardBatch, CrossShardPlan]]


def synthetic_sharded_source(pool_id: str, num_shards: int, batch_size: int,
                             cross_shard_fraction: float,
                             seed: int = 1) -> ShardedBatchSource:
    """Cost-modelled sharded workload with a tunable cross-shard ratio.

    Single-shard requests are synthetic batches (no transaction objects)
    round-robined by a seeded RNG; a ``cross_shard_fraction`` draw instead
    emits a two-shard plan.  Deterministic in (pool_id, seed, index).
    """
    rng = random.Random(f"sharded:{pool_id}:{seed}")

    def factory(index: int, now_ms: float) -> Union[SingleShardBatch, CrossShardPlan]:
        if num_shards > 1 and rng.random() < cross_shard_fraction:
            first = rng.randrange(num_shards)
            second = rng.randrange(num_shards - 1)
            if second >= first:
                second += 1
            shards = tuple(sorted((first, second)))
            return CrossShardPlan(
                txn=f"{pool_id}:x:{index}", shards=shards,
                logical_size=batch_size,
            )
        shard = rng.randrange(num_shards)
        batch = make_synthetic_batch(
            batch_id=f"{pool_id}:batch:{index}", client_id=pool_id,
            size=batch_size, created_at_ms=now_ms,
        )
        return SingleShardBatch(shard=shard, batch=batch)

    return factory


def ycsb_sharded_source(workload, num_shards: int, batch_size: int,
                        cross_shard_fraction: float,
                        seed: int = 1) -> ShardedBatchSource:
    """Real-payload sharded workload over a :class:`~repro.workload.ycsb.YcsbWorkload`.

    Single-shard requests are YCSB batches whose every key routes to one
    shard; cross-shard plans carry per-shard transaction slices generated
    by :meth:`~repro.workload.ycsb.YcsbWorkload.next_cross_shard_operations`.
    """
    pool_id = workload.client_id
    rng = random.Random(f"sharded:{pool_id}:{seed}")

    def factory(index: int, now_ms: float) -> Union[SingleShardBatch, CrossShardPlan]:
        if num_shards > 1 and rng.random() < cross_shard_fraction:
            first = rng.randrange(num_shards)
            second = rng.randrange(num_shards - 1)
            if second >= first:
                second += 1
            shards = tuple(sorted((first, second)))
            slices = workload.next_cross_shard_operations(
                list(shards), num_shards, created_at_ms=now_ms)
            return CrossShardPlan(
                txn=f"{pool_id}:x:{index}", shards=shards,
                slices=tuple((shard, (slices[shard],)) for shard in shards),
                logical_size=len(shards),
            )
        shard = rng.randrange(num_shards)
        batch = workload.next_batch_for_shard(
            shard, num_shards, batch_size, created_at_ms=now_ms)
        return SingleShardBatch(shard=shard, batch=batch)

    return factory
