"""Client populations that drive the replicated system.

The paper deploys up to 320 k clients whose only role is to keep the
primary's pipeline saturated and to collect matching replies.  The
simulator reproduces that with a :class:`ClientPool`: a single node that
keeps a configurable number of request batches outstanding, retransmits
on timeout (which is what lets replicas detect a faulty primary), counts
matching replies against a protocol-specific quorum and records
completion latencies for the metrics module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.protocols.base import ClientNode, NodeConfig
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.protocols.quorum import VoteSet
from repro.workload.transactions import RequestBatch, make_synthetic_batch

#: Factory signature: (batch_index, now_ms) -> RequestBatch.
BatchSource = Callable[[int, float], RequestBatch]


@dataclass(frozen=True, slots=True)
class CompletionRecord:
    """One completed batch, as observed by the client pool."""

    batch_id: str
    num_txns: int
    submitted_at_ms: float
    completed_at_ms: float
    view: int
    sequence: int

    @property
    def latency_ms(self) -> float:
        return self.completed_at_ms - self.submitted_at_ms


@dataclass(slots=True)
class _PendingBatch:
    """Book-keeping for one outstanding batch.

    ``replies`` maps each distinct reply key to an aggregated voter
    bitset indexed by replica (:class:`~repro.protocols.quorum.VoteSet`),
    so counting one of the n replies per batch is a dict lookup plus
    integer arithmetic — no per-reply set/dict churn.
    """

    batch: RequestBatch
    submitted_at_ms: float
    replies: Dict[Tuple, VoteSet] = field(default_factory=dict)
    retransmissions: int = 0


def synthetic_batch_source(client_id: str, batch_size: int) -> BatchSource:
    """Batch source producing cost-modelled batches of *batch_size*."""

    def factory(index: int, now_ms: float) -> RequestBatch:
        return make_synthetic_batch(
            batch_id=f"{client_id}:batch:{index}", client_id=client_id,
            size=batch_size, created_at_ms=now_ms,
        )

    return factory


class ClientPool(ClientNode):
    """Open/closed-loop client population submitting batches to the primary.

    Args:
        node_id: identifier of the pool.
        config: the shared deployment configuration.
        batch_source: factory producing the next batch to submit.
        completion_quorum: number of matching replies that complete a batch
            (``nf`` for PoE, ``f + 1`` for PBFT/HotStuff, ``n`` for
            Zyzzyva's fast path, 1 for SBFT's aggregated reply).
        target_outstanding: batches kept in flight concurrently; 1 gives
            the closed-loop behaviour of the out-of-order-disabled
            experiments (Figures 9(k), 9(l)).
        total_batches: stop submitting after this many completions
            (``None`` = unbounded, for timed runs).
        timeout_ms: retransmission timeout (defaults to the config's
            request timeout, 3 s in the paper).
        broadcast_requests: send every request to all replicas instead of
            only the current primary (needed by rotating-leader protocols
            such as HotStuff, where any replica may end up proposing it).
    """

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        completion_quorum: Optional[int] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        broadcast_requests: bool = False,
    ) -> None:
        super().__init__(node_id, config)
        self.batch_source = batch_source or synthetic_batch_source(node_id, config.batch_size)
        self.completion_quorum = completion_quorum if completion_quorum is not None else config.nf
        self.target_outstanding = target_outstanding
        self.total_batches = total_batches
        self.timeout_ms = timeout_ms if timeout_ms is not None else config.request_timeout_ms
        self.broadcast_requests = broadcast_requests
        self.completions: List[CompletionRecord] = []
        self.current_view = 0
        self._pending: Dict[str, _PendingBatch] = {}
        self._submitted = 0
        # Insertion-ordered dedup window for completed batch ids.  A batch
        # whose pending entry is gone can never reach _complete again, so
        # only recently-completed ids need to be remembered; the window
        # keeps the dedup structure bounded on unbounded (soak) runs.
        self._completed_ids: Dict[str, None] = {}
        self._completed_retention = 4 * target_outstanding + 64
        # Reply voters resolve to replica indices through the shared
        # membership map; replies from senders outside the membership
        # still count via the VoteSet overflow path.
        self._replica_index = config.replica_index_map

    # -- inspection -------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    @property
    def completed_batches(self) -> int:
        return len(self.completions)

    @property
    def completed_txns(self) -> int:
        return sum(record.num_txns for record in self.completions)

    def is_done(self) -> bool:
        """Has the pool completed every batch it was asked to submit?"""
        return self.total_batches is not None and len(self.completions) >= self.total_batches

    # -- lifecycle --------------------------------------------------------------
    def on_start(self, now_ms: float) -> None:
        self._fill_pipeline(now_ms)

    def _fill_pipeline(self, now_ms: float) -> None:
        while len(self._pending) < self.target_outstanding:
            if self.total_batches is not None and self._submitted >= self.total_batches:
                break
            self._submit_next(now_ms)

    def _submit_next(self, now_ms: float) -> None:
        batch = self.batch_source(self._submitted, now_ms)
        self._submitted += 1
        self._pending[batch.batch_id] = _PendingBatch(batch=batch, submitted_at_ms=now_ms)
        self._send_request(batch, now_ms, retransmission=False)
        self.set_timer(f"request:{batch.batch_id}", self.timeout_ms, payload=batch.batch_id)

    def _send_request(self, batch: RequestBatch, now_ms: float,
                      retransmission: bool) -> None:
        message = ClientRequestMessage(
            batch=batch,
            reply_to=self.node_id,
            retransmission=retransmission,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        )
        if retransmission or self.broadcast_requests:
            # The paper: a client that gets no timely response broadcasts
            # its request to all replicas, which forward it to the primary.
            self.broadcast(message)
        else:
            self.send(self.config.primary_of_view(self.current_view), message)

    # -- replies -----------------------------------------------------------------
    def on_message(self, sender: str, message, now_ms: float) -> None:
        if not isinstance(message, ClientReplyMessage):
            self.on_other_message(sender, message, now_ms)
            return
        pending = self._pending.get(message.batch_id)
        if pending is None:
            return
        key = message.matching_key()
        voters = pending.replies.get(key)
        if voters is None:
            voters = pending.replies[key] = VoteSet(self._replica_index)
        # Reply identity is the transport-level sender: counting the claimed
        # ``message.replica_id`` would let one Byzantine replica fabricate a
        # whole quorum of matching INFORMs under forged identities.
        voters.add(sender)
        if message.view > self.current_view:
            self.current_view = message.view
        if voters.count >= self.completion_quorum:
            self._complete(message, pending, now_ms)

    def on_other_message(self, sender: str, message, now_ms: float) -> None:
        """Hook for protocol-specific client messages (default: ignore)."""

    def _complete(self, reply: ClientReplyMessage, pending: _PendingBatch,
                  now_ms: float) -> None:
        batch_id = reply.batch_id
        if batch_id in self._completed_ids:
            return
        self._completed_ids[batch_id] = None
        while len(self._completed_ids) > self._completed_retention:
            del self._completed_ids[next(iter(self._completed_ids))]
        self._pending.pop(batch_id, None)
        self.cancel_timer(f"request:{batch_id}")
        self.completions.append(
            CompletionRecord(
                batch_id=batch_id,
                num_txns=len(pending.batch),
                submitted_at_ms=pending.submitted_at_ms,
                completed_at_ms=now_ms,
                view=reply.view,
                sequence=reply.sequence,
            )
        )
        self._fill_pipeline(now_ms)

    # -- timeouts ----------------------------------------------------------------
    def on_timer(self, name: str, payload, now_ms: float) -> None:
        if not name.startswith("request:"):
            return
        batch_id = payload
        pending = self._pending.get(batch_id)
        if pending is None:
            return
        self.on_request_timeout(pending, now_ms)

    def on_request_timeout(self, pending: _PendingBatch, now_ms: float) -> None:
        """Default timeout behaviour: broadcast the request to all replicas."""
        pending.retransmissions += 1
        self._send_request(pending.batch, now_ms, retransmission=True)
        backoff = self.timeout_ms * (2 ** min(pending.retransmissions, 4))
        self.set_timer(f"request:{pending.batch.batch_id}", backoff,
                       payload=pending.batch.batch_id)


class ClosedLoopClient(ClientPool):
    """A client with exactly one request outstanding at any time.

    Used by the out-of-order-disabled experiments (Figures 9(k), 9(l)),
    where the paper requires "each client to only send its request when it
    has accepted a response for its previous query".
    """

    def __init__(self, node_id: str, config: NodeConfig,
                 batch_source: Optional[BatchSource] = None,
                 completion_quorum: Optional[int] = None,
                 total_batches: Optional[int] = None,
                 timeout_ms: Optional[float] = None,
                 outstanding: int = 1) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=completion_quorum,
            target_outstanding=outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
        )
