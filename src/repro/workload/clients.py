"""Client populations that drive the replicated system.

The paper deploys up to 320 k clients whose only role is to keep the
primary's pipeline saturated and to collect matching replies.  The
simulator reproduces that with a :class:`ClientPool`: a single node that
keeps a configurable number of request batches outstanding, retransmits
on timeout (which is what lets replicas detect a faulty primary), counts
matching replies against a protocol-specific quorum and records
completion latencies for the metrics module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.protocols.base import ClientNode, NodeConfig
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.protocols.quorum import VoteSet
from repro.workload.transactions import RequestBatch, make_synthetic_batch

#: Factory signature: (batch_index, now_ms) -> RequestBatch.
BatchSource = Callable[[int, float], RequestBatch]


@dataclass(frozen=True, slots=True)
class CompletionRecord:
    """One completed batch, as observed by the client pool."""

    batch_id: str
    num_txns: int
    submitted_at_ms: float
    completed_at_ms: float
    view: int
    sequence: int

    @property
    def latency_ms(self) -> float:
        return self.completed_at_ms - self.submitted_at_ms


@dataclass(slots=True)
class _PendingBatch:
    """Book-keeping for one outstanding batch.

    ``replies`` maps each distinct reply key to an aggregated voter
    bitset indexed by replica (:class:`~repro.protocols.quorum.VoteSet`),
    so counting one of the n replies per batch is a dict lookup plus
    integer arithmetic — no per-reply set/dict churn.
    """

    batch: RequestBatch
    submitted_at_ms: float
    replies: Dict[Tuple, VoteSet] = field(default_factory=dict)
    retransmissions: int = 0


def synthetic_batch_source(client_id: str, batch_size: int) -> BatchSource:
    """Batch source producing cost-modelled batches of *batch_size*."""

    def factory(index: int, now_ms: float) -> RequestBatch:
        return make_synthetic_batch(
            batch_id=f"{client_id}:batch:{index}", client_id=client_id,
            size=batch_size, created_at_ms=now_ms,
        )

    return factory


class ClientPool(ClientNode):
    """Open/closed-loop client population submitting batches to the primary.

    Args:
        node_id: identifier of the pool.
        config: the shared deployment configuration.
        batch_source: factory producing the next batch to submit.
        completion_quorum: number of matching replies that complete a batch
            (``nf`` for PoE, ``f + 1`` for PBFT/HotStuff, ``n`` for
            Zyzzyva's fast path, 1 for SBFT's aggregated reply).
        target_outstanding: batches kept in flight concurrently; 1 gives
            the closed-loop behaviour of the out-of-order-disabled
            experiments (Figures 9(k), 9(l)).
        total_batches: stop submitting after this many completions
            (``None`` = unbounded, for timed runs).
        timeout_ms: retransmission timeout (defaults to the config's
            request timeout, 3 s in the paper).
        broadcast_requests: send every request to all replicas instead of
            only the current primary (needed by rotating-leader protocols
            such as HotStuff, where any replica may end up proposing it).
        completion_quorum_fn: per-epoch quorum rule for reconfigured
            deployments — called with the epoch that governs a reply's
            sequence and returns the quorum that completes the batch
            (``nf_of`` for PoE, ``f_of + 1`` for PBFT/HotStuff, ``n_of``
            for Zyzzyva).  Ignored while the deployment has not
            reconfigured, so fixed-membership runs keep the single
            attribute read.
    """

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        completion_quorum: Optional[int] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        broadcast_requests: bool = False,
        completion_quorum_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        super().__init__(node_id, config)
        self.batch_source = batch_source or synthetic_batch_source(node_id, config.batch_size)
        self.completion_quorum = completion_quorum if completion_quorum is not None else config.nf
        if completion_quorum_fn is None and completion_quorum is None:
            completion_quorum_fn = config.nf_of
        self.completion_quorum_fn = completion_quorum_fn
        self.target_outstanding = target_outstanding
        self.total_batches = total_batches
        self.timeout_ms = timeout_ms if timeout_ms is not None else config.request_timeout_ms
        self.broadcast_requests = broadcast_requests
        self.completions: List[CompletionRecord] = []
        self.current_view = 0
        self._pending: Dict[str, _PendingBatch] = {}
        self._submitted = 0
        # Insertion-ordered dedup window for completed batch ids.  A batch
        # whose pending entry is gone can never reach _complete again, so
        # only recently-completed ids need to be remembered; the window
        # keeps the dedup structure bounded on unbounded (soak) runs.
        self._completed_ids: Dict[str, None] = {}
        self._completed_retention = 4 * target_outstanding + 64
        # Reply voters resolve to replica indices through the shared
        # membership map; replies from senders outside the membership
        # still count via the VoteSet overflow path.
        self._replica_index = config.replica_index_map

    # -- inspection -------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    @property
    def completed_batches(self) -> int:
        return len(self.completions)

    @property
    def completed_txns(self) -> int:
        return sum(record.num_txns for record in self.completions)

    def is_done(self) -> bool:
        """Has the pool completed every batch it was asked to submit?"""
        return self.total_batches is not None and len(self.completions) >= self.total_batches

    # -- lifecycle --------------------------------------------------------------
    def on_start(self, now_ms: float) -> None:
        self._fill_pipeline(now_ms)

    def _fill_pipeline(self, now_ms: float) -> None:
        while len(self._pending) < self.target_outstanding:
            if self.total_batches is not None and self._submitted >= self.total_batches:
                break
            self._submit_next(now_ms)

    def _submit_next(self, now_ms: float) -> None:
        batch = self.batch_source(self._submitted, now_ms)
        self._submitted += 1
        self._pending[batch.batch_id] = _PendingBatch(batch=batch, submitted_at_ms=now_ms)
        self._send_request(batch, now_ms, retransmission=False)
        self.set_timer(f"request:{batch.batch_id}", self.timeout_ms, payload=batch.batch_id)

    def _send_request(self, batch: RequestBatch, now_ms: float,
                      retransmission: bool) -> None:
        message = ClientRequestMessage(
            batch=batch,
            reply_to=self.node_id,
            retransmission=retransmission,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        )
        if retransmission or self.broadcast_requests:
            # The paper: a client that gets no timely response broadcasts
            # its request to all replicas, which forward it to the primary.
            self.broadcast(message)
        elif self.config.reconfigured:
            # Best-effort latest-epoch primary; a stale guess is repaired
            # by the retransmission broadcast like any other dark primary.
            self.send(self.config.primary_of_view_in_epoch(
                self.current_view, self.config.latest_epoch), message)
        else:
            self.send(self.config.primary_of_view(self.current_view), message)

    # -- replies -----------------------------------------------------------------
    def on_message(self, sender: str, message, now_ms: float) -> None:
        if not isinstance(message, ClientReplyMessage):
            self.on_other_message(sender, message, now_ms)
            return
        pending = self._pending.get(message.batch_id)
        if pending is None:
            return
        key = message.matching_key()
        voters = pending.replies.get(key)
        if voters is None:
            voters = pending.replies[key] = VoteSet(self._replica_index)
        # Reply identity is the transport-level sender: counting the claimed
        # ``message.replica_id`` would let one Byzantine replica fabricate a
        # whole quorum of matching INFORMs under forged identities.
        voters.add(sender)
        if message.view > self.current_view:
            self.current_view = message.view
        if voters.count >= self.quorum_for_sequence(message.sequence):
            self._complete(message, pending, now_ms)

    def quorum_for_sequence(self, sequence: int) -> int:
        """The completion quorum for a reply certified at *sequence*.

        Fixed-membership deployments answer from the cached constant; once
        a reconfiguration registered, the per-epoch rule is consulted so a
        batch committed under a grown (or shrunk) epoch is completed
        against that epoch's quorum.
        """
        config = self.config
        if not config.reconfigured or self.completion_quorum_fn is None:
            return self.completion_quorum
        return self.completion_quorum_fn(config.epoch_of_sequence(sequence))

    def on_other_message(self, sender: str, message, now_ms: float) -> None:
        """Hook for protocol-specific client messages (default: ignore)."""

    def _complete(self, reply: ClientReplyMessage, pending: _PendingBatch,
                  now_ms: float) -> None:
        batch_id = reply.batch_id
        if batch_id in self._completed_ids:
            return
        self._completed_ids[batch_id] = None
        while len(self._completed_ids) > self._completed_retention:
            del self._completed_ids[next(iter(self._completed_ids))]
        self._pending.pop(batch_id, None)
        self.cancel_timer(f"request:{batch_id}")
        self.completions.append(
            CompletionRecord(
                batch_id=batch_id,
                num_txns=len(pending.batch),
                submitted_at_ms=pending.submitted_at_ms,
                completed_at_ms=now_ms,
                view=reply.view,
                sequence=reply.sequence,
            )
        )
        self._fill_pipeline(now_ms)

    # -- timeouts ----------------------------------------------------------------
    def on_timer(self, name: str, payload, now_ms: float) -> None:
        if not name.startswith("request:"):
            return
        batch_id = payload
        pending = self._pending.get(batch_id)
        if pending is None:
            return
        self.on_request_timeout(pending, now_ms)

    def on_request_timeout(self, pending: _PendingBatch, now_ms: float) -> None:
        """Default timeout behaviour: broadcast the request to all replicas."""
        pending.retransmissions += 1
        self._send_request(pending.batch, now_ms, retransmission=True)
        backoff = self.timeout_ms * (2 ** min(pending.retransmissions, 4))
        self.set_timer(f"request:{pending.batch.batch_id}", backoff,
                       payload=pending.batch.batch_id)


@dataclass(slots=True)
class _PendingSingle:
    """One outstanding single-shard batch."""

    batch: RequestBatch
    shard: int
    submitted_at_ms: float
    replies: Dict[Tuple, VoteSet] = field(default_factory=dict)
    retransmissions: int = 0


@dataclass(slots=True)
class _PendingXShard:
    """One outstanding cross-shard transaction.

    ``mode`` tracks who is driving the 2PC right now: ``"coord"`` while the
    transaction is delegated to the coordinator, ``"prepare"``/``"probe"``
    while the pool itself collects per-shard votes, ``"decide"`` once a
    certified decision is being written to every shard.
    """

    plan: object  # CrossShardPlan
    submitted_at_ms: float
    mode: str = "coord"
    votes: Dict[Tuple, VoteSet] = field(default_factory=dict)
    phase_results: Dict[int, Tuple[str, Tuple[str, ...]]] = field(default_factory=dict)
    decided: Dict[int, Tuple[str, int, int]] = field(default_factory=dict)
    #: shard -> (outcome, voters) for shards that reached a terminal decide
    #: quorum; recovery certificates for the remaining shards are built
    #: from these claims plus fresh probe results.
    decided_claims: Dict[int, Tuple[str, Tuple[str, ...]]] = field(default_factory=dict)
    decision: str = ""
    cert: Tuple = ()
    retransmissions: int = 0
    rejected_seen: bool = False


class ShardedClientPool(ClientNode):
    """Client pool for a sharded deployment.

    Single-shard batches are routed to the owning shard's primary and
    completed against that shard's reply quorum.  Cross-shard plans are
    handed to the shard coordinator for two-phase commit; the decide
    records carry this pool as ``reply_to``, so the pool counts decide
    replies per touched shard and completes the transaction only once
    **every** shard has a quorum-backed terminal outcome.

    The pool is also the 2PC fallback driver.  If a transaction's timer
    fires while the coordinator is responsible for it, the pool presumes
    the coordinator dead: it PROBEs every touched shard (which marks
    still-unprepared shards *refused* — presumed abort), derives the only
    decision consistent with the probe certificates, and writes the
    certified decide records itself.  From then on the pool self-drives
    the prepare phase for its subsequent cross-shard transactions.

    Args:
        node_id: identifier of the pool.
        config: deployment-wide node configuration (sizes, timeouts).
        layout: shard membership and quorum rules.
        batch_source: factory producing ``SingleShardBatch`` or
            ``CrossShardPlan`` items.
        coordinator_id: node id of the shard coordinator ("" = the pool
            always drives 2PC itself).
    """

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        layout,
        batch_source,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        coordinator_id: str = "",
    ) -> None:
        super().__init__(node_id, config)
        self.layout = layout
        self.batch_source = batch_source
        self.target_outstanding = target_outstanding
        self.total_batches = total_batches
        self.timeout_ms = timeout_ms if timeout_ms is not None else config.request_timeout_ms
        # A delegated 2PC needs two consensus rounds (prepare, decide), so
        # the pool gives the coordinator twice the single-shard budget
        # before presuming it dead and probing.
        self.xshard_timeout_ms = 2.0 * self.timeout_ms
        self.coordinator_id = coordinator_id
        self.coordinator_suspect = False
        self.completions: List[CompletionRecord] = []
        #: txn -> {shard: terminal outcome} as observed via reply quorums.
        self.xshard_outcomes: Dict[str, Dict[int, str]] = {}
        #: txn -> CrossShardPlan, for the safety auditor.
        self.xshard_plans: Dict[str, object] = {}
        self._views = [0] * layout.num_shards
        self._pending: Dict[str, object] = {}
        self._submitted = 0
        self._completed_ids: Dict[str, None] = {}
        self._completed_retention = 4 * target_outstanding + 64

    # -- inspection -------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    @property
    def completed_batches(self) -> int:
        return len(self.completions)

    @property
    def completed_txns(self) -> int:
        return sum(record.num_txns for record in self.completions)

    def is_done(self) -> bool:
        return self.total_batches is not None and len(self.completions) >= self.total_batches

    # -- lifecycle --------------------------------------------------------------
    def on_start(self, now_ms: float) -> None:
        self._fill_pipeline(now_ms)

    def _fill_pipeline(self, now_ms: float) -> None:
        while len(self._pending) < self.target_outstanding:
            if self.total_batches is not None and self._submitted >= self.total_batches:
                break
            self._submit_next(now_ms)

    def _submit_next(self, now_ms: float) -> None:
        from repro.workload.xshard import CrossShardPlan

        item = self.batch_source(self._submitted, now_ms)
        self._submitted += 1
        if isinstance(item, CrossShardPlan):
            self._submit_xshard(item, now_ms)
        else:
            self._submit_single(item, now_ms)

    # -- single-shard path ------------------------------------------------------
    def _submit_single(self, item, now_ms: float) -> None:
        pending = _PendingSingle(batch=item.batch, shard=item.shard,
                                 submitted_at_ms=now_ms)
        self._pending[item.batch.batch_id] = pending
        self._send_single(pending, now_ms, retransmission=False)
        self.set_timer(f"request:{item.batch.batch_id}", self.timeout_ms,
                       payload=item.batch.batch_id)

    def _send_single(self, pending: _PendingSingle, now_ms: float,
                     retransmission: bool) -> None:
        message = ClientRequestMessage(
            batch=pending.batch,
            reply_to=self.node_id,
            retransmission=retransmission,
            size_bytes=self.config.proposal_size_bytes(len(pending.batch)),
        )
        self._route(pending.shard, message, retransmission)

    def _route(self, shard: int, message, retransmission: bool) -> None:
        """Send to the shard primary, or every shard member on retransmit.

        Retransmission broadcasts are what let shard backups notice a dead
        primary and drive a view change — same mechanism as the
        single-group :class:`ClientPool`, scoped to the shard's members.
        """
        if retransmission or self.layout.wants_broadcast(shard):
            for rid in self.layout.replicas(shard):
                self.send(rid, message)
        else:
            self.send(self.layout.primary(shard, self._views[shard]), message)

    # -- cross-shard path -------------------------------------------------------
    def _submit_xshard(self, plan, now_ms: float) -> None:
        self.xshard_plans[plan.txn] = plan
        pending = _PendingXShard(plan=plan, submitted_at_ms=now_ms)
        self._pending[plan.txn] = pending
        if self.coordinator_id and not self.coordinator_suspect:
            from repro.workload.xshard import CoordSubmit

            pending.mode = "coord"
            self.send(self.coordinator_id,
                      CoordSubmit(plan=plan, reply_to=self.node_id))
        else:
            self._begin_prepare(plan.txn, pending, now_ms)
        self.set_timer(f"request:{plan.txn}", self.xshard_timeout_ms,
                       payload=plan.txn)

    def _begin_prepare(self, txn: str, pending: _PendingXShard,
                       now_ms: float, resend: bool = False) -> None:
        from repro.workload.xshard import PREPARE, make_control_batch

        if not resend:
            pending.mode = "prepare"
            pending.phase_results = {}
        for shard in pending.plan.shards:
            if shard in pending.phase_results or shard in pending.decided:
                continue
            batch = make_control_batch(
                txn, PREPARE, shard, pending.plan.shards,
                reply_to=self.node_id, created_at_ms=now_ms)
            self._send_control(shard, batch, retransmission=resend)

    def _begin_probe(self, txn: str, pending: _PendingXShard,
                     now_ms: float, resend: bool = False) -> None:
        from repro.workload.xshard import PROBE, make_control_batch

        if not resend:
            pending.mode = "probe"
            pending.phase_results = {}
        for shard in pending.plan.shards:
            if shard in pending.phase_results or shard in pending.decided:
                continue
            batch = make_control_batch(
                txn, PROBE, shard, pending.plan.shards,
                reply_to=self.node_id, created_at_ms=now_ms)
            # Probes always go to every member: the reason we are probing
            # is that somebody (coordinator or shard primary) went silent.
            self._send_control(shard, batch, retransmission=True)

    def _send_control(self, shard: int, batch, retransmission: bool) -> None:
        message = ClientRequestMessage(
            batch=batch,
            reply_to=self.node_id,
            retransmission=retransmission,
            size_bytes=self.config.proposal_size_bytes(1),
        )
        self._route(shard, message, retransmission)

    def _send_decides(self, txn: str, pending: _PendingXShard, now_ms: float,
                      retransmission: bool) -> None:
        from repro.workload.xshard import COMMIT, make_control_batch

        for shard in pending.plan.shards:
            if shard in pending.decided:
                continue
            payload = pending.plan.slice_for(shard) if pending.decision == COMMIT else ()
            batch = make_control_batch(
                txn, pending.decision, shard, pending.plan.shards,
                cert=pending.cert, payload_txns=payload,
                reply_to=self.node_id, created_at_ms=now_ms)
            self._send_control(shard, batch, retransmission)

    # -- replies -----------------------------------------------------------------
    def on_message(self, sender: str, message, now_ms: float) -> None:
        if not isinstance(message, ClientReplyMessage):
            return
        pending = self._pending.get(message.batch_id)
        if isinstance(pending, _PendingSingle):
            self._on_single_reply(sender, message, pending, now_ms)
            return
        from repro.workload.xshard import parse_control_batch_id

        parsed = parse_control_batch_id(message.batch_id)
        if parsed is None:
            return
        txn, phase, shard = parsed
        pending = self._pending.get(txn)
        if isinstance(pending, _PendingXShard) and 0 <= shard < self.layout.num_shards:
            self._on_control_reply(sender, message, pending, txn, phase,
                                   shard, now_ms)

    def _on_single_reply(self, sender: str, message, pending: _PendingSingle,
                         now_ms: float) -> None:
        key = message.matching_key()
        voters = pending.replies.get(key)
        if voters is None:
            voters = pending.replies[key] = VoteSet(self.layout.index_map(pending.shard))
        voters.add(sender)
        if message.view > self._views[pending.shard]:
            self._views[pending.shard] = message.view
        if voters.count < self.layout.reply_quorum(pending.shard):
            return
        batch_id = message.batch_id
        if batch_id in self._completed_ids:
            return
        self._remember_completed(batch_id)
        self._pending.pop(batch_id, None)
        self.cancel_timer(f"request:{batch_id}")
        self.completions.append(CompletionRecord(
            batch_id=batch_id,
            num_txns=len(pending.batch),
            submitted_at_ms=pending.submitted_at_ms,
            completed_at_ms=now_ms,
            view=message.view,
            sequence=message.sequence,
        ))
        self._fill_pipeline(now_ms)

    def _on_control_reply(self, sender: str, message, pending: _PendingXShard,
                          txn: str, phase: str, shard: int,
                          now_ms: float) -> None:
        from repro.workload.xshard import DECIDE_PHASES, PREPARE, PROBE, decode_outcome

        key = message.matching_key()
        votes = pending.votes.get(key)
        if votes is None:
            votes = pending.votes[key] = VoteSet(self.layout.index_map(shard))
        votes.add(sender)
        if message.view > self._views[shard]:
            self._views[shard] = message.view
        if votes.count < self.layout.reply_quorum(shard):
            return
        outcome = decode_outcome(message.result_digest, txn, phase, shard)
        if outcome is None:
            return
        if phase in DECIDE_PHASES:
            self._on_decide_quorum(txn, pending, shard, outcome, message,
                                   votes, now_ms)
        elif phase in (PREPARE, PROBE):
            # Only count votes for the round the pool is currently running,
            # so a late prepare quorum cannot contaminate a probe round.
            if pending.mode != ("probe" if phase == PROBE else "prepare"):
                return
            self._on_phase_quorum(txn, pending, shard, outcome, votes, now_ms)

    def _on_decide_quorum(self, txn: str, pending: _PendingXShard, shard: int,
                          outcome: str, message, votes: VoteSet,
                          now_ms: float) -> None:
        if outcome in ("committed", "aborted"):
            if shard in pending.decided:
                return
            pending.decided[shard] = (outcome, message.view, message.sequence)
            pending.decided_claims[shard] = (outcome, tuple(sorted(votes)))
            if all(s in pending.decided for s in pending.plan.shards):
                self._complete_xshard(txn, pending, now_ms)
        elif outcome == "rejected" and not pending.rejected_seen:
            # A quorum of the shard refused the decide record's certificate.
            # Whoever wrote that record cannot be trusted; re-derive the
            # decision from the shards themselves.
            pending.rejected_seen = True
            self.coordinator_suspect = True
            self._begin_probe(txn, pending, now_ms)

    def _on_phase_quorum(self, txn: str, pending: _PendingXShard, shard: int,
                         outcome: str, votes: VoteSet, now_ms: float) -> None:
        if shard in pending.phase_results:
            return
        pending.phase_results[shard] = (outcome, tuple(sorted(votes)))
        if all(s in pending.phase_results or s in pending.decided
               for s in pending.plan.shards):
            self._decide_from_results(txn, pending, now_ms)

    def _decide_from_results(self, txn: str, pending: _PendingXShard,
                             now_ms: float) -> None:
        """Turn per-shard vote certificates into the one consistent decision.

        Any *committed* shard forces commit (a valid commit certificate
        once existed, so every shard prepared); otherwise any refusal or
        abort forces abort (presumed abort); otherwise every shard stands
        prepared and the transaction commits.
        """
        from repro.workload.xshard import ABORT, COMMIT

        outcomes = [pending.phase_results[s][0]
                    for s in pending.plan.shards if s in pending.phase_results]
        outcomes.extend(state[0] for state in pending.decided.values())
        if any(o == "committed" for o in outcomes):
            decision = COMMIT
        elif any(o in ("refused", "aborted") for o in outcomes):
            decision = ABORT
        else:
            decision = COMMIT
        pending.decision = decision
        claims = []
        for shard in pending.plan.shards:
            # A shard that already reached a terminal decide quorum attests
            # through its decide voters; others through this round's votes.
            claim = pending.phase_results.get(shard) or pending.decided_claims.get(shard)
            if claim is not None:
                claims.append((shard,) + claim)
        pending.cert = tuple(claims)
        pending.mode = "decide"
        self._send_decides(txn, pending, now_ms, retransmission=False)

    def _remember_completed(self, key: str) -> None:
        self._completed_ids[key] = None
        while len(self._completed_ids) > self._completed_retention:
            del self._completed_ids[next(iter(self._completed_ids))]

    def _complete_xshard(self, txn: str, pending: _PendingXShard,
                         now_ms: float) -> None:
        if txn in self._completed_ids:
            return
        self._remember_completed(txn)
        self._pending.pop(txn, None)
        self.cancel_timer(f"request:{txn}")
        self.xshard_outcomes[txn] = {
            shard: state[0] for shard, state in pending.decided.items()}
        first = pending.decided[pending.plan.shards[0]]
        # Aborted transactions count as completed work too: the 2PC reached
        # a durable decision on every shard, which is what the client was
        # waiting for.  The outcome map keeps commits and aborts apart.
        self.completions.append(CompletionRecord(
            batch_id=txn,
            num_txns=pending.plan.logical_size,
            submitted_at_ms=pending.submitted_at_ms,
            completed_at_ms=now_ms,
            view=first[1],
            sequence=first[2],
        ))
        if self.coordinator_id:
            from repro.workload.xshard import CoordAck

            self.send(self.coordinator_id, CoordAck(txn=txn))
        self._fill_pipeline(now_ms)

    # -- timeouts ----------------------------------------------------------------
    def on_timer(self, name: str, payload, now_ms: float) -> None:
        if not name.startswith("request:"):
            return
        pending = self._pending.get(payload)
        if pending is None:
            return
        pending.retransmissions += 1
        if isinstance(pending, _PendingSingle):
            self._send_single(pending, now_ms, retransmission=True)
        elif pending.mode == "coord":
            # The coordinator had two full timeouts to decide; presume it
            # dead, probe the shards, and self-drive from here on.
            self.coordinator_suspect = True
            self._begin_probe(payload, pending, now_ms)
        elif pending.mode == "prepare":
            self._begin_prepare(payload, pending, now_ms, resend=True)
        elif pending.mode == "probe":
            self._begin_probe(payload, pending, now_ms, resend=True)
        else:
            self._send_decides(payload, pending, now_ms, retransmission=True)
        base = self.timeout_ms if isinstance(pending, _PendingSingle) else self.xshard_timeout_ms
        backoff = base * (2 ** min(pending.retransmissions, 4))
        self.set_timer(f"request:{payload}", backoff, payload=payload)


class ClosedLoopClient(ClientPool):
    """A client with exactly one request outstanding at any time.

    Used by the out-of-order-disabled experiments (Figures 9(k), 9(l)),
    where the paper requires "each client to only send its request when it
    has accepted a response for its previous query".
    """

    def __init__(self, node_id: str, config: NodeConfig,
                 batch_source: Optional[BatchSource] = None,
                 completion_quorum: Optional[int] = None,
                 total_batches: Optional[int] = None,
                 timeout_ms: Optional[float] = None,
                 outstanding: int = 1) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=completion_quorum,
            target_outstanding=outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
        )
