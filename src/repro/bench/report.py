"""Plain-text reporting used by the benchmark harness.

Each benchmark regenerates the rows/series of one paper table or figure;
these helpers print them in a compact, aligned form so the output can be
compared side by side with the paper (EXPERIMENTS.md records both).

pytest captures stdout by default, so in addition to printing, every
report is appended to a plain-text file (``benchmark_results.txt`` in the
current working directory, overridable through the environment variable
``REPRO_BENCH_REPORT``).  Running the benchmark suite therefore always
leaves the regenerated tables on disk, even without ``-s``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Sequence


def _report_path() -> str:
    return os.environ.get("REPRO_BENCH_REPORT", "benchmark_results.txt")


def _append_to_report(text: str) -> None:
    try:
        with open(_report_path(), "a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    except OSError:
        # Reporting must never fail a benchmark run.
        pass


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str] = ()) -> str:
    """Format dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    keys = list(columns) if columns else list(rows[0].keys())
    header = {key: key for key in keys}
    widths = {key: len(key) for key in keys}
    rendered: List[Dict[str, str]] = []
    for row in rows:
        text_row = {key: str(row.get(key, "")) for key in keys}
        rendered.append(text_row)
        for key in keys:
            widths[key] = max(widths[key], len(text_row[key]))
    lines = []
    for row in [header] + rendered:
        lines.append("  ".join(row[key].rjust(widths[key]) for key in keys))
    return "\n".join(lines)


def print_results(title: str, rows: Iterable[Dict[str, object]],
                  columns: Sequence[str] = ()) -> None:
    """Print one benchmark's result table and append it to the report file."""
    text = f"\n=== {title} ===\n" + format_table(list(rows), columns=columns)
    print(text)
    _append_to_report(text)


def print_series(title: str, points: Iterable[Dict[str, object]]) -> None:
    """Print a (x, y) series (e.g. a throughput timeline) and record it."""
    lines = [f"\n--- {title} ---"]
    for point in points:
        rendered = ", ".join(f"{key}={value}" for key, value in point.items())
        lines.append(f"  {rendered}")
    text = "\n".join(lines)
    print(text)
    _append_to_report(text)
