"""Wall-clock performance harness for the simulation fabric.

The figure benchmarks under ``benchmarks/`` report *virtual-time* metrics
(throughput and latency inside the simulated cluster).  This module
measures the orthogonal quantity that caps every sweep we can afford to
run: how fast the simulator itself executes on real hardware, in events
per wall-clock second.  It drives three kinds of measurements:

* a raw event-loop microbenchmark (schedule + drain, with and without a
  cancellation mix) against :class:`~repro.net.simulator.Simulator`;
* end-to-end cluster runs across protocols and replica counts, recording
  wall seconds, processed events and transactions per wall second;
* a determinism check: the same seeded :class:`ClusterConfig` run twice
  must produce byte-identical completion records, proving that hot-path
  rewrites preserve insertion-order tie-breaking.

``run_suite`` bundles all three and ``write_report`` persists the result
as ``BENCH_simperf.json`` so future performance PRs are judged against a
recorded baseline rather than folklore.  Scale is selected with the same
``REPRO_BENCH_SCALE`` switch the figure benchmarks use (``quick`` or
``paper``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.cluster import Cluster, ClusterConfig

from repro.net.simulator import Simulator

SCHEMA_VERSION = 1

#: Default output file name; the benchmark driver writes it at the repo root.
DEFAULT_REPORT_NAME = "BENCH_simperf.json"


@dataclass(frozen=True)
class PerfScale:
    """Size of the perf sweeps (mirrors the figure benchmarks' scales)."""

    name: str
    event_loop_events: int
    repeats: int
    cluster_batches: int
    cluster_repeats: int
    protocols: Tuple[str, ...]
    poe_replica_counts: Tuple[int, ...]
    determinism_batches: int


QUICK = PerfScale(
    name="quick",
    event_loop_events=150_000,
    repeats=3,
    cluster_batches=60,
    cluster_repeats=2,
    protocols=("poe", "poe-mac", "pbft", "sbft", "zyzzyva", "hotstuff"),
    poe_replica_counts=(4, 16, 32),
    determinism_batches=30,
)

PAPER = PerfScale(
    name="paper",
    event_loop_events=500_000,
    repeats=5,
    cluster_batches=120,
    cluster_repeats=3,
    protocols=("poe", "poe-mac", "pbft", "sbft", "zyzzyva", "hotstuff"),
    poe_replica_counts=(4, 16, 32, 64, 91),
    determinism_batches=60,
)


def current_perf_scale() -> PerfScale:
    """Scale selected through ``REPRO_BENCH_SCALE`` (default ``quick``)."""
    return PAPER if os.environ.get("REPRO_BENCH_SCALE", "quick") == "paper" else QUICK


def _best_wall_seconds(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall time of *repeats* runs of *fn* (noise suppression)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# --------------------------------------------------------------- event loop
def measure_event_loop(num_events: int = 150_000, repeats: int = 3) -> Dict[str, object]:
    """Raw scheduler throughput: schedule *num_events* no-ops and drain.

    Also measures a cancellation-heavy mix (every other event cancelled
    before the drain) because lazy deletion is on the timer hot path.
    """

    def plain() -> None:
        sim = Simulator()
        schedule = sim.schedule
        for i in range(num_events):
            schedule((i % 97) * 0.01, _noop)
        sim.run_until_idle(max_events=num_events + 1)

    def cancelling() -> None:
        sim = Simulator()
        schedule = sim.schedule
        events = [schedule((i % 89) * 0.01, _noop) for i in range(num_events)]
        for event in events[::2]:
            event.cancel()
        sim.run_until_idle(max_events=num_events + 1)

    plain_wall = _best_wall_seconds(plain, repeats)
    cancel_wall = _best_wall_seconds(cancelling, repeats)
    return {
        "num_events": num_events,
        "wall_s": round(plain_wall, 6),
        "events_per_sec": round(num_events / plain_wall, 1),
        "cancellation_mix": {
            "num_events": num_events,
            "cancelled_fraction": 0.5,
            "wall_s": round(cancel_wall, 6),
            "events_per_sec": round(num_events / cancel_wall, 1),
        },
    }


def _noop() -> None:
    return None


# ------------------------------------------------------------------ clusters
def measure_cluster(protocol: str, num_replicas: int, total_batches: int,
                    batch_size: int = 100, seed: int = 3,
                    repeats: int = 2) -> Dict[str, object]:
    """Wall-clock cost of one full cluster run (best of *repeats*)."""
    best_wall = float("inf")
    reference: Optional[Tuple[int, int, float]] = None
    throughput = 0.0
    for _ in range(max(1, repeats)):
        cluster = Cluster(ClusterConfig(
            protocol=protocol, num_replicas=num_replicas,
            batch_size=batch_size, total_batches=total_batches, seed=seed,
        ))
        cluster.start()
        start = time.perf_counter()
        cluster.run_until_done()
        wall = time.perf_counter() - start
        events = cluster.simulator.processed_events
        completed = sum(pool.completed_txns for pool in cluster.pools)
        virtual_ms = cluster.simulator.now
        signature = (events, completed, virtual_ms)
        if reference is None:
            reference = signature
            throughput = cluster.result().throughput_txn_per_s
        elif signature != reference:
            raise AssertionError(
                f"non-deterministic run for {protocol} n={num_replicas}: "
                f"{signature} != {reference}")
        if wall < best_wall:
            best_wall = wall
    events, completed_txns, virtual_ms = reference
    return {
        "protocol": protocol,
        "n": num_replicas,
        "batch_size": batch_size,
        "total_batches": total_batches,
        "seed": seed,
        "wall_s": round(best_wall, 4),
        "processed_events": events,
        "events_per_wall_sec": round(events / best_wall, 1),
        "completed_txns": completed_txns,
        "txns_per_wall_sec": round(completed_txns / best_wall, 1),
        "virtual_ms": round(virtual_ms, 3),
        "virtual_throughput_txn_per_s": round(throughput, 1),
    }


# -------------------------------------------------------------- determinism
def run_fingerprint(config: ClusterConfig,
                    max_ms: float = 300_000.0) -> Tuple[Tuple, ...]:
    """Run *config* once and return a hashable fingerprint of the outcome.

    The fingerprint covers every completion record (identity, timing, view
    and sequence), the event count and the final virtual clock, so any
    divergence in scheduling order shows up as a mismatch.
    """
    cluster = Cluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    records = tuple(
        (r.batch_id, r.num_txns, r.submitted_at_ms, r.completed_at_ms,
         r.view, r.sequence)
        for r in cluster.completions()
    )
    summary = cluster.result()
    return (
        records,
        cluster.simulator.processed_events,
        cluster.simulator.now,
        round(summary.throughput_txn_per_s, 9),
        round(summary.avg_latency_ms, 9),
    )


def check_determinism(protocols: Sequence[str] = ("poe", "poe-mac"),
                      num_replicas: int = 4, total_batches: int = 30,
                      batch_size: int = 50, seed: int = 11) -> Dict[str, object]:
    """Assert same-seed reproducibility for *protocols*; returns a report."""
    checks: List[Dict[str, object]] = []
    all_ok = True
    for protocol in protocols:
        config = ClusterConfig(
            protocol=protocol, num_replicas=num_replicas,
            batch_size=batch_size, total_batches=total_batches, seed=seed,
        )
        first = run_fingerprint(config)
        second = run_fingerprint(ClusterConfig(
            protocol=protocol, num_replicas=num_replicas,
            batch_size=batch_size, total_batches=total_batches, seed=seed,
        ))
        identical = first == second
        all_ok = all_ok and identical and bool(first[0])
        checks.append({
            "protocol": protocol,
            "n": num_replicas,
            "total_batches": total_batches,
            "seed": seed,
            "completed_batches": len(first[0]),
            "identical": identical,
        })
    return {"ok": all_ok, "checks": checks}


# ------------------------------------------------------------------- suite
def run_suite(scale: Optional[PerfScale] = None) -> Dict[str, object]:
    """Run the full perf suite at *scale* (default: env-selected)."""
    scale = scale or current_perf_scale()
    event_loop = measure_event_loop(scale.event_loop_events, scale.repeats)
    clusters: List[Dict[str, object]] = []
    for protocol in scale.protocols:
        clusters.append(measure_cluster(
            protocol, num_replicas=4, total_batches=scale.cluster_batches,
            repeats=scale.cluster_repeats))
    for n in scale.poe_replica_counts:
        if n == 4:
            continue  # already covered by the protocol sweep
        clusters.append(measure_cluster(
            "poe", num_replicas=n, total_batches=scale.cluster_batches,
            repeats=scale.cluster_repeats))
    determinism = check_determinism(total_batches=scale.determinism_batches)
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "simperf",
        "scale": scale.name,
        "recorded_at_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "event_loop": event_loop,
        "clusters": clusters,
        "determinism": determinism,
    }


def write_report(results: Dict[str, object], path: str) -> str:
    """Write *results* as pretty-printed JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run the suite and write the JSON report."""
    argv = list(sys.argv[1:] if argv is None else argv)
    path = argv[0] if argv else DEFAULT_REPORT_NAME
    results = run_suite()
    write_report(results, path)
    loop = results["event_loop"]
    print(f"event loop: {loop['events_per_sec']:,.0f} events/s")
    for row in results["clusters"]:
        print(f"{row['protocol']} n={row['n']}: "
              f"{row['events_per_wall_sec']:,.0f} events/s, "
              f"{row['txns_per_wall_sec']:,.0f} txn/s (wall)")
    print(f"determinism ok: {results['determinism']['ok']}")
    print(f"wrote {path}")
    # Determinism is load-bearing: a divergence must fail CI smoke runs,
    # not just be recorded in the report.
    return 0 if results["determinism"]["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
