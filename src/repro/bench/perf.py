"""Wall-clock performance harness for the simulation fabric.

The figure benchmarks under ``benchmarks/`` report *virtual-time* metrics
(throughput and latency inside the simulated cluster).  This module
measures the orthogonal quantity that caps every sweep we can afford to
run: how fast the simulator itself executes on real hardware, in events
per wall-clock second.  It drives three kinds of measurements:

* a raw event-loop microbenchmark (schedule + drain, with and without a
  cancellation mix) against :class:`~repro.net.simulator.Simulator`;
* end-to-end cluster runs across protocols and replica counts, recording
  wall seconds, processed events and transactions per wall second;
* a determinism check: the same seeded :class:`ClusterConfig` run twice
  must produce byte-identical completion records, proving that hot-path
  rewrites preserve insertion-order tie-breaking.

``run_suite`` bundles all three and ``write_report`` persists the result
as ``BENCH_simperf.json`` so future performance PRs are judged against a
recorded baseline rather than folklore.  Scale is selected with the same
``REPRO_BENCH_SCALE`` switch the figure benchmarks use (``quick`` or
``paper``).
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import platform
import pstats
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.cluster import Cluster, ClusterConfig

# Re-exported: the run fingerprint lives with the other canonical state
# hashes in fabric/fingerprint.py (the model checker shares the
# per-replica helpers), but the determinism harness grew around this
# module's name for it.
from repro.fabric.fingerprint import run_fingerprint  # noqa: F401

from repro.net.simulator import Simulator

#: Version 2 added the large-n rows (MAC-mode PoE vs PBFT at n=32/64/128)
#: and the same-host HEAD-vs-baseline delta mode (``compare_reports``).
#: Version 3 added the sharded rows: multi-group clusters with cross-shard
#: 2PC, reported under synthetic protocol labels like ``poe-2sh-x20``
#: (two PoE shards, 20% cross-shard transactions).
#: Version 4 records, on every sharded row, the ``driver`` that executed
#: it (``sequential`` in-process vs ``parallel`` worker processes) and the
#: per-shard ``shard_processed_events`` breakdown; the parallel compare
#: mode (``measure_parallel_speedup``) emits rows of both drivers.
SCHEMA_VERSION = 4

#: Default output file name; the benchmark driver writes it at the repo root.
DEFAULT_REPORT_NAME = "BENCH_simperf.json"


@dataclass(frozen=True)
class PerfScale:
    """Size of the perf sweeps (mirrors the figure benchmarks' scales).

    ``large_n_rows`` lists ``(protocol, n, total_batches)`` rows exercising
    the n² MAC-mode vote floods at cluster sizes the protocol sweep does
    not reach; the batch budget shrinks with n so the quick scale stays
    laptop-sized (each row records its own budget, keeping comparisons
    like-for-like).

    ``sharded_rows`` lists ``(protocol, num_shards, cross_fraction,
    total_batches)`` rows measuring the multi-group fabric: *num_shards*
    consensus groups of the shard protocol on one simulator, with
    *cross_fraction* of the client batches spanning two shards through
    the 2PC coordinator.  The zero-cross row isolates the routing/pool
    overhead; the 20% row adds the prepare/decide round trips.
    """

    name: str
    event_loop_events: int
    repeats: int
    cluster_batches: int
    cluster_repeats: int
    protocols: Tuple[str, ...]
    poe_replica_counts: Tuple[int, ...]
    determinism_batches: int
    large_n_rows: Tuple[Tuple[str, int, int], ...] = ()
    sharded_rows: Tuple[Tuple[str, int, float, int], ...] = ()


QUICK = PerfScale(
    name="quick",
    event_loop_events=150_000,
    repeats=3,
    cluster_batches=60,
    cluster_repeats=2,
    protocols=("poe", "poe-mac", "pbft", "sbft", "zyzzyva", "hotstuff"),
    poe_replica_counts=(4, 16, 32),
    determinism_batches=30,
    large_n_rows=(
        ("poe-mac", 32, 60), ("pbft", 32, 60),
        ("poe-mac", 64, 30), ("pbft", 64, 30),
        ("poe-mac", 128, 12), ("pbft", 128, 12),
    ),
    sharded_rows=(
        ("poe", 2, 0.0, 60),
        ("poe", 2, 0.2, 60),
    ),
)

PAPER = PerfScale(
    name="paper",
    event_loop_events=500_000,
    repeats=5,
    cluster_batches=120,
    cluster_repeats=3,
    protocols=("poe", "poe-mac", "pbft", "sbft", "zyzzyva", "hotstuff"),
    poe_replica_counts=(4, 16, 32, 64, 91),
    determinism_batches=60,
    large_n_rows=(
        ("poe-mac", 32, 120), ("pbft", 32, 120),
        ("poe-mac", 64, 60), ("pbft", 64, 60),
        ("poe-mac", 128, 24), ("pbft", 128, 24),
    ),
    sharded_rows=(
        ("poe", 2, 0.0, 120),
        ("poe", 2, 0.2, 120),
        ("poe", 3, 0.2, 120),
    ),
)


def current_perf_scale() -> PerfScale:
    """Scale selected through ``REPRO_BENCH_SCALE`` (default ``quick``)."""
    return PAPER if os.environ.get("REPRO_BENCH_SCALE", "quick") == "paper" else QUICK


def _best_wall_seconds(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall time of *repeats* runs of *fn* (noise suppression)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# --------------------------------------------------------------- event loop
def measure_event_loop(num_events: int = 150_000, repeats: int = 3) -> Dict[str, object]:
    """Raw scheduler throughput: schedule *num_events* no-ops and drain.

    Also measures a cancellation-heavy mix (every other event cancelled
    before the drain) because lazy deletion is on the timer hot path.
    """

    def plain() -> None:
        sim = Simulator()
        schedule = sim.schedule
        for i in range(num_events):
            schedule((i % 97) * 0.01, _noop)
        sim.run_until_idle(max_events=num_events + 1)

    def cancelling() -> None:
        sim = Simulator()
        schedule = sim.schedule
        events = [schedule((i % 89) * 0.01, _noop) for i in range(num_events)]
        for event in events[::2]:
            event.cancel()
        sim.run_until_idle(max_events=num_events + 1)

    plain_wall = _best_wall_seconds(plain, repeats)
    cancel_wall = _best_wall_seconds(cancelling, repeats)
    return {
        "num_events": num_events,
        "wall_s": round(plain_wall, 6),
        "events_per_sec": round(num_events / plain_wall, 1),
        "cancellation_mix": {
            "num_events": num_events,
            "cancelled_fraction": 0.5,
            "wall_s": round(cancel_wall, 6),
            "events_per_sec": round(num_events / cancel_wall, 1),
        },
    }


def _noop() -> None:
    return None


# ------------------------------------------------------------------ clusters
def measure_cluster(protocol: str, num_replicas: int, total_batches: int,
                    batch_size: int = 100, seed: int = 3,
                    repeats: int = 2) -> Dict[str, object]:
    """Wall-clock cost of one full cluster run (best of *repeats*)."""
    best_wall = float("inf")
    reference: Optional[Tuple[int, int, float]] = None
    throughput = 0.0
    for _ in range(max(1, repeats)):
        cluster = Cluster(ClusterConfig(
            protocol=protocol, num_replicas=num_replicas,
            batch_size=batch_size, total_batches=total_batches, seed=seed,
        ))
        cluster.start()
        start = time.perf_counter()
        cluster.run_until_done()
        wall = time.perf_counter() - start
        events = cluster.simulator.processed_events
        completed = sum(pool.completed_txns for pool in cluster.pools)
        virtual_ms = cluster.simulator.now
        signature = (events, completed, virtual_ms)
        if reference is None:
            reference = signature
            throughput = cluster.result().throughput_txn_per_s
        elif signature != reference:
            raise AssertionError(
                f"non-deterministic run for {protocol} n={num_replicas}: "
                f"{signature} != {reference}")
        if wall < best_wall:
            best_wall = wall
    events, completed_txns, virtual_ms = reference
    return {
        "protocol": protocol,
        "n": num_replicas,
        "batch_size": batch_size,
        "total_batches": total_batches,
        "seed": seed,
        "wall_s": round(best_wall, 4),
        "processed_events": events,
        "events_per_wall_sec": round(events / best_wall, 1),
        "completed_txns": completed_txns,
        "txns_per_wall_sec": round(completed_txns / best_wall, 1),
        "virtual_ms": round(virtual_ms, 3),
        "virtual_throughput_txn_per_s": round(throughput, 1),
    }


def sharded_row_label(protocol: str, num_shards: int,
                      cross_fraction: float) -> str:
    """Synthetic protocol label for one sharded row (``poe-2sh-x20``).

    The cluster shape lives in the label so :func:`row_key` — which only
    knows protocol/n/batch/seed — still gives sharded rows a stable,
    collision-free identity next to the single-group rows.
    """
    return f"{protocol}-{num_shards}sh-x{int(round(cross_fraction * 100))}"


def parse_sharded_label(label: str) -> Optional[Tuple[str, int, float]]:
    """Invert :func:`sharded_row_label`; ``None`` for single-group labels.

    ``"poe-2sh-x20"`` -> ``("poe", 2, 0.2)``.  Lets ``--profile`` and
    other row-addressed tools accept sharded rows by their recorded
    protocol label.
    """
    parts = label.rsplit("-", 2)
    if len(parts) != 3:
        return None
    protocol, shards_part, cross_part = parts
    if not (shards_part.endswith("sh") and cross_part.startswith("x")):
        return None
    if not (shards_part[:-2].isdigit() and cross_part[1:].isdigit()):
        return None
    return protocol, int(shards_part[:-2]), int(cross_part[1:]) / 100.0


def measure_sharded_cluster(protocol: str, num_shards: int,
                            cross_shard_fraction: float, total_batches: int,
                            num_replicas: int = 4, batch_size: int = 16,
                            num_pools: int = 1, client_outstanding: int = 4,
                            seed: int = 3, repeats: int = 2,
                            driver: str = "sequential") -> Dict[str, object]:
    """Wall-clock cost of one multi-group run with cross-shard 2PC.

    Mirrors :func:`measure_cluster` (best-of-*repeats*, with the same
    same-seed determinism assertion) over a sharded deployment:
    *num_shards* consensus groups of *protocol*, each on its own
    per-shard simulator, with *cross_shard_fraction* of the client
    batches spanning two shards.  ``n`` reports the total replica count
    across all shards.  *driver* picks the execution engine —
    ``"sequential"`` advances the shard runtimes in-process,
    ``"parallel"`` forks one worker per shard; event counts and virtual
    clocks are identical either way, only wall time differs.
    """
    from repro.fabric.sharding import ShardedCluster, ShardedClusterConfig

    best_wall = float("inf")
    reference: Optional[Tuple[Tuple[int, ...], int, float]] = None
    throughput = 0.0
    for _ in range(max(1, repeats)):
        config = ShardedClusterConfig(
            num_shards=num_shards, protocols=protocol,
            num_replicas=num_replicas, batch_size=batch_size,
            num_pools=num_pools, client_outstanding=client_outstanding,
            total_batches=total_batches,
            cross_shard_fraction=cross_shard_fraction, seed=seed,
        )
        if driver == "parallel":
            from repro.fabric.parallel import run_parallel

            start = time.perf_counter()
            run = run_parallel(config, record_wire=False)
            wall = time.perf_counter() - start
        elif driver == "sequential":
            run = ShardedCluster(config)
            run.start()
            start = time.perf_counter()
            run.run_until_done()
            wall = time.perf_counter() - start
        else:
            raise ValueError(f"unknown driver {driver!r}")
        shard_events = tuple(run.shard_processed_events)
        completed = sum(pool.completed_txns for pool in run.pools)
        virtual_ms = run.now
        signature = (shard_events, completed, virtual_ms)
        if reference is None:
            reference = signature
            throughput = run.result().throughput_txn_per_s
        elif signature != reference:
            raise AssertionError(
                f"non-deterministic sharded run for {protocol} "
                f"shards={num_shards} driver={driver}: "
                f"{signature} != {reference}")
        if wall < best_wall:
            best_wall = wall
    shard_events, completed_txns, virtual_ms = reference
    events = sum(shard_events)
    return {
        "protocol": sharded_row_label(protocol, num_shards,
                                      cross_shard_fraction),
        "n": num_shards * num_replicas,
        "num_shards": num_shards,
        "cross_shard_fraction": cross_shard_fraction,
        "batch_size": batch_size,
        "total_batches": total_batches,
        "seed": seed,
        "driver": driver,
        "wall_s": round(best_wall, 4),
        "processed_events": events,
        "shard_processed_events": list(shard_events),
        "events_per_wall_sec": round(events / best_wall, 1),
        "completed_txns": completed_txns,
        "txns_per_wall_sec": round(completed_txns / best_wall, 1),
        "virtual_ms": round(virtual_ms, 3),
        "virtual_throughput_txn_per_s": round(throughput, 1),
    }


#: Rows for the ``--parallel`` same-host comparison: (num_shards,
#: total_batches).  Pools and outstanding are boosted so each shard
#: carries enough events for the per-window pipe round-trips to
#: amortise; parallel wins require real cores — a single-core host
#: (common in CI sandboxes) runs the workers time-sliced and the
#: comparison degrades to measuring IPC overhead.
PARALLEL_COMPARE_ROWS: Tuple[Tuple[int, int], ...] = ((2, 40), (4, 40), (8, 40))


def measure_parallel_speedup(
        protocol: str = "poe-mac",
        rows: Sequence[Tuple[int, int]] = PARALLEL_COMPARE_ROWS,
        cross_shard_fraction: float = 0.2,
        num_pools: int = 4, client_outstanding: int = 8,
        repeats: int = 2) -> Dict[str, object]:
    """Same-host sequential-vs-parallel comparison over sharded rows.

    For each (num_shards, total_batches) row, runs the identical config
    under both drivers and reports the wall-clock speedup.  Hard-fails if
    the per-shard event counts differ — a parallel run that changes what
    the shards *do* is a bug, not a speedup.
    """
    comparisons: List[Dict[str, object]] = []
    behaviour_ok = True
    for num_shards, total_batches in rows:
        kwargs = dict(
            cross_shard_fraction=cross_shard_fraction,
            total_batches=total_batches, num_pools=num_pools,
            client_outstanding=client_outstanding, repeats=repeats,
        )
        sequential = measure_sharded_cluster(
            protocol, num_shards, driver="sequential", **kwargs)
        parallel = measure_sharded_cluster(
            protocol, num_shards, driver="parallel", **kwargs)
        unchanged = (sequential["shard_processed_events"]
                     == parallel["shard_processed_events"])
        behaviour_ok = behaviour_ok and unchanged
        comparisons.append({
            "row": row_key(sequential),
            "num_shards": num_shards,
            "behaviour_unchanged": unchanged,
            "processed_events": sequential["processed_events"],
            "shard_processed_events": sequential["shard_processed_events"],
            "sequential_wall_s": sequential["wall_s"],
            "parallel_wall_s": parallel["wall_s"],
            "sequential_events_per_wall_sec": sequential["events_per_wall_sec"],
            "parallel_events_per_wall_sec": parallel["events_per_wall_sec"],
            "speedup": round(sequential["wall_s"] / parallel["wall_s"], 3),
        })
    return {
        "protocol": protocol,
        "cpu_count": os.cpu_count(),
        "behaviour_unchanged": behaviour_ok,
        "rows": comparisons,
    }


# -------------------------------------------------------------- determinism


def check_determinism(protocols: Sequence[str] = ("poe", "poe-mac"),
                      num_replicas: int = 4, total_batches: int = 30,
                      batch_size: int = 50, seed: int = 11) -> Dict[str, object]:
    """Assert same-seed reproducibility for *protocols*; returns a report."""
    checks: List[Dict[str, object]] = []
    all_ok = True
    for protocol in protocols:
        config = ClusterConfig(
            protocol=protocol, num_replicas=num_replicas,
            batch_size=batch_size, total_batches=total_batches, seed=seed,
        )
        first = run_fingerprint(config)
        second = run_fingerprint(ClusterConfig(
            protocol=protocol, num_replicas=num_replicas,
            batch_size=batch_size, total_batches=total_batches, seed=seed,
        ))
        identical = first == second
        all_ok = all_ok and identical and bool(first[0])
        checks.append({
            "protocol": protocol,
            "n": num_replicas,
            "total_batches": total_batches,
            "seed": seed,
            "completed_batches": len(first[0]),
            "identical": identical,
        })
    return {"ok": all_ok, "checks": checks}


# ----------------------------------------------------------------- compare
def row_key(row: Dict[str, object]) -> str:
    """Stable identity of one cluster row (the like-for-like fields)."""
    return (f"{row['protocol']}:n{row['n']}:b{row['batch_size']}"
            f":t{row['total_batches']}:s{row['seed']}")


def compare_reports(baseline: Dict[str, object],
                    current: Dict[str, object]) -> Dict[str, object]:
    """Same-host HEAD-vs-baseline delta over two suite reports.

    Wall-clock numbers recorded in ``BENCH_simperf.json`` are
    host-relative — containers bench 40% apart on identical code — so
    cross-host absolute comparisons are noise.  This delta mode matches
    rows by :func:`row_key` and reports the events/sec speedup next to a
    ``behaviour_unchanged`` flag (``processed_events`` equality): a row
    whose event count moved changed behaviour, not just speed, and its
    speedup must not be trusted before that is understood.
    """
    base_rows = {row_key(row): row for row in baseline.get("clusters", [])}
    deltas: List[Dict[str, object]] = []
    behaviour_ok = True
    seen = set()
    for row in current.get("clusters", []):
        key = row_key(row)
        seen.add(key)
        base = base_rows.get(key)
        if base is None:
            deltas.append({"row": key, "status": "new",
                           "events_per_wall_sec": row["events_per_wall_sec"]})
            continue
        unchanged = row["processed_events"] == base["processed_events"]
        behaviour_ok = behaviour_ok and unchanged
        deltas.append({
            "row": key,
            "status": "compared",
            "behaviour_unchanged": unchanged,
            "baseline_processed_events": base["processed_events"],
            "processed_events": row["processed_events"],
            "baseline_events_per_wall_sec": base["events_per_wall_sec"],
            "events_per_wall_sec": row["events_per_wall_sec"],
            "speedup": round(
                row["events_per_wall_sec"] / base["events_per_wall_sec"], 3),
        })
    for key in sorted(set(base_rows) - seen):
        # A baseline row the current suite no longer produces is behaviour
        # drift too (scale mismatch, dropped/renamed row) — flag it rather
        # than letting a vanished row pass as "unchanged".
        behaviour_ok = False
        deltas.append({"row": key, "status": "missing",
                       "baseline_events_per_wall_sec":
                           base_rows[key]["events_per_wall_sec"]})
    loop_speedup = None
    base_loop = baseline.get("event_loop")
    cur_loop = current.get("event_loop")
    if base_loop and cur_loop:
        loop_speedup = round(
            cur_loop["events_per_sec"] / base_loop["events_per_sec"], 3)
    return {
        "baseline_recorded_at_unix": baseline.get("recorded_at_unix"),
        "event_loop_speedup": loop_speedup,
        "behaviour_unchanged": behaviour_ok,
        "rows": deltas,
    }


def check_processed_events(
        results: Dict[str, object],
        expectations: Dict[str, object]) -> List[str]:
    """Behaviour guard: diff per-row ``processed_events`` vs expectations.

    Returns human-readable problem strings (empty = pass).  Wall-clock is
    deliberately not checked — CI runners are too noisy for that — but a
    drifted event count on a no-fault row means the refactor changed what
    the cluster *does*, which must be an explicit, reviewed update to the
    expectations file.
    """
    expected_scale = expectations.get("scale")
    run_scale = results.get("scale")
    if expected_scale and run_scale and expected_scale != run_scale:
        # A scale mismatch would otherwise surface as dozens of
        # missing/unexpected-row errors that read as behaviour drift.
        return [f"scale mismatch: expectations are for {expected_scale!r}, "
                f"run is {run_scale!r}"]
    expected_rows: Dict[str, int] = expectations.get("rows", {})
    problems: List[str] = []
    seen = set()
    for row in results.get("clusters", []):
        key = row_key(row)
        seen.add(key)
        expected = expected_rows.get(key)
        if expected is None:
            problems.append(f"{key}: no expectation recorded "
                            f"(processed_events={row['processed_events']})")
        elif expected != row["processed_events"]:
            problems.append(f"{key}: processed_events {row['processed_events']} "
                            f"!= expected {expected}")
    for key in sorted(set(expected_rows) - seen):
        problems.append(f"{key}: expected row missing from the suite")
    return problems


# ----------------------------------------------------------------- profile
def row_batch_budget(protocol: str, num_replicas: int,
                     scale: Optional[PerfScale] = None) -> int:
    """Batch budget the suite uses for (*protocol*, *num_replicas*).

    Large-n rows shrink their budget with n; resolving it here keeps
    ``--profile`` profiling the same workload the recorded row measures.
    """
    scale = scale or current_perf_scale()
    for row_protocol, n, total_batches in scale.large_n_rows:
        if row_protocol == protocol and n == num_replicas:
            return total_batches
    return scale.cluster_batches


def profile_row(protocol: str, num_replicas: int,
                total_batches: Optional[int] = None,
                batch_size: int = 100, seed: int = 3, top: int = 25) -> str:
    """cProfile one cluster row; returns the top-*top* cumulative report.

    Exists so the next perf PR reads its hot list off
    ``bench_perf_fabric.py --profile`` instead of re-deriving it by hand.
    *total_batches* defaults to the batch budget the current scale's
    suite uses for this (protocol, n) row.

    *protocol* also accepts a sharded row label (``poe-2sh-x20``); the
    profile then covers a sequential sharded run — the per-shard event
    loops plus the 2PC/boundary plumbing, i.e. exactly the work one
    parallel worker would execute — with *num_replicas* read as the
    per-shard replica count, and appends the per-shard
    ``processed_events`` breakdown so hot-spot reads can be weighted by
    where the events actually ran.
    """
    sharded = parse_sharded_label(protocol)
    if sharded is not None:
        return _profile_sharded_row(sharded, num_replicas, total_batches,
                                    seed=seed, top=top)
    if total_batches is None:
        total_batches = row_batch_budget(protocol, num_replicas)
    config = ClusterConfig(
        protocol=protocol, num_replicas=num_replicas,
        batch_size=batch_size, total_batches=total_batches, seed=seed,
    )
    profiler = cProfile.Profile()
    cluster = Cluster(config)
    cluster.start()
    profiler.enable()
    cluster.run_until_done()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def _profile_sharded_row(sharded: Tuple[str, int, float], num_replicas: int,
                         total_batches: Optional[int],
                         batch_size: int = 16, seed: int = 3,
                         top: int = 25) -> str:
    from repro.fabric.sharding import ShardedCluster, ShardedClusterConfig

    protocol, num_shards, cross_fraction = sharded
    scale = current_perf_scale()
    if total_batches is None:
        total_batches = scale.cluster_batches
        for row_protocol, row_shards, row_cross, row_batches in scale.sharded_rows:
            if (row_protocol == protocol and row_shards == num_shards
                    and row_cross == cross_fraction):
                total_batches = row_batches
                break
    cluster = ShardedCluster(ShardedClusterConfig(
        num_shards=num_shards, protocols=protocol,
        num_replicas=num_replicas, batch_size=batch_size,
        total_batches=total_batches,
        cross_shard_fraction=cross_fraction, seed=seed,
    ))
    profiler = cProfile.Profile()
    cluster.start()
    profiler.enable()
    cluster.run_until_done()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    breakdown = ", ".join(
        f"s{shard}={events}"
        for shard, events in enumerate(cluster.shard_processed_events))
    stream.write(
        f"\nper-shard processed_events: {breakdown} "
        f"(total {cluster.processed_events})\n")
    return stream.getvalue()


# ------------------------------------------------------------------- suite
def run_suite(scale: Optional[PerfScale] = None) -> Dict[str, object]:
    """Run the full perf suite at *scale* (default: env-selected)."""
    scale = scale or current_perf_scale()
    event_loop = measure_event_loop(scale.event_loop_events, scale.repeats)
    clusters: List[Dict[str, object]] = []
    for protocol in scale.protocols:
        clusters.append(measure_cluster(
            protocol, num_replicas=4, total_batches=scale.cluster_batches,
            repeats=scale.cluster_repeats))
    for n in scale.poe_replica_counts:
        if n == 4:
            continue  # already covered by the protocol sweep
        clusters.append(measure_cluster(
            "poe", num_replicas=n, total_batches=scale.cluster_batches,
            repeats=scale.cluster_repeats))
    for protocol, n, total_batches in scale.large_n_rows:
        clusters.append(measure_cluster(
            protocol, num_replicas=n, total_batches=total_batches,
            repeats=scale.cluster_repeats))
    for protocol, num_shards, cross, total_batches in scale.sharded_rows:
        clusters.append(measure_sharded_cluster(
            protocol, num_shards=num_shards, cross_shard_fraction=cross,
            total_batches=total_batches, repeats=scale.cluster_repeats))
    determinism = check_determinism(total_batches=scale.determinism_batches)
    # The zero-allocation step path must stay byte-identical where the
    # n² MAC flood is heaviest, not just at n=4.
    large_n_determinism = check_determinism(
        protocols=("poe-mac",), num_replicas=32,
        total_batches=max(6, scale.determinism_batches // 5))
    determinism["ok"] = determinism["ok"] and large_n_determinism["ok"]
    determinism["checks"].extend(large_n_determinism["checks"])
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "simperf",
        "scale": scale.name,
        "recorded_at_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "event_loop": event_loop,
        "clusters": clusters,
        "determinism": determinism,
    }


def write_report(results: Dict[str, object], path: str) -> str:
    """Write *results* as pretty-printed JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run the suite and write the JSON report."""
    argv = list(sys.argv[1:] if argv is None else argv)
    path = argv[0] if argv else DEFAULT_REPORT_NAME
    results = run_suite()
    write_report(results, path)
    loop = results["event_loop"]
    print(f"event loop: {loop['events_per_sec']:,.0f} events/s")
    for row in results["clusters"]:
        print(f"{row['protocol']} n={row['n']}: "
              f"{row['events_per_wall_sec']:,.0f} events/s, "
              f"{row['txns_per_wall_sec']:,.0f} txn/s (wall)")
    print(f"determinism ok: {results['determinism']['ok']}")
    print(f"wrote {path}")
    # Determinism is load-bearing: a divergence must fail CI smoke runs,
    # not just be recorded in the report.
    return 0 if results["determinism"]["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
