"""Shared helpers for the benchmark harness under ``benchmarks/``.

:mod:`repro.bench.perf` is intentionally not re-exported here: it pulls
in the whole fabric/protocol import graph, which report-only consumers
(the figure benchmarks) should not pay for.  Import it directly.
"""

from repro.bench.report import format_table, print_results, print_series

__all__ = ["format_table", "print_results", "print_series"]
