"""Shared helpers for the benchmark harness under ``benchmarks/``."""

from repro.bench.report import format_table, print_results, print_series

__all__ = ["format_table", "print_results", "print_series"]
