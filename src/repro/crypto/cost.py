"""CPU-cost model for cryptographic operations.

The paper's Figure 8 measures the throughput/latency impact of the
signature scheme (no signatures, ED25519 everywhere, CMAC+AES between
replicas with ED25519 clients).  The discrete-event simulator does not
execute real cryptography on the hot path; instead every protocol charges
its replicas a per-operation CPU cost drawn from this model, so the
relative cost of schemes — and therefore the relative protocol
throughputs — match the paper's measurements.

Costs are expressed in milliseconds of single-core CPU time per
operation.  The defaults are calibrated so that a 16-replica PBFT setup
reproduces the ~3:2:1 throughput ordering of CMAC : ED : None seen in
Figure 8 (higher cost => lower throughput), and so MAC operations are an
order of magnitude cheaper than asymmetric ones, as reported in the BFT
literature the paper cites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict


class CryptoOp(enum.Enum):
    """Cryptographic operations charged by the protocols."""

    HASH = "hash"
    MAC_SIGN = "mac_sign"
    MAC_VERIFY = "mac_verify"
    SIGN = "sign"
    VERIFY = "verify"
    THRESHOLD_SHARE = "threshold_share"
    THRESHOLD_SHARE_VERIFY = "threshold_share_verify"
    THRESHOLD_AGGREGATE = "threshold_aggregate"
    THRESHOLD_VERIFY = "threshold_verify"


#: Default per-operation CPU costs in milliseconds.
DEFAULT_COSTS_MS: Dict[CryptoOp, float] = {
    CryptoOp.HASH: 0.002,
    CryptoOp.MAC_SIGN: 0.004,
    CryptoOp.MAC_VERIFY: 0.004,
    CryptoOp.SIGN: 0.060,
    CryptoOp.VERIFY: 0.120,
    CryptoOp.THRESHOLD_SHARE: 0.100,
    CryptoOp.THRESHOLD_SHARE_VERIFY: 0.080,
    CryptoOp.THRESHOLD_AGGREGATE: 0.150,
    CryptoOp.THRESHOLD_VERIFY: 0.120,
}


@dataclass(frozen=True)
class CryptoCostModel:
    """Per-operation CPU cost table used by the simulator.

    Attributes:
        costs_ms: milliseconds of CPU time charged per operation.
        scale: global multiplier (e.g. 0 to model the paper's "None"
            configuration where no signatures are used).
    """

    costs_ms: Dict[CryptoOp, float] = field(
        default_factory=lambda: dict(DEFAULT_COSTS_MS)
    )
    scale: float = 1.0

    def cost(self, op: CryptoOp, count: int = 1) -> float:
        """Milliseconds of CPU time for *count* executions of *op*."""
        return self.costs_ms.get(op, 0.0) * self.scale * count

    def scaled(self, scale: float) -> "CryptoCostModel":
        """Return a copy with the global multiplier replaced."""
        return replace(self, scale=scale)

    @classmethod
    def none(cls) -> "CryptoCostModel":
        """No cryptography at all (Figure 8, "None")."""
        return cls(scale=0.0)

    @classmethod
    def digital_signatures(cls) -> "CryptoCostModel":
        """Digital signatures everywhere (Figure 8, "ED").

        MAC operations are priced like full signature operations, which is
        what "everyone uses digital signatures" means for the message flow.
        """
        costs = dict(DEFAULT_COSTS_MS)
        costs[CryptoOp.MAC_SIGN] = costs[CryptoOp.SIGN]
        costs[CryptoOp.MAC_VERIFY] = costs[CryptoOp.VERIFY]
        return cls(costs_ms=costs)

    @classmethod
    def cmac(cls) -> "CryptoCostModel":
        """MACs between replicas, signatures for clients (Figure 8, "CMAC")."""
        return cls()
