"""Collision-resistant digests over arbitrary structured values.

The paper assumes a hash function ``D(.)`` mapping an arbitrary value to a
constant-size digest (Section II-A) and uses SHA-256 in RESILIENTDB
(Section IV-C).  Protocol messages here are Python dataclasses and tuples,
so the helpers below canonicalise structured values into bytes before
hashing them.
"""

from __future__ import annotations

import hashlib
from typing import Any


def _canonical_bytes(value: Any) -> bytes:
    """Serialise *value* into a canonical byte string.

    The encoding is deliberately simple and deterministic: it tags every
    element with its type so that, e.g., ``(1, "2")`` and ``("1", 2)`` never
    collide, and it recurses into tuples, lists and dicts (dicts are sorted
    by key).  Custom objects may expose ``canonical_bytes()``.
    """
    if isinstance(value, bytes):
        return b"B" + len(value).to_bytes(8, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, bool):
        return b"L1" if value else b"L0"
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        return b"I" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, float):
        raw = repr(value).encode("ascii")
        return b"F" + len(raw).to_bytes(8, "big") + raw
    if value is None:
        return b"N"
    if isinstance(value, (tuple, list)):
        parts = [b"T", len(value).to_bytes(8, "big")]
        parts.extend(_canonical_bytes(item) for item in value)
        return b"".join(parts)
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        parts = [b"D", len(items).to_bytes(8, "big")]
        for key, item in items:
            parts.append(_canonical_bytes(key))
            parts.append(_canonical_bytes(item))
        return b"".join(parts)
    canonical = getattr(value, "canonical_bytes", None)
    if callable(canonical):
        raw = canonical()
        return b"O" + len(raw).to_bytes(8, "big") + raw
    raw = repr(value).encode("utf-8")
    return b"R" + len(raw).to_bytes(8, "big") + raw


def digest(*values: Any) -> bytes:
    """Return the 32-byte SHA-256 digest of the canonical encoding of *values*.

    Multiple arguments are hashed as a tuple, mirroring the paper's
    ``D(k || v || <T>_c)`` concatenation notation.
    """
    return hashlib.sha256(_canonical_bytes(tuple(values))).digest()


def digest_hex(*values: Any) -> str:
    """Hex form of :func:`digest`, convenient for logs and block identifiers."""
    return digest(*values).hex()


def chain_hash(previous_hash: bytes, *values: Any) -> bytes:
    """Hash used to chain ledger blocks: ``H(prev || payload)``."""
    return digest(previous_hash, *values)
