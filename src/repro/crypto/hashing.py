"""Collision-resistant digests over arbitrary structured values.

The paper assumes a hash function ``D(.)`` mapping an arbitrary value to a
constant-size digest (Section II-A) and uses SHA-256 in RESILIENTDB
(Section IV-C).  Protocol messages here are Python dataclasses and tuples,
so the helpers below canonicalise structured values into bytes before
hashing them.

The encoding is deliberately simple and deterministic: it tags every
element with its type so that, e.g., ``(1, "2")`` and ``("1", 2)`` never
collide, and it recurses into tuples, lists and dicts (dicts are sorted by
key).  Custom objects may expose ``canonical_bytes()``.

Canonicalisation sits on the consensus hot path (every proposal, vote and
ledger block goes through it), so the common cases — bytes, str, small
ints, tuples — dispatch through a per-type table instead of an isinstance
cascade, with precomputed length prefixes and small-integer encodings.
The produced bytes are identical to the original cascade's.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict

#: Precomputed 8-byte big-endian length prefixes for short payloads.
_LEN_PREFIX = tuple(i.to_bytes(8, "big") for i in range(512))
_LEN_CACHED = len(_LEN_PREFIX)


def _len_prefix(n: int) -> bytes:
    return _LEN_PREFIX[n] if n < _LEN_CACHED else n.to_bytes(8, "big")


def _canon_bytes(value: bytes) -> bytes:
    return b"B" + _len_prefix(len(value)) + value


def _canon_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return b"S" + _len_prefix(len(raw)) + raw


def _canon_bool(value: bool) -> bytes:
    return b"L1" if value else b"L0"


def _canon_int(value: int) -> bytes:
    if 0 <= value < _INT_CACHED:
        return _INT_CACHE[value]
    raw = str(value).encode("ascii")
    return b"I" + _len_prefix(len(raw)) + raw


def _canon_float(value: float) -> bytes:
    raw = repr(value).encode("ascii")
    return b"F" + _len_prefix(len(raw)) + raw


def _canon_none(value: None) -> bytes:
    return b"N"


def _canon_sequence(value: Any) -> bytes:
    parts = [b"T", _len_prefix(len(value))]
    append = parts.append
    canonical = _canonical_bytes
    for item in value:
        append(canonical(item))
    return b"".join(parts)


def _canon_dict(value: Dict[Any, Any]) -> bytes:
    items = sorted(value.items(), key=lambda kv: repr(kv[0]))
    parts = [b"D", _len_prefix(len(items))]
    append = parts.append
    canonical = _canonical_bytes
    for key, item in items:
        append(canonical(key))
        append(canonical(item))
    return b"".join(parts)


#: Exact-type dispatch for the hot cases.  ``bool`` precedes ``int`` in the
#: fallback cascade; here exact ``type()`` keys make the distinction free.
_DISPATCH: Dict[type, Callable[[Any], bytes]] = {
    bytes: _canon_bytes,
    str: _canon_str,
    bool: _canon_bool,
    int: _canon_int,
    float: _canon_float,
    type(None): _canon_none,
    tuple: _canon_sequence,
    list: _canon_sequence,
    dict: _canon_dict,
}

#: Precomputed full encodings for small non-negative integers (sequence
#: numbers, views, batch sizes — the overwhelming majority of ints hashed).
_INT_CACHE = tuple(
    b"I" + _len_prefix(len(str(i))) + str(i).encode("ascii")
    for i in range(4096)
)
_INT_CACHED = len(_INT_CACHE)


def _canonical_bytes_slow(value: Any) -> bytes:
    """Fallback cascade for subclasses and custom objects.

    Mirrors the original isinstance-ordered encoding exactly (bool before
    int, tuple/list together, then dict, then ``canonical_bytes()`` duck
    typing, finally ``repr``).
    """
    if isinstance(value, bytes):
        return _canon_bytes(value)
    if isinstance(value, str):
        return _canon_str(value)
    if isinstance(value, bool):
        return _canon_bool(value)
    if isinstance(value, int):
        return _canon_int(value)
    if isinstance(value, float):
        return _canon_float(value)
    if value is None:
        return b"N"
    if isinstance(value, (tuple, list)):
        return _canon_sequence(value)
    if isinstance(value, dict):
        return _canon_dict(value)
    canonical = getattr(value, "canonical_bytes", None)
    if callable(canonical):
        raw = canonical()
        return b"O" + _len_prefix(len(raw)) + raw
    raw = repr(value).encode("utf-8")
    return b"R" + _len_prefix(len(raw)) + raw


def _canonical_bytes(value: Any) -> bytes:
    """Serialise *value* into a canonical byte string."""
    handler = _DISPATCH.get(value.__class__)
    if handler is not None:
        return handler(value)
    return _canonical_bytes_slow(value)


def digest(*values: Any) -> bytes:
    """Return the 32-byte SHA-256 digest of the canonical encoding of *values*.

    Multiple arguments are hashed as a tuple, mirroring the paper's
    ``D(k || v || <T>_c)`` concatenation notation.
    """
    return hashlib.sha256(_canon_sequence(values)).digest()


def digest_hex(*values: Any) -> str:
    """Hex form of :func:`digest`, convenient for logs and block identifiers."""
    return digest(*values).hex()


def chain_hash(previous_hash: bytes, *values: Any) -> bytes:
    """Hash used to chain ledger blocks: ``H(prev || payload)``."""
    return digest(previous_hash, *values)
