"""Pairwise message authentication codes (MACs).

RESILIENTDB uses CMAC+AES for replica-to-replica authentication
(Section IV-C); here we use HMAC-SHA256 from the standard library, which
offers the same interface semantics: a sender authenticates a message for
one specific receiver using their shared pairwise secret, and only that
receiver can verify it.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore


@dataclass(frozen=True)
class MacTag:
    """An authentication tag produced by :class:`MacAuthenticator`.

    Attributes:
        sender: identifier of the authenticating principal.
        receiver: identifier of the intended verifier.
        tag: the raw HMAC bytes.
    """

    sender: str
    receiver: str
    tag: bytes

    def canonical_bytes(self) -> bytes:
        return b"|".join([self.sender.encode(), self.receiver.encode(), self.tag])


class MacAuthenticator:
    """Creates and verifies pairwise MAC tags for one principal."""

    def __init__(self, keystore: KeyStore):
        self._keys = keystore

    @property
    def owner(self) -> str:
        return self._keys.owner

    def sign(self, receiver: str, *values: Any) -> MacTag:
        """Authenticate *values* for *receiver*."""
        secret = self._keys.mac_secret_for(receiver)
        tag = hmac.new(secret, digest(*values), hashlib.sha256).digest()
        return MacTag(sender=self._keys.owner, receiver=receiver, tag=tag)

    def verify(self, tag: MacTag, *values: Any) -> bool:
        """Verify a tag addressed to this principal.

        Returns ``False`` for tags addressed to someone else, from unknown
        peers, or whose bytes do not match.
        """
        if tag.receiver != self._keys.owner:
            return False
        try:
            secret = self._keys.mac_secret_for(tag.sender)
        except KeyError:
            return False
        expected = hmac.new(secret, digest(*values), hashlib.sha256).digest()
        return hmac.compare_digest(expected, tag.tag)
