"""(t, n) threshold signatures built on Shamir secret sharing.

The paper's linear communication pattern (ingredient I3) relies on
threshold signatures: each replica produces a *signature share*
``s<v>_i`` and any ``nf`` shares from distinct replicas aggregate into a
single signature ``<v>`` that everyone can verify (Section II-A).
RESILIENTDB uses BLS; here we build a functional equivalent from Shamir
secret sharing over a prime field:

* setup samples a random polynomial ``f`` of degree ``t - 1`` over a
  256-bit prime field; the master secret is ``f(0)`` and replica ``i``
  holds the share ``f(i)``;
* the share of a signature on message ``m`` is ``f(i) * H(m) mod p``;
* since Lagrange interpolation is linear, interpolating ``t`` shares at
  ``x = 0`` yields ``f(0) * H(m) mod p`` — the aggregate signature;
* verification recomputes ``f(0) * H(m)`` from the scheme's public
  parameters.

The construction gives the exact aggregation semantics the protocols
need (fewer than ``t`` shares reveal nothing about the aggregate, shares
from distinct replicas are required, tampered shares break aggregation).
It is *not* a production signature scheme: the scheme object retains the
polynomial so it can verify shares, which a real BLS deployment would do
with public keys.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence

from repro.crypto.hashing import digest

# secp256k1's field prime: any 256-bit prime works, this one is well known.
_PRIME = 2**256 - 2**32 - 977


class ThresholdError(Exception):
    """Raised when share aggregation or verification cannot proceed."""


@dataclass(frozen=True)
class SignatureShare:
    """One replica's share of a threshold signature.

    Attributes:
        index: the replica's share index (1-based).
        payload_digest: digest of the signed values.
        value: the share value ``f(index) * H(m) mod p``.
    """

    index: int
    payload_digest: bytes
    value: int

    def canonical_bytes(self) -> bytes:
        return b"|".join(
            [str(self.index).encode(), self.payload_digest, str(self.value).encode()]
        )


@dataclass(frozen=True)
class ThresholdSignature:
    """An aggregated threshold signature.

    Attributes:
        payload_digest: digest of the signed values.
        value: the aggregate value ``f(0) * H(m) mod p``.
        contributors: sorted tuple of share indices that were aggregated.
    """

    payload_digest: bytes
    value: int
    contributors: tuple

    def canonical_bytes(self) -> bytes:
        contributors = ",".join(str(i) for i in self.contributors)
        return b"|".join(
            [self.payload_digest, str(self.value).encode(), contributors.encode()]
        )


#: Memo of digest -> field element; signing and verifying the same payload
#: recurs once per replica per slot, and the map is tiny relative to runs.
_FIELD_ELEMENT_CACHE: Dict[bytes, int] = {}
_FIELD_ELEMENT_CACHE_MAX = 8192


def _field_element(payload_digest: bytes) -> int:
    """Map a digest to a non-zero field element."""
    cached = _FIELD_ELEMENT_CACHE.get(payload_digest)
    if cached is not None:
        return cached
    value = int.from_bytes(digest("threshold-message", payload_digest), "big") % _PRIME
    value = value or 1
    if len(_FIELD_ELEMENT_CACHE) >= _FIELD_ELEMENT_CACHE_MAX:
        _FIELD_ELEMENT_CACHE.clear()
    _FIELD_ELEMENT_CACHE[payload_digest] = value
    return value


def _lagrange_coefficient_at_zero(index: int, indices: Sequence[int]) -> int:
    """Lagrange basis polynomial ``l_index(0)`` over the prime field."""
    numerator = 1
    denominator = 1
    for other in indices:
        if other == index:
            continue
        numerator = (numerator * (-other)) % _PRIME
        denominator = (denominator * (index - other)) % _PRIME
    return (numerator * pow(denominator, _PRIME - 2, _PRIME)) % _PRIME


#: Memo of share-index tuple -> Lagrange coefficient vector.  The primary
#: aggregates the same quorum subsets over and over (the first ``nf``
#: responders are stable within a run), and each vector otherwise costs one
#: 256-bit modular exponentiation per share.
_LAGRANGE_CACHE: Dict[tuple, tuple] = {}
_LAGRANGE_CACHE_MAX = 4096


def _lagrange_coefficients_at_zero(indices: tuple) -> tuple:
    """Coefficient vector ``(l_i(0) for i in indices)``, memoised.

    Uses Montgomery batch inversion so the whole vector needs a single
    modular exponentiation; the result is identical to calling
    :func:`_lagrange_coefficient_at_zero` per index.
    """
    cached = _LAGRANGE_CACHE.get(indices)
    if cached is not None:
        return cached
    numerators = []
    denominators = []
    for index in indices:
        numerator = 1
        denominator = 1
        for other in indices:
            if other == index:
                continue
            numerator = (numerator * (-other)) % _PRIME
            denominator = (denominator * (index - other)) % _PRIME
        numerators.append(numerator)
        denominators.append(denominator)
    count = len(denominators)
    prefix = [1] * (count + 1)
    for i in range(count):
        prefix[i + 1] = (prefix[i] * denominators[i]) % _PRIME
    inv_running = pow(prefix[count], _PRIME - 2, _PRIME)
    coefficients = [0] * count
    for i in range(count - 1, -1, -1):
        inv_denominator = (prefix[i] * inv_running) % _PRIME
        inv_running = (inv_running * denominators[i]) % _PRIME
        coefficients[i] = (numerators[i] * inv_denominator) % _PRIME
    result = tuple(coefficients)
    if len(_LAGRANGE_CACHE) >= _LAGRANGE_CACHE_MAX:
        _LAGRANGE_CACHE.clear()
    _LAGRANGE_CACHE[indices] = result
    return result


class ThresholdScheme:
    """System-wide (threshold, num_shares) signing scheme.

    Use :meth:`setup` to create a scheme, then hand each replica its share
    index.  Replicas call :meth:`sign_share`; the aggregator (the primary
    in PoE) calls :meth:`aggregate`; anyone calls :meth:`verify`.
    """

    def __init__(self, num_shares: int, threshold: int, coefficients: Sequence[int]):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if num_shares < threshold:
            raise ValueError("num_shares must be at least the threshold")
        if len(coefficients) != threshold:
            raise ValueError("need exactly `threshold` polynomial coefficients")
        self._num_shares = num_shares
        self._threshold = threshold
        self._coefficients = tuple(c % _PRIME for c in coefficients)
        self._shares: Dict[int, int] = {
            index: self._evaluate(index) for index in range(1, num_shares + 1)
        }
        self._secret_at_zero = self._evaluate(0)

    @classmethod
    def setup(cls, num_shares: int, threshold: int, seed: bytes) -> "ThresholdScheme":
        """Deterministically create a scheme from a seed (trusted setup)."""
        coefficients = []
        for degree in range(threshold):
            raw = digest("threshold-coefficient", seed, degree)
            coefficients.append(int.from_bytes(raw, "big") % _PRIME)
        return cls(num_shares=num_shares, threshold=threshold, coefficients=coefficients)

    @property
    def num_shares(self) -> int:
        return self._num_shares

    @property
    def threshold(self) -> int:
        return self._threshold

    def _evaluate(self, x: int) -> int:
        """Evaluate the secret polynomial at *x* (Horner's rule)."""
        result = 0
        for coefficient in reversed(self._coefficients):
            result = (result * x + coefficient) % _PRIME
        return result

    def share_value(self, index: int) -> int:
        """Return the raw secret share of replica *index* (1-based)."""
        if index not in self._shares:
            raise ThresholdError(f"share index {index} out of range 1..{self._num_shares}")
        return self._shares[index]

    def sign_share(self, index: int, *values: Any) -> SignatureShare:
        """Produce replica *index*'s signature share over *values*."""
        payload_digest = digest(*values)
        message_element = _field_element(payload_digest)
        value = (self.share_value(index) * message_element) % _PRIME
        return SignatureShare(index=index, payload_digest=payload_digest, value=value)

    def verify_share(self, share: SignatureShare, *values: Any) -> bool:
        """Check that *share* is a valid share over *values*."""
        if not 1 <= share.index <= self._num_shares:
            return False
        payload_digest = digest(*values)
        if payload_digest != share.payload_digest:
            return False
        message_element = _field_element(payload_digest)
        expected = (self._shares[share.index] * message_element) % _PRIME
        return expected == share.value

    def aggregate(self, shares: Iterable[SignatureShare]) -> ThresholdSignature:
        """Aggregate at least ``threshold`` shares into one signature.

        Raises:
            ThresholdError: if there are too few distinct shares, if shares
                sign different digests, or if any share value is corrupt
                (detected because the aggregate then fails verification).
        """
        share_list = list(shares)
        if not share_list:
            raise ThresholdError("cannot aggregate an empty set of shares")
        payload_digest = share_list[0].payload_digest
        by_index: Dict[int, SignatureShare] = {}
        for share in share_list:
            if share.payload_digest != payload_digest:
                raise ThresholdError("shares sign different payloads")
            by_index[share.index] = share
        if len(by_index) < self._threshold:
            raise ThresholdError(
                f"need {self._threshold} distinct shares, got {len(by_index)}"
            )
        indices = tuple(sorted(by_index)[: self._threshold])
        coefficients = _lagrange_coefficients_at_zero(indices)
        value = 0
        for index, coefficient in zip(indices, coefficients):
            value = (value + coefficient * by_index[index].value) % _PRIME
        signature = ThresholdSignature(
            payload_digest=payload_digest, value=value, contributors=tuple(indices)
        )
        if not self._verify_value(signature):
            raise ThresholdError("aggregation produced an invalid signature "
                                 "(corrupt share detected)")
        return signature

    def _verify_value(self, signature: ThresholdSignature) -> bool:
        message_element = _field_element(signature.payload_digest)
        expected = (self._secret_at_zero * message_element) % _PRIME
        return expected == signature.value

    def verify(self, signature: ThresholdSignature, *values: Any) -> bool:
        """Return ``True`` iff *signature* is a valid aggregate over *values*."""
        if digest(*values) != signature.payload_digest:
            return False
        return self._verify_value(signature)

    def forge_without_quorum(self, indices: Sequence[int], *values: Any) -> Optional[ThresholdSignature]:
        """Best-effort forgery helper used by adversarial tests.

        Simulates what a coalition holding only *indices* (fewer than the
        threshold) could compute by interpolating the shares it has.  The
        result never verifies when ``len(indices) < threshold``, which the
        test suite asserts; returns ``None`` if interpolation is impossible.
        """
        distinct = sorted(set(indices))
        if not distinct:
            return None
        payload_digest = digest(*values)
        message_element = _field_element(payload_digest)
        value = 0
        for index in distinct:
            coefficient = _lagrange_coefficient_at_zero(index, distinct)
            value = (value + coefficient * self._shares[index] * message_element) % _PRIME
        return ThresholdSignature(
            payload_digest=payload_digest, value=value, contributors=tuple(distinct)
        )
