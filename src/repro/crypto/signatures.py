"""Digital-signature scheme used for client requests and view-change messages.

The paper uses ED25519 for client signatures and for messages that must be
forwarded without tampering (VC-REQUEST).  We provide a functional
stand-in with the same API: every signer holds a private secret; verifiers
hold a registry of *verification keys*.  Internally the verification key
is derived from the signing secret via one-way hashing and the signature
binds the message digest to that key, so signatures can be checked by
anyone holding the registry but not forged without the signing secret
(within the limits of a pure-Python, non-production construction).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore


class InvalidSignature(Exception):
    """Raised when strict verification of a signature fails."""


@dataclass(frozen=True)
class Signature:
    """A digital signature over a message digest.

    Attributes:
        signer: identifier of the signing principal.
        payload_digest: digest of the signed values.
        tag: binding of the digest to the signer's verification key.
    """

    signer: str
    payload_digest: bytes
    tag: bytes

    def canonical_bytes(self) -> bytes:
        return b"|".join([self.signer.encode(), self.payload_digest, self.tag])


def verification_key(signing_secret: bytes) -> bytes:
    """Derive the public verification key from a signing secret."""
    return hashlib.sha256(b"verification-key" + signing_secret).digest()


class SignatureScheme:
    """Signs values with one principal's secret and verifies any signature.

    Args:
        keystore: key material of the local principal (used for signing).
        registry: map of principal identifier to verification key.  The
            registry is shared by all principals in a deployment; see
            :func:`build_registry`.
    """

    def __init__(self, keystore: KeyStore, registry: Dict[str, bytes]):
        self._keys = keystore
        self._registry = registry

    @property
    def owner(self) -> str:
        return self._keys.owner

    def sign(self, *values: Any) -> Signature:
        """Sign *values* with the local principal's secret."""
        payload_digest = digest(*values)
        tag = hmac.new(
            verification_key(self._keys.signing_secret),
            self._keys.owner.encode() + payload_digest,
            hashlib.sha256,
        ).digest()
        return Signature(signer=self._keys.owner, payload_digest=payload_digest, tag=tag)

    def verify(self, signature: Signature, *values: Any) -> bool:
        """Return ``True`` iff *signature* is valid for *values*."""
        key = self._registry.get(signature.signer)
        if key is None:
            return False
        payload_digest = digest(*values)
        if payload_digest != signature.payload_digest:
            return False
        expected = hmac.new(
            key, signature.signer.encode() + payload_digest, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, signature.tag)

    def require_valid(self, signature: Signature, *values: Any) -> None:
        """Verify and raise :class:`InvalidSignature` on failure."""
        if not self.verify(signature, *values):
            raise InvalidSignature(
                f"invalid signature from {signature.signer!r} "
                f"verified by {self.owner!r}"
            )


def build_registry(keystores: Dict[str, KeyStore]) -> Dict[str, bytes]:
    """Build the shared verification-key registry for a set of keystores."""
    return {
        owner: verification_key(store.signing_secret)
        for owner, store in keystores.items()
    }
