"""Cryptographic substrate for the PoE reproduction.

The paper (Section IV-C) lets replicas authenticate messages with either
symmetric MACs (CMAC+AES in RESILIENTDB) or asymmetric schemes (ED25519
digital signatures, BLS threshold signatures).  This package provides
functional, pure-Python equivalents with the same API shape:

* :mod:`repro.crypto.hashing` -- SHA-256 digests over structured values.
* :mod:`repro.crypto.mac` -- pairwise HMAC-SHA256 message authentication.
* :mod:`repro.crypto.signatures` -- keyed digital-signature scheme
  (functional stand-in for ED25519: per-signer secret, public verification
  through a registry).
* :mod:`repro.crypto.threshold` -- (t, n) threshold signatures built on
  Shamir secret sharing over a prime field (functional stand-in for BLS:
  `nf` shares from distinct replicas aggregate into one verifiable
  signature).
* :mod:`repro.crypto.authenticator` -- scheme-agnostic facade used by the
  protocols, mirroring PoE's "signature agnostic" design (ingredient I3).
* :mod:`repro.crypto.cost` -- calibratable CPU-cost model so the discrete
  event simulator can charge realistic relative costs per operation
  (calibrated against the paper's Figure 8).
"""

from repro.crypto.hashing import digest, digest_hex, chain_hash
from repro.crypto.keys import KeyStore, generate_system_keys
from repro.crypto.mac import MacAuthenticator, MacTag
from repro.crypto.signatures import SignatureScheme, Signature, InvalidSignature
from repro.crypto.threshold import (
    ThresholdScheme,
    SignatureShare,
    ThresholdSignature,
    ThresholdError,
)
from repro.crypto.authenticator import (
    Authenticator,
    SchemeKind,
    make_authenticators,
)
from repro.crypto.cost import CryptoCostModel, CryptoOp

__all__ = [
    "digest",
    "digest_hex",
    "chain_hash",
    "KeyStore",
    "generate_system_keys",
    "MacAuthenticator",
    "MacTag",
    "SignatureScheme",
    "Signature",
    "InvalidSignature",
    "ThresholdScheme",
    "SignatureShare",
    "ThresholdSignature",
    "ThresholdError",
    "Authenticator",
    "SchemeKind",
    "make_authenticators",
    "CryptoCostModel",
    "CryptoOp",
]
