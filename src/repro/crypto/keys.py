"""Key material management for replicas and clients.

A :class:`KeyStore` holds everything one principal (replica or client)
needs to authenticate messages:

* a private signing secret (for the digital-signature scheme),
* pairwise MAC secrets shared with every other principal,
* a threshold-signature share of the system-wide threshold key.

:func:`generate_system_keys` performs the trusted-setup step that the
paper assumes (every BFT system needs some key distribution); it is
deterministic given a seed so simulations are reproducible.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.crypto.threshold import ThresholdScheme


def _derive(seed: bytes, *labels: str) -> bytes:
    """Derive a 32-byte secret from *seed* and a label path."""
    material = seed
    for label in labels:
        material = hmac.new(material, label.encode("utf-8"), hashlib.sha256).digest()
    return material


@dataclass
class KeyStore:
    """Key material held by a single principal.

    Attributes:
        owner: identifier of the principal (e.g. ``"replica:3"``).
        signing_secret: private secret for digital signatures.
        mac_secrets: map of peer identifier to the shared pairwise secret.
        threshold: the system threshold scheme (public parameters).
        threshold_index: this principal's share index, or ``None`` for
            principals (clients) that hold no share.
    """

    owner: str
    signing_secret: bytes
    mac_secrets: Dict[str, bytes] = field(default_factory=dict)
    threshold: Optional[ThresholdScheme] = None
    threshold_index: Optional[int] = None

    def mac_secret_for(self, peer: str) -> bytes:
        """Return the pairwise secret shared with *peer*.

        Raises:
            KeyError: if no secret was provisioned for *peer*.
        """
        return self.mac_secrets[peer]


def generate_system_keys(
    replica_ids: Iterable[str],
    client_ids: Iterable[str] = (),
    threshold: Optional[int] = None,
    seed: bytes = b"poe-repro-system-seed",
) -> Dict[str, KeyStore]:
    """Provision key material for a whole system.

    Args:
        replica_ids: identifiers of the replicas; each receives a threshold
            share (index assigned in iteration order, starting at 1).
        client_ids: identifiers of clients; clients get signing and MAC
            secrets but no threshold share.
        threshold: number of shares needed to aggregate a threshold
            signature.  Defaults to ``n - f`` with ``f = (n - 1) // 3``,
            which is the paper's ``nf`` quorum.
        seed: deterministic seed for reproducible simulations.

    Returns:
        Mapping from principal identifier to its :class:`KeyStore`.
    """
    replicas = list(replica_ids)
    clients = list(client_ids)
    everyone = replicas + clients
    n = len(replicas)
    if n == 0:
        raise ValueError("at least one replica identifier is required")
    if threshold is None:
        f = (n - 1) // 3
        threshold = n - f

    scheme = ThresholdScheme.setup(
        num_shares=n, threshold=threshold, seed=_derive(seed, "threshold")
    )

    stores: Dict[str, KeyStore] = {}
    for index, owner in enumerate(everyone):
        stores[owner] = KeyStore(
            owner=owner,
            signing_secret=_derive(seed, "sign", owner),
            threshold=scheme,
            threshold_index=index + 1 if index < n else None,
        )

    for i, left in enumerate(everyone):
        for right in everyone[i + 1:]:
            pair_secret = _derive(seed, "mac", min(left, right), max(left, right))
            stores[left].mac_secrets[right] = pair_secret
            stores[right].mac_secrets[left] = pair_secret

    return stores
