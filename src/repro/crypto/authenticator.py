"""Scheme-agnostic authenticator facade.

PoE's ingredient I3 is that the protocol is *signature agnostic*: small
deployments can run entirely on MACs (one phase of all-to-all
communication), larger ones use threshold signatures to linearise the
communication.  The :class:`Authenticator` bundles the three primitive
schemes behind one object per principal, so protocol code simply asks its
authenticator for the primitive it needs and the deployment decides the
configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from repro.crypto.keys import KeyStore, generate_system_keys
from repro.crypto.mac import MacAuthenticator, MacTag
from repro.crypto.signatures import Signature, SignatureScheme, build_registry
from repro.crypto.threshold import (
    SignatureShare,
    ThresholdScheme,
    ThresholdSignature,
)


class SchemeKind(enum.Enum):
    """Which authentication flavour a protocol deployment uses.

    MACS: replicas authenticate pairwise; PoE then needs one all-to-all
        SUPPORT phase (Appendix A of the paper).
    THRESHOLD: replicas produce threshold shares that the primary
        aggregates; communication stays linear (Section II-B).
    """

    MACS = "macs"
    THRESHOLD = "threshold"


@dataclass
class Authenticator:
    """All authentication primitives held by one principal.

    Attributes:
        owner: principal identifier.
        mac: pairwise MAC authenticator.
        signatures: digital-signature scheme (sign as owner, verify anyone).
        threshold: the system threshold scheme (``None`` only in reduced
            test setups).
        threshold_index: this principal's share index, ``None`` for clients.
    """

    owner: str
    mac: MacAuthenticator
    signatures: SignatureScheme
    threshold: Optional[ThresholdScheme] = None
    threshold_index: Optional[int] = None

    # -- digital signatures -------------------------------------------------
    def sign(self, *values: Any) -> Signature:
        """Digitally sign *values* as this principal."""
        return self.signatures.sign(*values)

    def verify(self, signature: Signature, *values: Any) -> bool:
        """Verify a digital signature from any principal."""
        return self.signatures.verify(signature, *values)

    # -- MACs ---------------------------------------------------------------
    def mac_sign(self, receiver: str, *values: Any) -> MacTag:
        """Authenticate *values* for one specific receiver."""
        return self.mac.sign(receiver, *values)

    def mac_verify(self, tag: MacTag, *values: Any) -> bool:
        """Verify a MAC tag addressed to this principal."""
        return self.mac.verify(tag, *values)

    # -- threshold signatures -----------------------------------------------
    def threshold_share(self, *values: Any) -> SignatureShare:
        """Produce this replica's signature share over *values*."""
        if self.threshold is None or self.threshold_index is None:
            raise ValueError(f"{self.owner} holds no threshold share")
        return self.threshold.sign_share(self.threshold_index, *values)

    def threshold_verify_share(self, share: SignatureShare, *values: Any) -> bool:
        """Verify another replica's signature share."""
        if self.threshold is None:
            return False
        return self.threshold.verify_share(share, *values)

    def threshold_aggregate(
        self, shares: Iterable[SignatureShare]
    ) -> ThresholdSignature:
        """Aggregate shares into a full threshold signature."""
        if self.threshold is None:
            raise ValueError(f"{self.owner} has no threshold scheme configured")
        return self.threshold.aggregate(shares)

    def threshold_verify(self, signature: ThresholdSignature, *values: Any) -> bool:
        """Verify an aggregated threshold signature."""
        if self.threshold is None:
            return False
        return self.threshold.verify(signature, *values)


def make_authenticators(
    replica_ids: Iterable[str],
    client_ids: Iterable[str] = (),
    threshold: Optional[int] = None,
    seed: bytes = b"poe-repro-system-seed",
) -> Dict[str, Authenticator]:
    """Provision authenticators for every replica and client in a system.

    This is the one-stop trusted setup used by tests, examples and the
    fabric: it generates key material (:func:`generate_system_keys`),
    builds the shared verification-key registry and wraps everything in
    per-principal :class:`Authenticator` objects.
    """
    keystores = generate_system_keys(
        replica_ids=replica_ids,
        client_ids=client_ids,
        threshold=threshold,
        seed=seed,
    )
    registry = build_registry(keystores)
    authenticators: Dict[str, Authenticator] = {}
    for owner, store in keystores.items():
        authenticators[owner] = Authenticator(
            owner=owner,
            mac=MacAuthenticator(store),
            signatures=SignatureScheme(store, registry),
            threshold=store.threshold,
            threshold_index=store.threshold_index,
        )
    return authenticators


def make_keystore_authenticator(
    keystore: KeyStore, registry: Dict[str, bytes]
) -> Authenticator:
    """Wrap an existing keystore into an :class:`Authenticator`."""
    return Authenticator(
        owner=keystore.owner,
        mac=MacAuthenticator(keystore),
        signatures=SignatureScheme(keystore, registry),
        threshold=keystore.threshold,
        threshold_index=keystore.threshold_index,
    )
