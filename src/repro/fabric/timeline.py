"""Primary-failure / view-change timeline experiment (paper, Figure 10).

The paper lets the primary complete consensus for roughly ten seconds and
then crashes it: clients time out, forward their requests to the backups,
the backups time out waiting for the primary, exchange VC-REQUEST
messages, the new primary sends NV-PROPOSE and the system resumes.  The
figure plots system throughput over time, showing the dip during the
view-change and the recovery afterwards.

:func:`run_view_change_timeline` reproduces that run for PoE or PBFT on
the simulated fabric and returns the per-interval throughput series along
with the observed view-change markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.crypto.cost import CryptoCostModel
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.metrics import ThroughputTimeline
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule


@dataclass
class ViewChangeTimeline:
    """Result of one primary-failure run."""

    protocol: str
    n: int
    timeline: ThroughputTimeline
    primary_crash_ms: float
    view_changes_completed: int
    new_view: int
    total_txns: int

    def series(self) -> List[Dict[str, float]]:
        return self.timeline.series()


def run_view_change_timeline(
    protocol: str = "poe",
    num_replicas: int = 32,
    batch_size: int = 100,
    crash_at_ms: float = 2_000.0,
    duration_ms: float = 8_000.0,
    request_timeout_ms: float = 500.0,
    bucket_ms: float = 250.0,
    client_outstanding: int = 16,
    latency_ms: float = 0.5,
    seed: int = 1,
) -> ViewChangeTimeline:
    """Run a primary-crash experiment and return the throughput timeline.

    The defaults compress the paper's 10-second-plus run into a few
    simulated seconds (with a correspondingly smaller request timeout) so
    the benchmark stays laptop-sized; the shape — steady throughput, dip
    at the crash, recovery after the view-change — is preserved.
    """
    primary = replica_id(0)
    faults = FaultSchedule.primary_crash(primary, at_ms=crash_at_ms)
    config = ClusterConfig(
        protocol=protocol,
        num_replicas=num_replicas,
        batch_size=batch_size,
        num_clients=1,
        client_outstanding=client_outstanding,
        total_batches=None,
        request_timeout_ms=request_timeout_ms,
        conditions=NetworkConditions(latency_ms=latency_ms,
                                     jitter_ms=latency_ms * 0.1, seed=seed),
        faults=faults,
        cost_model=CryptoCostModel.cmac(),
        seed=seed,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run_for(duration_ms)

    completions = cluster.completions()
    timeline = ThroughputTimeline.from_completions(
        completions, bucket_ms=bucket_ms, end_ms=duration_ms)
    view_changes = max(
        (getattr(replica, "view_changes_completed", 0) for replica in cluster.replicas),
        default=0,
    )
    new_view = max((replica.view for replica in cluster.replicas), default=0)
    return ViewChangeTimeline(
        protocol=cluster.spec.name,
        n=num_replicas,
        timeline=timeline,
        primary_crash_ms=crash_at_ms,
        view_changes_completed=view_changes,
        new_view=new_view,
        total_txns=sum(record.num_txns for record in completions),
    )
