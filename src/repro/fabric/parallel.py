"""Conservative parallel driver: shard runtimes on worker processes.

The sequential :class:`~repro.fabric.sharding.ShardedCluster` advances its
per-shard runtimes through :func:`~repro.fabric.sharding.run_windows`
in-process; this module runs the *same* runtimes, through the *same*
window loop, on forked ``multiprocessing`` workers — one per shard.  Each
barrier is one pipe round-trip per worker: the parent collects every
runtime's outbox and horizon, picks the next conservative window edge
(``min(horizons) + lookahead``), and broadcasts the per-runtime inboxes.

Determinism is by construction, not by luck: a runtime is built from the
(picklable) config identically in a worker and in-process, every boundary
timestamp is RNG-free, and the canonical inbox order is fixed by
:func:`~repro.fabric.sharding.boundary_event_order` — so each runtime
executes a byte-identical event sequence under either driver, and
``sharded_fingerprint(config, driver="parallel")`` equals the sequential
fingerprint.  The payoff is wall-clock: on a multi-core host the per-shard
event processing — the bulk of large sharded runs — happens concurrently.

After the final barrier each worker ships its run artifacts back: replica
objects (ledgers, 2PC managers), pools and coordinator (home shard), the
wire recorders the safety auditor needs, and per-runtime event counts.
:class:`ParallelShardedRun` wraps them to duck-type a finished
``ShardedCluster`` for :func:`~repro.fabric.sharding.fingerprint_state`,
:meth:`~repro.fabric.audit.ShardedSafetyAuditor.from_recorded` and the
scenario/bench plumbing.

``python -m repro.fabric.parallel`` is the CI smoke entry point: it
cross-checks parallel-vs-sequential fingerprints over a small grid of
shard counts, seeds and fault shapes and writes a JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.audit import HubWireRecord, WireRecord
from repro.fabric.metrics import MetricsWindow, RunResult
from repro.fabric.registry import get_spec
from repro.fabric.sharding import (
    HOME_SHARD,
    ShardRuntime,
    ShardedCluster,
    ShardedClusterConfig,
    WindowResult,
    _hub_conditions,
    _validate_config,
    coordinator_id,
    fingerprint_state,
    layout_for_config,
    run_windows,
    summarize_sharded,
)
from repro.net.faults import FaultSchedule
from repro.workload.clients import CompletionRecord


class WorkerCrash(RuntimeError):
    """A shard worker died or raised; the run cannot continue."""


# -- artifacts ---------------------------------------------------------------------

@dataclass
class ShardArtifacts:
    """Everything one worker ships back after its final barrier."""

    shard: int
    protocol: str
    replicas: List[object]
    byzantine_ids: List[str]
    processed_events: int
    now_ms: float
    wire: Optional[WireRecord] = None
    # Home shard only:
    pools: List[object] = field(default_factory=list)
    coordinator: Optional[object] = None
    hub_wire: Optional[HubWireRecord] = None


class _RecordedShardCluster:
    """Duck-typed stand-in for one shard's ``Cluster`` built from artifacts.

    Exposes exactly what :class:`~repro.fabric.audit.SafetyAuditor` and
    the scenario plumbing read from a live shard cluster: ``replicas``
    (with their 2PC managers attached), ``spec``, ``node_config``,
    ``byzantine_ids`` and an empty ``pools`` list (shard networks host no
    clients).
    """

    def __init__(self, artifacts: ShardArtifacts) -> None:
        self.replicas = artifacts.replicas
        self.spec = get_spec(artifacts.protocol)
        self.byzantine_ids = list(artifacts.byzantine_ids)
        self.node_config = artifacts.replicas[0].config
        self.pools: List[object] = []
        self.config = _RecordedShardConfig(artifacts.protocol)


@dataclass(frozen=True)
class _RecordedShardConfig:
    protocol: str


class ParallelShardedRun:
    """A finished parallel run, assembled from per-worker artifacts.

    Duck-types enough of a finished :class:`ShardedCluster` for
    :func:`~repro.fabric.sharding.fingerprint_state`,
    :meth:`~repro.fabric.audit.ShardedSafetyAuditor.from_recorded`,
    scenario outcome assembly and the bench plumbing.
    """

    def __init__(self, config: ShardedClusterConfig,
                 artifacts: List[ShardArtifacts]) -> None:
        self.config = config
        self.layout = layout_for_config(config)
        self.artifacts = artifacts
        self.shard_clusters = [_RecordedShardCluster(a) for a in artifacts]
        home = artifacts[HOME_SHARD]
        self.pools = home.pools
        self.coordinator = home.coordinator
        self.hub_wire = home.hub_wire
        self.shard_wires = [a.wire for a in artifacts]
        self.byzantine_ids: List[str] = [
            rid for a in artifacts for rid in a.byzantine_ids]
        if self.coordinator is not None and config.coordinator_behavior:
            self.byzantine_ids.append(self.coordinator.node_id)

    # -- the fingerprint/bench surface -------------------------------------------
    @property
    def shard_processed_events(self) -> List[int]:
        return [a.processed_events for a in self.artifacts]

    @property
    def shard_clocks(self) -> List[float]:
        return [a.now_ms for a in self.artifacts]

    @property
    def processed_events(self) -> int:
        return sum(a.processed_events for a in self.artifacts)

    @property
    def now(self) -> float:
        return max(a.now_ms for a in self.artifacts)

    def completions(self) -> List[CompletionRecord]:
        records: List[CompletionRecord] = []
        for pool in self.pools:
            records.extend(pool.completions)
        records.sort(key=lambda record: record.completed_at_ms)
        return records

    def result(self, window: Optional[MetricsWindow] = None,
               warmup_fraction: float = 0.1,
               metadata: Optional[Dict[str, object]] = None) -> RunResult:
        return summarize_sharded(
            self.config, self.completions(),
            [a.protocol for a in self.artifacts],
            window=window, warmup_fraction=warmup_fraction,
            metadata=metadata)


# -- worker ------------------------------------------------------------------------

def _collect_artifacts(runtime: ShardRuntime,
                       wire: Optional[WireRecord],
                       hub_wire: Optional[HubWireRecord]) -> ShardArtifacts:
    for pool in runtime.pools:
        # The batch source is a closure (unpicklable) and the run is over:
        # the pool will never draw another batch.
        pool.batch_source = None
    return ShardArtifacts(
        shard=runtime.shard,
        protocol=runtime.cluster.config.protocol,
        replicas=runtime.cluster.replicas,
        byzantine_ids=list(runtime.cluster.byzantine_ids),
        processed_events=runtime.simulator.processed_events,
        now_ms=runtime.simulator.now,
        wire=wire,
        pools=runtime.pools,
        coordinator=runtime.coordinator,
        hub_wire=hub_wire,
    )


def _worker_main(conn, config: ShardedClusterConfig, shard: int,
                 record_wire: bool) -> None:
    """One shard worker: build the runtime, obey barrier commands.

    Any exception is reported over the pipe as ``("error", traceback)``
    so the parent raises a :class:`WorkerCrash` naming the shard instead
    of hanging on a dead pipe.
    """
    try:
        runtime = ShardRuntime(config, shard)
        wire: Optional[WireRecord] = None
        hub_wire: Optional[HubWireRecord] = None
        if record_wire:
            wire = WireRecord()
            runtime.cluster.network.add_observer(wire.observe)
            if runtime.hub is not None:
                hub_wire = HubWireRecord(pool.node_id for pool in runtime.pools)
                runtime.hub.add_observer(hub_wire.observe)
        conn.send(("ok", runtime.start()))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "window":
                conn.send(("ok", runtime.window(command[1], command[2])))
            elif op == "finish":
                conn.send(("ok", _collect_artifacts(runtime, wire, hub_wire)))
                return
            else:
                raise ValueError(f"unknown worker command {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


# -- parent driver -----------------------------------------------------------------

def _recv(conn, shard: int):
    try:
        kind, payload = conn.recv()
    except (EOFError, OSError) as exc:
        raise WorkerCrash(
            f"shard {shard} worker died without reporting an error "
            f"({type(exc).__name__})") from exc
    if kind == "error":
        raise WorkerCrash(f"shard {shard} worker failed:\n{payload}")
    return payload


def run_parallel(config: ShardedClusterConfig,
                 max_ms: float = 600_000.0,
                 record_wire: bool = True) -> ParallelShardedRun:
    """Run a sharded deployment on one forked worker per shard.

    Returns a :class:`ParallelShardedRun` whose fingerprint, audit
    report, completions and event counts are byte-identical to the
    sequential driver's for the same config.  ``record_wire=False`` skips
    attaching wire recorders in the workers (benchmarks that never audit
    pay no observer overhead — matching a bare sequential
    ``ShardedCluster`` run).
    """
    _validate_config(config)
    lookahead_ms = _hub_conditions(config).min_propagation_ms()
    num = config.num_shards
    ctx = multiprocessing.get_context("fork")
    conns: List = []
    procs: List = []
    try:
        for shard in range(num):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, config, shard, record_wire),
                daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        results: List[WindowResult] = [
            _recv(conns[shard], shard) for shard in range(num)]

        def window_all(edge_ms, inboxes):
            for conn, inbox in zip(conns, inboxes):
                conn.send(("window", edge_ms, inbox))
            return [_recv(conns[shard], shard) for shard in range(num)]

        run_windows(results, window_all, num, lookahead_ms, max_ms)
        for conn in conns:
            conn.send(("finish",))
        artifacts = [_recv(conns[shard], shard) for shard in range(num)]
        return ParallelShardedRun(config, artifacts)
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()


# -- CI smoke ----------------------------------------------------------------------

def _smoke_config(num_shards: int, seed: int, total_batches: int,
                  cross_shard_fraction: float,
                  crash_coordinator: bool) -> ShardedClusterConfig:
    hub_faults = None
    if crash_coordinator:
        hub_faults = FaultSchedule()
        hub_faults.add_crash(coordinator_id(), at_ms=3.0)
    return ShardedClusterConfig(
        num_shards=num_shards, protocols="poe-mac", num_replicas=4,
        batch_size=16, total_batches=total_batches,
        cross_shard_fraction=cross_shard_fraction,
        request_timeout_ms=100.0, hub_faults=hub_faults, seed=seed,
    )


def _sequential_fingerprint(config: ShardedClusterConfig, max_ms: float) -> str:
    cluster = ShardedCluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    return fingerprint_state(cluster)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cross-check parallel vs sequential sharded fingerprints")
    parser.add_argument("--shards", default="2,4",
                        help="comma-separated shard counts (default: 2,4)")
    parser.add_argument("--seeds", default="3,7",
                        help="comma-separated seeds (default: 3,7)")
    parser.add_argument("--batches", type=int, default=20,
                        help="per-pool batch budget (default: 20)")
    parser.add_argument("--cross", type=float, default=0.2,
                        help="cross-shard fraction (default: 0.2)")
    parser.add_argument("--max-ms", type=float, default=600_000.0)
    parser.add_argument("--json", default=None,
                        help="write per-row results to this JSON file")
    args = parser.parse_args(argv)

    rows = []
    ok = True
    for num_shards in (int(s) for s in args.shards.split(",")):
        for seed in (int(s) for s in args.seeds.split(",")):
            for crash in (False, True):
                config = _smoke_config(num_shards, seed, args.batches,
                                       args.cross, crash)
                started = time.perf_counter()
                sequential = _sequential_fingerprint(config, args.max_ms)
                seq_s = time.perf_counter() - started
                started = time.perf_counter()
                parallel = fingerprint_state(
                    run_parallel(config, max_ms=args.max_ms))
                par_s = time.perf_counter() - started
                match = sequential == parallel
                ok = ok and match
                label = (f"poe-mac-{num_shards}sh-s{seed}"
                         + ("-crash2pc" if crash else ""))
                rows.append({
                    "row": label, "num_shards": num_shards, "seed": seed,
                    "crash_coordinator": crash,
                    "sequential_fingerprint": sequential,
                    "parallel_fingerprint": parallel,
                    "match": match,
                    "sequential_s": round(seq_s, 3),
                    "parallel_s": round(par_s, 3),
                })
                status = "ok" if match else "MISMATCH"
                print(f"{label:32s} {status:8s} "
                      f"seq {seq_s:6.2f}s  par {par_s:6.2f}s")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"ok": ok, "rows": rows}, handle, indent=2)
        print(f"wrote {args.json}")
    print("fingerprint cross-check:", "ok" if ok else "MISMATCH")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
