"""System-characterisation experiment: upper bounds without consensus.

The paper's Figure 7 measures the maximum throughput the fabric can reach
when there is *no communication among replicas*: clients send requests to
the primary, which either simply answers ("No Execution") or executes the
query before answering ("Execution").  This bounds what any consensus
protocol built on the same fabric can achieve.

The :class:`EchoReplica` below is a degenerate protocol node implementing
exactly that behaviour on the simulated fabric; :func:`run_upper_bound`
runs both configurations and reports their throughput and latency.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.authenticator import Authenticator, make_authenticators
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.fabric.metrics import RunResult, summarize
from repro.net.conditions import NetworkConditions
from repro.net.network import SimNetwork
from repro.net.simulator import Simulator
from repro.protocols.base import Message, NodeConfig, ProtocolNode
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.workload.clients import ClientPool


class EchoReplica(ProtocolNode):
    """A single server that answers clients directly, without consensus.

    The paper's upper-bound measurement allows *two* worker threads at the
    primary with no ordering between them (Section IV-B); ``worker_threads``
    models that by dividing the charged CPU time accordingly.
    """

    def __init__(self, node_id: str, config: NodeConfig,
                 authenticator: Authenticator,
                 cost_model: Optional[CryptoCostModel] = None,
                 execute: bool = True,
                 worker_threads: int = 2) -> None:
        super().__init__(node_id, config, authenticator, cost_model)
        self.execute = execute
        self.worker_threads = max(1, worker_threads)
        self.answered_batches = 0

    def on_message(self, sender: str, message: Message, now_ms: float) -> None:
        if not isinstance(message, ClientRequestMessage):
            return
        batch = message.batch
        self.charge(CryptoOp.VERIFY)
        if self.execute:
            self.charge_execution(len(batch))
        self.charge(CryptoOp.MAC_SIGN)
        self._pending_cpu_ms /= self.worker_threads
        self.answered_batches += 1
        self.send(message.reply_to or sender, ClientReplyMessage(
            batch_id=batch.batch_id,
            view=0,
            sequence=self.answered_batches,
            result_digest=b"echo",
            replica_id=self.node_id,
            size_bytes=self.config.reply_size_bytes(len(batch)),
        ))


def run_upper_bound(
    execute: bool,
    batch_size: int = 100,
    num_batches: int = 400,
    client_outstanding: int = 32,
    latency_ms: float = 0.5,
    seed: int = 1,
) -> RunResult:
    """Measure the no-consensus upper bound with or without execution."""
    replica_ids = ["replica:0"]
    pool_id = "client:0"
    auth = make_authenticators(replica_ids, [pool_id],
                               seed=f"upper-bound-{seed}".encode())
    config = NodeConfig(replica_ids=replica_ids, batch_size=batch_size,
                        out_of_order=True)
    simulator = Simulator()
    network = SimNetwork(simulator,
                         conditions=NetworkConditions(latency_ms=latency_ms,
                                                      jitter_ms=0.05, seed=seed))
    replica = EchoReplica("replica:0", config, auth["replica:0"],
                          CryptoCostModel.cmac(), execute=execute)
    pool = ClientPool(pool_id, config, completion_quorum=1,
                      target_outstanding=client_outstanding,
                      total_batches=num_batches)
    network.add_replica(replica)
    network.add_client(pool)
    network.start_all()
    network.run_until_idle()
    label = "Execution" if execute else "No Execution"
    return summarize(
        protocol=f"upper-bound ({label})",
        n=1,
        completions=pool.completions,
        metadata={"execute": execute, "batch_size": batch_size},
    )
