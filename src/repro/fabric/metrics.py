"""Throughput and latency metrics.

The paper measures throughput as transactions executed per second and
latency as the client-observed round-trip time, averaged over the
measurement window after a warm-up period (Section IV, "Setup").  The
helpers here compute those statistics from the completion records the
client pools collect, and build per-second throughput timelines for the
view-change experiment (Figure 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.workload.clients import CompletionRecord


@dataclass(frozen=True)
class MetricsWindow:
    """A measurement window in virtual time, excluding warm-up."""

    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.end_ms - self.start_ms)

    def contains(self, record: CompletionRecord) -> bool:
        return self.start_ms <= record.completed_at_ms <= self.end_ms


@dataclass
class RunResult:
    """Aggregated outcome of one experiment run.

    Attributes:
        protocol: protocol name.
        n: number of replicas.
        throughput_txn_per_s: completed transactions per simulated second.
        avg_latency_ms: mean client-observed latency over the window.
        p50_latency_ms / p99_latency_ms: latency percentiles.
        completed_txns: transactions completed inside the window.
        completed_batches: batches completed inside the window.
        duration_ms: measurement window length.
        metadata: free-form extras (batch size, failures, view changes, ...).
    """

    protocol: str
    n: int
    throughput_txn_per_s: float
    avg_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    completed_txns: int
    completed_batches: int
    duration_ms: float
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def avg_latency_s(self) -> float:
        return self.avg_latency_ms / 1000.0

    def row(self) -> Dict[str, object]:
        """Flat dictionary for tabular reporting."""
        row = {
            "protocol": self.protocol,
            "n": self.n,
            "throughput_txn_per_s": round(self.throughput_txn_per_s, 1),
            "avg_latency_ms": round(self.avg_latency_ms, 3),
            "p50_latency_ms": round(self.p50_latency_ms, 3),
            "p99_latency_ms": round(self.p99_latency_ms, 3),
            "completed_txns": self.completed_txns,
            "duration_ms": round(self.duration_ms, 1),
        }
        row.update(self.metadata)
        return row


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(
    protocol: str,
    n: int,
    completions: Iterable[CompletionRecord],
    window: Optional[MetricsWindow] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Summarise completion records into a :class:`RunResult`.

    If *window* is ``None`` the window spans from the first to the last
    completion (i.e. no warm-up exclusion).
    """
    records = list(completions)
    if window is None:
        if records:
            window = MetricsWindow(
                start_ms=min(r.completed_at_ms for r in records),
                end_ms=max(r.completed_at_ms for r in records),
            )
        else:
            window = MetricsWindow(start_ms=0.0, end_ms=0.0)
    in_window = [r for r in records if window.contains(r)]
    txns = sum(r.num_txns for r in in_window)
    latencies = sorted(r.latency_ms for r in in_window)
    duration_ms = window.duration_ms
    throughput = txns / (duration_ms / 1000.0) if duration_ms > 0 else 0.0
    avg_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return RunResult(
        protocol=protocol,
        n=n,
        throughput_txn_per_s=throughput,
        avg_latency_ms=avg_latency,
        p50_latency_ms=percentile(latencies, 0.50),
        p99_latency_ms=percentile(latencies, 0.99),
        completed_txns=txns,
        completed_batches=len(in_window),
        duration_ms=duration_ms,
        metadata=dict(metadata or {}),
    )


@dataclass
class ThroughputTimeline:
    """Per-bucket throughput over time (Figure 10 style)."""

    bucket_ms: float
    buckets: List[float] = field(default_factory=list)

    @classmethod
    def from_completions(cls, completions: Iterable[CompletionRecord],
                         bucket_ms: float = 1000.0,
                         end_ms: Optional[float] = None) -> "ThroughputTimeline":
        """Bucket completed transactions into per-interval throughput (txn/s)."""
        records = list(completions)
        if not records and end_ms is None:
            return cls(bucket_ms=bucket_ms, buckets=[])
        horizon = end_ms if end_ms is not None else max(
            r.completed_at_ms for r in records)
        num_buckets = int(math.ceil(horizon / bucket_ms)) if horizon > 0 else 0
        counts = [0.0] * num_buckets
        for record in records:
            index = min(num_buckets - 1, int(record.completed_at_ms // bucket_ms))
            if index >= 0:
                counts[index] += record.num_txns
        scale = 1000.0 / bucket_ms
        return cls(bucket_ms=bucket_ms, buckets=[c * scale for c in counts])

    def series(self) -> List[Dict[str, float]]:
        """(time_s, txn/s) points suitable for printing or plotting."""
        return [
            {"time_s": (i + 1) * self.bucket_ms / 1000.0, "throughput_txn_per_s": v}
            for i, v in enumerate(self.buckets)
        ]
