"""Cluster builder: wires protocols, network, workload and faults together.

A :class:`Cluster` is one runnable deployment: ``n`` replicas of a chosen
protocol, one or more client pools, a simulated network with configurable
conditions and a fault schedule.  It is the programmatic entry point used
by the examples, the tests and the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.authenticator import Authenticator, make_authenticators
from repro.crypto.cost import CryptoCostModel
from repro.fabric.metrics import MetricsWindow, RunResult, summarize
from repro.fabric.registry import ProtocolSpec, get_spec
from repro.net.byzantine import ByzantineSpec, make_behavior
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.network import SimNetwork
from repro.net.simulator import Simulator
from repro.protocols.base import NodeConfig
from repro.protocols.client_messages import ClientRequestMessage
from repro.protocols.epoch import apply_reconfig, make_reconfig_record
from repro.workload.clients import BatchSource, ClientPool, CompletionRecord
from repro.workload.ycsb import YcsbConfig, YcsbWorkload

#: Synthetic sender id for consensus-ordered reconfiguration records.  It
#: is not a registered network node: replies routed back to it are
#: silently dropped by the network (unknown receiver), which is exactly
#: the fate admin acknowledgements deserve in a simulation.
RECONFIG_ADMIN = "admin:reconfig"


@dataclass(frozen=True)
class ReconfigStep:
    """One scheduled membership change, ordered through consensus.

    ``add``/``remove`` are replica *indices* (resolved against the
    cluster's namespace), so plans stay namespace-agnostic: joiner
    indices at or beyond ``num_replicas`` provision never-before-seen
    replicas with fresh keys.
    """

    at_ms: float
    add: Tuple[int, ...] = ()
    remove: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ReconfigPlan:
    """A sequence of membership changes injected at their scheduled times."""

    steps: Tuple[ReconfigStep, ...] = ()


def replica_id(index: int) -> str:
    """Canonical replica identifier for *index*."""
    return f"replica:{index}"


def client_id(index: int) -> str:
    """Canonical client-pool identifier for *index*."""
    return f"client:{index}"


@dataclass
class ClusterConfig:
    """Parameters of one cluster deployment.

    Attributes:
        protocol: protocol key (``"poe"``, ``"pbft"``, ``"zyzzyva"``,
            ``"sbft"``, ``"hotstuff"``, ``"poe-mac"``).
        num_replicas: number of replicas ``n``.
        batch_size: transactions per consensus slot.
        num_clients: number of client pools.
        client_outstanding: batches each pool keeps in flight.
        total_batches: per-pool batch budget (``None`` = unbounded).
        zero_payload: run the paper's zero-payload configuration.
        out_of_order: allow the primary to propose out of order.
        execute_operations: really apply YCSB transactions (tests/examples)
            rather than cost-modelling execution (large benchmarks).
        use_ycsb_payload: generate real YCSB batches instead of synthetic
            cost-modelled ones.
        request_timeout_ms: client/replica timeout (paper: 3000 ms).
        checkpoint_interval: slots between checkpoints.
        conditions: network conditions (defaults to LAN).
        faults: fault schedule (defaults to none).
        byzantine: optional active-misbehaviour spec: one replica whose
            outgoing traffic is routed through a
            :class:`~repro.net.byzantine.ByzantineBehavior`.
        extra_byzantine: additional misbehaviour specs beyond ``byzantine``
            (colluding adversaries need up to ``f`` corrupted replicas);
            behaviours that declare ``wants_playbook`` are linked through
            one shared :class:`~repro.net.byzantine.ColludingPlaybook`.
        reconfig: optional epoch-reconfiguration plan.  Each step injects
            a signed :class:`~repro.protocols.epoch.ReconfigRecord` into
            the ordering path at its scheduled time; joiner replicas are
            provisioned (fresh keys, registered indices) at build time and
            boot when their step fires.
        cost_model: crypto cost model (defaults to the CMAC configuration).
        seed: base RNG seed.
        namespace: prefix applied to every node id (e.g. ``"s0/"``), so
            several clusters — the shards of a
            :class:`~repro.fabric.sharding.ShardedCluster` — can coexist
            on one simulator without id collisions.
    """

    protocol: str = "poe"
    num_replicas: int = 4
    batch_size: int = 100
    num_clients: int = 1
    client_outstanding: int = 16
    total_batches: Optional[int] = 100
    zero_payload: bool = False
    out_of_order: bool = True
    execute_operations: bool = False
    use_ycsb_payload: bool = False
    request_timeout_ms: float = 3000.0
    checkpoint_interval: int = 50
    conditions: Optional[NetworkConditions] = None
    faults: Optional[FaultSchedule] = None
    byzantine: Optional[ByzantineSpec] = None
    extra_byzantine: Tuple[ByzantineSpec, ...] = ()
    reconfig: Optional[ReconfigPlan] = None
    cost_model: Optional[CryptoCostModel] = None
    ycsb: Optional[YcsbConfig] = None
    seed: int = 1
    namespace: str = ""

    def replica_ids(self) -> List[str]:
        return [self.namespace + replica_id(i) for i in range(self.num_replicas)]

    def client_ids(self) -> List[str]:
        return [self.namespace + client_id(i) for i in range(self.num_clients)]


class Cluster:
    """A fully wired deployment, ready to run.

    Args:
        config: the deployment parameters.
        simulator: optional externally owned simulator.  A sharded
            deployment builds one :class:`~repro.net.simulator.Simulator`
            and passes it to every per-shard cluster, so all shards (and
            the cross-shard coordinator) advance on one deterministic
            virtual clock.  Defaults to a private simulator.
        authenticators: optional pre-provisioned authenticator map.  The
            trusted setup (:func:`make_authenticators`) is deterministic
            in the config and its products are immutable, so callers that
            build many identical clusters — the model checker replays one
            deployment hundreds of thousands of times — can provision
            once and share.  Defaults to running the setup per cluster.
    """

    #: Bounded re-injections per planned reconfiguration record (see
    #: :meth:`_schedule_reconfig`).
    RECONFIG_RETRANSMITS = 3

    def __init__(self, config: ClusterConfig,
                 simulator: Optional[Simulator] = None,
                 authenticators: Optional[Dict[str, Authenticator]] = None) -> None:
        self.config = config
        self.spec: ProtocolSpec = get_spec(config.protocol)
        self.simulator = simulator if simulator is not None else Simulator()
        self.network = SimNetwork(
            self.simulator,
            conditions=config.conditions or NetworkConditions.lan(seed=config.seed),
            faults=config.faults or FaultSchedule.none(),
        )
        self.node_config = NodeConfig(
            replica_ids=config.replica_ids(),
            batch_size=config.batch_size,
            request_timeout_ms=config.request_timeout_ms,
            checkpoint_interval=config.checkpoint_interval,
            execute_operations=config.execute_operations,
            out_of_order=config.out_of_order,
            zero_payload=config.zero_payload,
        )
        #: Reconfiguration bookkeeping (empty without a plan): scheduled
        #: records, joiner ids with the epoch and time they join at.
        self._reconfig_records: List[Tuple[float, object]] = []
        self._joiner_ids: List[str] = []
        self._join_epochs: Dict[str, int] = {}
        self._join_times: Dict[str, float] = {}
        threshold = self._plan_reconfig()
        if authenticators is None:
            authenticators = make_authenticators(
                replica_ids=config.replica_ids() + self._joiner_ids,
                client_ids=config.client_ids(),
                threshold=threshold,
                seed=f"cluster-seed-{config.seed}".encode(),
            )
        self.authenticators: Dict[str, Authenticator] = authenticators
        self.replicas = []
        self.pools: List[ClientPool] = []
        self.byzantine_ids: List[str] = []
        self._build_replicas()
        self._build_clients()
        self._attach_byzantine()
        self._schedule_reconfig()

    # ------------------------------------------------------------------ build
    def _plan_reconfig(self) -> Optional[int]:
        """Resolve the reconfiguration plan into records and joiners.

        Returns the signing threshold the shared setup must use: the
        minimum ``nf`` across every planned epoch, so one threshold scheme
        (sized for the full timeline membership) serves them all — the
        simulator's stand-in for proactive threshold re-keying.  ``None``
        without a plan keeps the fixed-membership default.
        """
        plan = self.config.reconfig
        if plan is None or not plan.steps:
            return None
        namespace = self.config.namespace
        members = tuple(self.config.replica_ids())
        nf_min = len(members) - (len(members) - 1) // 3
        boot = set(members)
        for step_index, step in enumerate(plan.steps):
            add_ids = tuple(namespace + replica_id(i) for i in step.add)
            remove_ids = tuple(namespace + replica_id(i) for i in step.remove)
            record = make_reconfig_record(
                new_epoch=step_index + 1, add=add_ids, remove=remove_ids,
                created_at_ms=step.at_ms,
            )
            self._reconfig_records.append((step.at_ms, record))
            for rid in add_ids:
                if rid not in boot and rid not in self._join_epochs:
                    self._joiner_ids.append(rid)
                    self._join_epochs[rid] = step_index + 1
                    self._join_times[rid] = step.at_ms
            members = apply_reconfig(members, add_ids, remove_ids)
            nf_min = min(nf_min, len(members) - (len(members) - 1) // 3)
        for rid in self._joiner_ids:
            self.node_config.register_replica(rid)
        return nf_min

    def _schedule_reconfig(self) -> None:
        """Inject each planned record into the ordering path at its time.

        The record is delivered to every epoch-0 replica as a
        retransmitted client request: backups forward it to the primary
        and arm their progress timers, so the record survives a dark or
        replaced primary like any other client batch.  Unlike a real
        client the admin has no reactive timeout loop, so each record is
        re-injected a bounded number of times — the ordering path can
        consume a batch into a round that never certifies (an orphaned
        HotStuff round, a proposal lost to a view change) and only a
        retransmission makes it proposable again.  Replicas that already
        ordered the record answer with their cached reply, which the
        network drops (unknown receiver).
        """
        if not self._reconfig_records:
            return
        size_bytes = self.node_config.proposal_size_bytes(1)
        spacing = max(10.0, self.config.request_timeout_ms / 2.0)
        for at_ms, record in self._reconfig_records:
            for attempt in range(1 + self.RECONFIG_RETRANSMITS):
                for rid in self.config.replica_ids():
                    self.network.inject(
                        RECONFIG_ADMIN, rid,
                        ClientRequestMessage(batch=record,
                                             reply_to=RECONFIG_ADMIN,
                                             retransmission=True,
                                             size_bytes=size_bytes),
                        delay_ms=at_ms + attempt * spacing,
                    )

    def _initial_table(self) -> Optional[Dict[str, str]]:
        if not self.config.execute_operations:
            return None
        ycsb_config = self.config.ycsb or YcsbConfig.small(seed=self.config.seed)
        return YcsbWorkload(ycsb_config).initial_table()

    def _build_replicas(self) -> None:
        cost_model = self.config.cost_model or CryptoCostModel.cmac()
        initial_table = self._initial_table()
        for rid in self.config.replica_ids() + self._joiner_ids:
            replica = self.spec.replica_cls(
                node_id=rid,
                config=self.node_config,
                authenticator=self.authenticators[rid],
                cost_model=cost_model,
                initial_table=dict(initial_table) if initial_table else None,
                **self.spec.replica_kwargs,
            )
            join_epoch = self._join_epochs.get(rid)
            if join_epoch is not None:
                # Joiners are built (and keyed) now but stay dormant until
                # their step fires: a crash window ending at the join time
                # makes the network boot them through the churn machinery,
                # and ``join_epoch`` keeps them passive (no primary
                # suspicion) while they bootstrap via state transfer.
                replica.join_epoch = join_epoch
                self.network.faults.add_crash(
                    rid, at_ms=0.0, until_ms=self._join_times[rid])
            self.replicas.append(replica)
            self.network.add_replica(replica)

    def _attach_byzantine(self) -> None:
        specs: List[ByzantineSpec] = []
        if self.config.byzantine is not None:
            specs.append(self.config.byzantine)
        specs.extend(self.config.extra_byzantine)
        if not specs:
            return
        replica_order = self.config.replica_ids() + self._joiner_ids
        behaviors = []
        for offset, spec in enumerate(specs):
            node_id = replica_order[spec.replica_index]
            behavior = make_behavior(spec.behavior, **spec.options)
            # The first spec keeps the historical seed so single-adversary
            # rows reproduce byte-identically; extras get distinct streams.
            seed = self.config.seed if offset == 0 \
                else self.config.seed + 7919 * offset
            self.network.set_byzantine(node_id, behavior, seed=seed)
            # Replica-level behaviours additionally corrupt the state machine
            # itself (wrong execution, forged histories); the default install
            # hook is a no-op for network-boundary behaviours.
            behavior.install(self.network.node(node_id))
            self.byzantine_ids.append(node_id)
            behaviors.append(behavior)
        conspirators = [b for b in behaviors
                        if getattr(b, "wants_playbook", False)]
        if conspirators:
            from repro.net.byzantine import ColludingPlaybook

            playbook = ColludingPlaybook()
            for behavior in conspirators:
                behavior.playbook = playbook

    def _batch_source_for(self, pool_id: str) -> Optional[BatchSource]:
        if not self.config.use_ycsb_payload:
            return None  # the pool falls back to synthetic batches
        ycsb_config = self.config.ycsb or YcsbConfig.small(seed=self.config.seed)
        workload = YcsbWorkload(
            ycsb_config, client_id=pool_id,
            authenticator=self.authenticators.get(pool_id),
        )

        def source(index: int, now_ms: float) -> object:
            batch = workload.next_batch(self.config.batch_size, created_at_ms=now_ms)
            return dataclasses.replace(batch, reply_to=pool_id)

        return source

    def _build_clients(self) -> None:
        for pool_id in self.config.client_ids():
            pool = self.spec.client_pool_cls(
                node_id=pool_id,
                config=self.node_config,
                batch_source=self._batch_source_for(pool_id),
                target_outstanding=self.config.client_outstanding,
                total_batches=self.config.total_batches,
                timeout_ms=self.config.request_timeout_ms,
            )
            self.pools.append(pool)
            self.network.add_client(pool)

    # ------------------------------------------------------------------ running
    def start(self) -> None:
        """Boot every node (idempotent only if called once)."""
        self.network.start_all()

    def run_for(self, duration_ms: float) -> float:
        """Run the cluster for *duration_ms* of virtual time."""
        return self.network.run(until_ms=self.simulator.now + duration_ms)

    def run_until_done(self, max_ms: float = 600_000.0,
                       chunk_ms: float = 1_000.0) -> float:
        """Run until every client pool completed its batch budget.

        Completion is only re-checked after a chunk that actually processed
        events — an idle chunk cannot have completed a batch, so polling
        ``is_done`` across every pool again would be wasted work.

        Returns the virtual time at which the run stopped (either because
        all pools finished or because *max_ms* was reached).
        """
        deadline = self.simulator.now + max_ms
        check_completion = True
        while self.simulator.now < deadline:
            if check_completion and all(pool.is_done() for pool in self.pools):
                break
            next_stop = min(deadline, self.simulator.now + chunk_ms)
            before = self.simulator.processed_events
            self.network.run(until_ms=next_stop)
            check_completion = self.simulator.processed_events != before
            if (not check_completion
                    and self.simulator.now >= next_stop >= deadline):
                break
        return self.simulator.now

    # ------------------------------------------------------------------ results
    def completions(self) -> List[CompletionRecord]:
        records: List[CompletionRecord] = []
        for pool in self.pools:
            records.extend(pool.completions)
        records.sort(key=lambda record: record.completed_at_ms)
        return records

    def result(self, window: Optional[MetricsWindow] = None,
               warmup_fraction: float = 0.1,
               metadata: Optional[Dict[str, object]] = None) -> RunResult:
        """Summarise the run, excluding an initial warm-up fraction."""
        records = self.completions()
        if window is None and records:
            start_index = int(len(records) * warmup_fraction)
            start_index = min(start_index, len(records) - 1)
            measured = records[start_index:]
            # Steady-state runs measure completion-to-completion; bursty runs
            # (e.g. every batch blocked on the same timeout) would yield a
            # near-zero window that way, so fall back to submission time.
            last_submission = max(record.submitted_at_ms for record in measured)
            window = MetricsWindow(
                start_ms=min(measured[0].completed_at_ms, last_submission),
                end_ms=measured[-1].completed_at_ms,
            )
        info = {
            "batch_size": self.config.batch_size,
            "zero_payload": self.config.zero_payload,
            "out_of_order": self.config.out_of_order,
        }
        info.update(metadata or {})
        return summarize(
            protocol=self.spec.name,
            n=self.config.num_replicas,
            completions=records,
            window=window,
            metadata=info,
        )
