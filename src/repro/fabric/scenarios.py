"""Adversarial scenario matrix: protocols × fault scenarios, audited.

The ROADMAP's north star asks for "as many scenarios as you can
imagine"; this module is the harness that makes those scenarios cheap to
add and impossible to run without a safety check.  A *scenario* is a
named recipe producing a fault schedule and/or a Byzantine behaviour for
a deployment; :func:`run_scenario` wires it into a cluster, attaches the
:class:`~repro.fabric.audit.SafetyAuditor`, runs to completion (or a
virtual-time bound, for combinations that are expected to stall) and
returns a structured outcome.

:func:`run_matrix` sweeps protocols × scenarios — the default protocol
list covers the paper's five protocols with PoE in both of its
authentication schemes (MACs and threshold signatures; the baselines are
tied to their native scheme) — and :func:`format_matrix` renders the
liveness/safety table.

Outcomes are judged against *expectations*: every combination must be
safe and live except the documented ones.  Since the baseline recovery
subsystem landed (SBFT and Zyzzyva view changes over
:class:`~repro.protocols.recovery.ViewChangeRecovery`, including
Zyzzyva's client proof-of-misbehaviour path), there are none: the cells
that used to be expected-stall (``sbft``/``zyzzyva`` × faulty primary)
and expected-unsafe (``zyzzyva × equivocate``) now recover and must pass
the auditor like every other cell.  Any deviation anywhere in the matrix
is a regression.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fabric.audit import AuditReport, SafetyAuditor
from repro.fabric.cluster import (
    Cluster,
    ClusterConfig,
    ReconfigPlan,
    ReconfigStep,
    replica_id,
)
from repro.net.byzantine import ByzantineSpec
from repro.net.conditions import DriftPhase, LatencyTopology, NetworkConditions
from repro.net.faults import FaultSchedule

#: Protocol keys swept by default: the paper's five protocols, with PoE in
#: both authentication schemes (ingredient I3).  PBFT is MAC-native; SBFT
#: and HotStuff are threshold-native; Zyzzyva is MAC-native.
MATRIX_PROTOCOLS: Tuple[str, ...] = (
    "poe-mac", "poe-ts", "pbft", "sbft", "zyzzyva", "hotstuff",
)


@dataclass
class ScenarioParams:
    """Deployment knobs shared by every scenario run.

    ``namespace`` makes a recipe shard-aware: a sharded scenario re-runs a
    single-group recipe with ``namespace="s2/"`` and every replica id the
    recipe derives lands inside shard 2 — the whole single-group scenario
    library is reusable per shard without modification.
    """

    num_replicas: int = 4
    batch_size: int = 10
    total_batches: int = 20
    client_outstanding: int = 4
    request_timeout_ms: float = 100.0
    checkpoint_interval: int = 5
    max_ms: float = 60_000.0
    seed: int = 11
    namespace: str = ""

    @property
    def f(self) -> int:
        return (self.num_replicas - 1) // 3

    def replica(self, index: int) -> str:
        """Namespaced replica identifier for *index*."""
        return self.namespace + replica_id(index)


#: A scenario recipe returns (fault schedule, byzantine spec) or
#: (fault schedule, byzantine spec, network conditions); any element may
#: be ``None``.  The two-tuple form predates the topology column and
#: remains valid so external recipes keep working.
ScenarioRecipe = Callable[[ScenarioParams], Tuple]


@dataclass(frozen=True)
class ScenarioDef:
    """One registered scenario: the recipe plus its catalogue entry."""

    name: str
    recipe: ScenarioRecipe
    description: str = ""
    tier: str = "core"  # "core" | "adaptive" | "reconfig" | "topology"


#: The scenario registry, populated by :func:`register_scenario` in
#: definition order (which is the matrix's column order).
SCENARIO_DEFS: Dict[str, ScenarioDef] = {}

#: Backward-compatible name -> recipe view of :data:`SCENARIO_DEFS`.
SCENARIOS: Dict[str, ScenarioRecipe] = {}


def register_scenario(name: str, description: str = "",
                      tier: str = "core") -> Callable[[ScenarioRecipe], ScenarioRecipe]:
    """Register a scenario recipe under *name* (decorator)."""

    def wrap(recipe: ScenarioRecipe) -> ScenarioRecipe:
        SCENARIO_DEFS[name] = ScenarioDef(
            name=name, recipe=recipe, description=description, tier=tier)
        SCENARIOS[name] = recipe
        return recipe

    return wrap


def unpack_recipe(result: Tuple) -> Tuple[Optional[FaultSchedule],
                                          Optional[ByzantineSpec],
                                          Optional[NetworkConditions]]:
    """Normalise a recipe result onto (faults, byzantine, conditions)."""
    if len(result) == 2:
        faults, byzantine = result
        return faults, byzantine, None
    faults, byzantine = result[0], result[1]
    return faults, byzantine, result[2]


def unpack_recipe_ex(result: Tuple) -> Tuple[Optional[FaultSchedule],
                                             Optional[ByzantineSpec],
                                             Optional[NetworkConditions],
                                             Dict[str, object]]:
    """Normalise a recipe result onto (faults, byzantine, conditions, extras).

    ``extras`` is the reconfiguration-era side channel: recipes that need
    deployment shape beyond the classic three columns return a *fourth*
    element, a dict carrying any of:

    - ``"num_replicas"``: override the cluster size (colluding scenarios
      need n = 7 so a two-member cabal stays within f);
    - ``"total_batches"``: override the workload length (reconfiguration
      scenarios need enough batches left *after* the record lands for the
      activation boundary to be reached on every protocol — Zyzzyva
      speculatively orders the default 20 in under 10 ms);
    - ``"reconfig"``: a :class:`ReconfigPlan` of epoch steps;
    - ``"extra_byzantine"``: additional :class:`ByzantineSpec` entries
      beyond the primary ``byzantine`` column (cabal co-conspirators).

    The 2- and 3-tuple forms stay valid, so the pre-epoch scenario
    library and external recipes keep working unchanged.
    """
    if len(result) == 4:
        faults, byzantine, conditions, extras = result
        return faults, byzantine, conditions, dict(extras or {})
    faults, byzantine, conditions = unpack_recipe(result)
    return faults, byzantine, conditions, {}


@register_scenario("no-fault", "clean run, LAN conditions", tier="core")
def _no_fault(params: ScenarioParams):
    return None, None


@register_scenario("backup-crash", "one backup crashes at start", tier="core")
def _backup_crash(params: ScenarioParams):
    # The paper's standard single-backup-failure configuration.
    victim = params.replica(params.num_replicas - 1)
    return FaultSchedule.single_backup_crash(victim, at_ms=0.0), None


@register_scenario("primary-crash", "primary crashes mid-workload; view change required", tier="core")
def _primary_crash(params: ScenarioParams):
    # Crash the primary with most of the workload still outstanding, so
    # recovery requires a view change (paper, Figure 10).
    return FaultSchedule.primary_crash(params.replica(0), at_ms=2.0), None


@register_scenario("dark-replicas", "malicious primary keeps f replicas in the dark", tier="core")
def _dark_replicas(params: ScenarioParams):
    # A malicious primary keeps f replicas in the dark (paper, Example 3
    # case 2); they must catch up through checkpoint state transfer.
    dark = [params.replica(i) for i in
            range(params.num_replicas - params.f, params.num_replicas)]
    return FaultSchedule().add_dark_replicas(params.replica(0), dark), None


@register_scenario("equivocate", "primary equivocates with forged votes", tier="core")
def _equivocate(params: ScenarioParams):
    # The primary proposes conflicting batches to disjoint halves and
    # fabricates the dark half's votes under forged identities.
    return None, ByzantineSpec(behavior="equivocate-spoof", replica_index=0)


@register_scenario("partition-heal", "f replicas partitioned away, then healed", tier="core")
def _partition_heal(params: ScenarioParams):
    # Sever f replicas from the majority for a window, then heal; the
    # majority retains an nf quorum throughout.
    minority = [params.replica(i) for i in
                range(params.num_replicas - params.f, params.num_replicas)]
    majority = [params.replica(i) for i in
                range(params.num_replicas - params.f)]
    faults = FaultSchedule().add_partition(majority, minority,
                                           at_ms=50.0, until_ms=600.0)
    return faults, None


@register_scenario("forge-history", "backup forges view-change histories below the anchor", tier="core")
def _forge_history(params: ScenarioParams):
    # Replica-level: a backup forges view-change histories below the
    # durable anchor (and, for Zyzzyva, fabricates the POM that starts the
    # view change).  The last replica is partitioned away for an initial
    # window, so when the forged view change fires right after the heal a
    # lagging honest replica exists that has not yet heard enough
    # checkpoint votes to self-heal — the exact shape the forged
    # sub-anchor entries prey on.  The window is bounded (unlike a
    # permanent double-dark link, which would silence half of HotStuff's
    # leadership line and push every protocol outside the fault model the
    # matrix is designed around).
    lagging = [params.replica(params.num_replicas - 1)]
    rest = [params.replica(i) for i in range(params.num_replicas - 1)]
    window_ms = params.request_timeout_ms * 1.5
    faults = FaultSchedule().add_partition(rest, lagging,
                                           at_ms=0.0, until_ms=window_ms)
    return faults, ByzantineSpec(
        behavior="forge-history", replica_index=2,
        options={"pom_at_ms": window_ms},
    )


@register_scenario("lying-checkpoint", "backup poisons state transfers and fabricates checkpoints", tier="core")
def _lying_checkpoint(params: ScenarioParams):
    # Replica-level: an up-to-date backup poisons the state transfers it
    # serves and pushes fabricated future checkpoints at every peer; the
    # dark replica guarantees real transfer traffic exists to poison.
    dark = [params.replica(params.num_replicas - 1)]
    faults = FaultSchedule().add_dark_replicas(params.replica(0), dark)
    return faults, ByzantineSpec(behavior="lying-checkpoint", replica_index=1)


@register_scenario("wrong-exec", "backup executes a fabricated batch and must resync", tier="core")
def _wrong_exec(params: ScenarioParams):
    # Replica-level: one backup executes a fabricated batch at one slot —
    # same height as the quorum, divergent state — and must detect the
    # stable checkpoint contradicting its own digest and resync.
    return None, ByzantineSpec(behavior="wrong-exec", replica_index=2)


@register_scenario("adaptive-primary", "adversary re-targets whoever is primary now", tier="adaptive")
def _adaptive_primary(params: ScenarioParams):
    # Adaptive: a backup partitions whoever is primary *now*, re-targeting
    # after each view change it observes through its own replica's state.
    # The partition windows are bounded (1.5 timeouts: long enough that
    # honest replicas suspect the isolated primary, short enough that the
    # deposed primary rejoins as a backup), and the attack budget is two
    # primaries, so the third view's primary runs unmolested.
    return None, ByzantineSpec(
        behavior="adaptive-primary", replica_index=2,
        options={"mode": "partition",
                 "window_ms": params.request_timeout_ms * 1.5,
                 "max_targets": 2},
    )


@register_scenario("checkpoint-equivocate", "equivocation aimed at checkpoint boundaries", tier="adaptive")
def _checkpoint_equivocate(params: ScenarioParams):
    # Adaptive: the primary equivocates only on the last two slots before
    # each checkpoint boundary — the exact window where a divergent batch
    # would be laundered into a stable checkpoint if checkpoint votes did
    # not require f + 1 matching digests.
    return None, ByzantineSpec(behavior="checkpoint-equivocate",
                               replica_index=0, options={"window": 2})


@register_scenario("timeout-stall", "quorum-critical view-change vote withheld to the deadline", tier="adaptive")
def _timeout_stall(params: ScenarioParams):
    # Adaptive: the primary crashes, and one backup withholds its
    # VIEW-CHANGE vote until just before the honest replicas' retry
    # deadline — riding the exponential backoff schedule it reads off its
    # own replica.  With n = 4 the stalled vote is quorum-critical, so
    # recovery is delayed by almost a full retry period but must still
    # complete (the stall budget is bounded).
    faults = FaultSchedule.primary_crash(params.replica(0), at_ms=2.0)
    return faults, ByzantineSpec(behavior="timeout-stall", replica_index=2)


@register_scenario("churn", "bounded leave/rejoin membership churn", tier="reconfig")
def _churn(params: ScenarioParams):
    # Membership churn: bounded leave/rejoin windows.  A backup leaves
    # almost immediately and the primary follows, so the cluster drops to
    # n - 2 live replicas (below quorum — progress stalls) until the
    # backup rejoins mid-view-change; the deposed primary rejoins last,
    # behind both the view and the checkpoint horizon, and must catch up
    # through deferred messages and checkpoint state transfer.
    timeout = params.request_timeout_ms
    faults = (FaultSchedule()
              .add_crash(params.replica(params.num_replicas - 1),
                         at_ms=5.0, until_ms=5.0 + 0.9 * timeout)
              .add_crash(params.replica(0), at_ms=2.0,
                         until_ms=2.0 + 1.6 * timeout))
    return faults, None


GEO_REGIONS: Tuple[str, ...] = ("us-east", "eu-west", "ap-south")


def geo_topology(params: ScenarioParams) -> LatencyTopology:
    """Three-region WAN topology with a scheduled mid-run drift.

    Replicas round-robin across three regions; links are directional (and
    mildly asymmetric).  The drift schedule doubles every inter-region
    latency early in the run, then eases off while tripling one specific
    link, then heals — all deterministic functions of virtual time.
    """
    regions = {params.replica(i): GEO_REGIONS[i % len(GEO_REGIONS)]
               for i in range(params.num_replicas)}
    return LatencyTopology(
        regions=regions,
        intra_ms=0.3,
        link_ms={
            ("us-east", "eu-west"): 7.0,
            ("eu-west", "us-east"): 8.0,
            ("us-east", "ap-south"): 11.0,
            ("eu-west", "ap-south"): 9.0,
        },
        default_inter_ms=10.0,
        default_region="us-east",
        drift=(
            DriftPhase(at_ms=0.0, scale=1.0),
            DriftPhase(at_ms=40.0, scale=2.0),
            DriftPhase(at_ms=120.0, scale=1.3,
                       link_scale={("us-east", "ap-south"): 3.0}),
            DriftPhase(at_ms=260.0, scale=1.0),
        ),
    )


@register_scenario("geo-drift", "three-region WAN with scheduled latency drift", tier="topology")
def _geo_drift(params: ScenarioParams):
    # Topology: no faults, no Byzantine replica — the adversary is the
    # network itself.  Inter-region latencies double mid-run and one link
    # degrades 3x before healing; the protocols must absorb the drift
    # without spurious view changes turning into safety violations.
    conditions = NetworkConditions(
        latency_ms=0.5, jitter_ms=0.05, bandwidth_mbps=2000.0,
        topology=geo_topology(params), seed=params.seed,
    )
    return None, None, conditions


@register_scenario("forge-history-vc", "forged history competing inside a real view change", tier="core")
def _forge_history_vc(params: ScenarioParams):
    # The forged-history corner, aimed at the view change itself: the
    # partition creates a lagging honest replica, and the primary crashes
    # permanently the moment the partition heals — so every protocol runs
    # a *real* view change in which the forger's fabricated request
    # (stable checkpoint -1, invented history from slot 0) competes
    # against honest requests while one participant is still behind.
    # Support-ranked selection must keep the forged sub-anchor entries
    # out of the adopted prefix.
    lagging = [params.replica(params.num_replicas - 1)]
    rest = [params.replica(i) for i in range(params.num_replicas - 1)]
    window_ms = params.request_timeout_ms * 1.5
    faults = (FaultSchedule()
              .add_partition(rest, lagging, at_ms=0.0, until_ms=window_ms)
              .add_crash(params.replica(0), at_ms=window_ms))
    return faults, ByzantineSpec(
        behavior="forge-history", replica_index=2,
        options={"pom_at_ms": window_ms},
    )



@register_scenario("epoch-grow", "consensus-committed growth: two fresh replicas join mid-run", tier="reconfig")
def _epoch_grow(params: ScenarioParams):
    # Reconfiguration: a signed ReconfigRecord adding two never-before-seen
    # replicas is ordered through the normal batch path and activates at
    # the next checkpoint boundary; the joiners bootstrap via vouched
    # state transfer carrying the epoch log and then vote.  The record is
    # injected early (2 ms) with 30 batches of runway so every protocol —
    # including Zyzzyva, which speculatively orders the default workload
    # in under 10 ms — still has batches left to cross the boundary.
    n = params.num_replicas
    plan = ReconfigPlan(steps=(ReconfigStep(at_ms=2.0, add=(n, n + 1)),))
    return None, None, None, {"reconfig": plan, "total_batches": 30}


@register_scenario("epoch-shrink", "grow then shrink back: evicted replicas self-halt at the boundary", tier="reconfig")
def _epoch_shrink(params: ScenarioParams):
    # Two chained reconfigurations: grow n -> n+2, then remove one joiner
    # and one founding member.  The second record must validate against
    # the *post-grow* membership (new_epoch = 2), the evicted replicas
    # self-halt at the activation boundary, and the auditor re-validates
    # every stable checkpoint against the quorum of its epoch.
    n = params.num_replicas
    plan = ReconfigPlan(steps=(
        ReconfigStep(at_ms=2.0, add=(n, n + 1)),
        ReconfigStep(at_ms=8.0, remove=(n + 1, n - 1)),
    ))
    return None, None, None, {"reconfig": plan, "total_batches": 30}


@register_scenario("epoch-under-vc", "primary crashes while a membership change is in flight", tier="reconfig")
def _epoch_under_vc(params: ScenarioParams):
    # Reconfiguration under recovery: the primary crashes with most of
    # the workload outstanding, and the grow record arrives while the
    # cluster is (or has just finished) view-changing.  The record must
    # survive the view change — either carried in a new-view history or
    # re-proposed from retransmission — and activate exactly once.
    n = params.num_replicas
    faults = FaultSchedule.primary_crash(params.replica(0), at_ms=2.0)
    plan = ReconfigPlan(steps=(ReconfigStep(at_ms=50.0, add=(n, n + 1)),))
    return faults, None, None, {"reconfig": plan, "total_batches": 40}


@register_scenario("epoch-cycle", "repeated grow/shrink cycles; per-epoch bookkeeping must plateau", tier="reconfig")
def _epoch_cycle(params: ScenarioParams):
    # Churn-style reconfiguration: two full grow/shrink cycles, each
    # admitting fresh replica identities and then evicting them.  On a
    # soak run this is the leak check for the epoch registry: the epoch
    # log grows by exactly one entry per activated record and then
    # plateaus — nothing per-epoch may scale with run length.
    n = params.num_replicas
    plan = ReconfigPlan(steps=(
        ReconfigStep(at_ms=2.0, add=(n, n + 1)),
        ReconfigStep(at_ms=60.0, remove=(n, n + 1)),
        ReconfigStep(at_ms=120.0, add=(n + 2, n + 3)),
        ReconfigStep(at_ms=180.0, remove=(n + 2, n + 3)),
    ))
    return None, None, None, {"reconfig": plan, "total_batches": 60}


@register_scenario("colluding-equivocate", "cabal equivocates only while a co-conspirator holds the seat", tier="adaptive")
def _colluding_equivocate(params: ScenarioParams):
    # Colluding tier: two behaviours share a playbook.  The equivocator
    # forks slots only while the cabal holds the primary seat (so the
    # attack is aimed, not random), and the vote-parker withholds its
    # checkpoint votes over the same windows to starve the boundary the
    # forked slot would have to be laundered through.  n = 7 keeps the
    # two-member cabal within f = 2.
    byz = ByzantineSpec(behavior="colluding-equivocate", replica_index=0)
    extras = {
        "num_replicas": max(params.num_replicas, 7),
        "extra_byzantine": (
            ByzantineSpec(behavior="colluding-parker", replica_index=2),
        ),
    }
    return None, byz, None, extras


@register_scenario("colluding-reconfig-abuse", "Byzantine proposer's unsafe membership change must be refused", tier="reconfig")
def _colluding_reconfig_abuse(params: ScenarioParams):
    # Colluding tier meets reconfiguration: a conspirator fabricates a
    # membership change evicting f+1 honest replicas (breaking quorum
    # continuity) while its partner parks poisoned checkpoint votes
    # around the activation window.  Every honest replica must refuse
    # the unsafe record (journalling why) yet still order and activate
    # the legitimate grow that follows.
    n = max(params.num_replicas, 7)
    byz = ByzantineSpec(behavior="colluding-reconfig-abuse", replica_index=0,
                        options={"at_ms": 4.0})
    plan = ReconfigPlan(steps=(ReconfigStep(at_ms=10.0, add=(n, n + 1)),))
    extras = {
        "num_replicas": n,
        "reconfig": plan,
        "extra_byzantine": (
            ByzantineSpec(behavior="colluding-parker", replica_index=2,
                          options={"poison": True}),
        ),
    }
    return None, byz, None, extras


#: (protocol family, scenario) combinations that are *expected* to violate
#: safety.  Empty since the baseline recovery subsystem: Zyzzyva's view
#: change repairs divergent speculation from the highest commit
#: certificate (a proof of misbehaviour from the client triggers it), so
#: even the equivocation cell — the paper's Figure 1 reason for calling
#: Zyzzyva unsafe — must now converge every honest replica onto one
#: prefix.  Additions require a written justification in SCENARIOS.md.
EXPECTED_UNSAFE: frozenset = frozenset()

#: (protocol family, scenario) combinations that are *expected* to stall.
#: Empty since the baseline recovery subsystem: SBFT rotates its
#: collector/executor through the shared view-change engine and Zyzzyva's
#: clients trigger one via proofs of misbehaviour, so a faulty primary no
#: longer halts either baseline.  Additions require a written
#: justification in SCENARIOS.md.
EXPECTED_STALLED: frozenset = frozenset()


def protocol_family(protocol: str) -> str:
    """Collapse scheme variants onto the paper's protocol name."""
    key = protocol.lower()
    return "poe" if key.startswith("poe") else key


def unknown_name_message(kind: str, value: str,
                         known: Iterable[str]) -> str:
    """Uniform "unknown X" error text that lists the valid names.

    Every CLI that takes a protocol/scenario/cell name funnels its
    not-found branch through here, so a typo always answers with the
    full valid vocabulary instead of a bare rejection.
    """
    return f"unknown {kind} {value!r}; valid {kind}s: {', '.join(known)}"


# ------------------------------------------------------------------ sharded
#: Protocols swept against the sharded scenario columns.  The acceptance
#: bar is PoE and PBFT shards; the other protocols still work as shard
#: protocols (SBFT excepted) but are not part of the default matrix.
SHARDED_MATRIX_PROTOCOLS: Tuple[str, ...] = ("poe-mac", "pbft")


@dataclass(frozen=True)
class ShardedScenarioDef:
    """One sharded scenario: per-shard recipes plus 2PC-level adversity.

    ``per_shard`` maps a shard index to a *single-group* scenario name
    from :data:`SCENARIO_DEFS`; the recipe runs with that shard's
    namespace, so the whole existing scenario library doubles as a
    per-shard fault vocabulary.  Coordinator-level adversity (crash or a
    Byzantine behaviour) lives on the hub network.
    """

    name: str
    description: str = ""
    num_shards: int = 2
    cross_shard_fraction: float = 0.35
    per_shard: Tuple[Tuple[int, str], ...] = ()
    coordinator_crash_at_ms: Optional[float] = None
    coordinator_behavior: Optional[str] = None


SHARDED_SCENARIOS: Dict[str, ShardedScenarioDef] = {}


def register_sharded_scenario(sdef: ShardedScenarioDef) -> ShardedScenarioDef:
    SHARDED_SCENARIOS[sdef.name] = sdef
    return sdef


register_sharded_scenario(ShardedScenarioDef(
    name="xshard-no-fault",
    description="two clean shards, 35% cross-shard transactions",
))
register_sharded_scenario(ShardedScenarioDef(
    name="xshard-crash-2pc",
    description="coordinator crashes mid-2PC; pools probe and decide",
    coordinator_crash_at_ms=3.0,
))
register_sharded_scenario(ShardedScenarioDef(
    name="xshard-coordinator-equivocate",
    description="Byzantine coordinator sends commit to one shard, a forged "
                "abort to the other; certificate validation must hold the line",
    coordinator_behavior="equivocate-coordinator",
))
register_sharded_scenario(ShardedScenarioDef(
    name="xshard-coordinator-stall",
    description="Byzantine coordinator prepares, then withholds every decide",
    coordinator_behavior="stall-coordinator",
))
register_sharded_scenario(ShardedScenarioDef(
    name="xshard-shard-primary-crash",
    description="shard 0's primary crashes mid-2PC (reuses the single-group "
                "primary-crash recipe inside the shard)",
    per_shard=((0, "primary-crash"),),
))


@dataclass
class ScenarioOutcome:
    """Result of one (protocol, scenario) cell of the matrix."""

    protocol: str
    scenario: str
    n: int
    completed_batches: int
    expected_batches: int
    live: bool
    safe: bool
    expected_live: bool
    expected_safe: bool
    view_changes: int
    epochs: int = 0
    audit: AuditReport = field(repr=False, default=None)

    @property
    def as_expected(self) -> bool:
        """Liveness and safety both match the documented expectation.

        A stalled-but-expected-stalled cell still requires *some* absence
        of safety violations unless the cell is expected-unsafe.
        """
        return self.live == self.expected_live and self.safe == self.expected_safe

    def cell(self) -> str:
        safety = "safe" if self.safe else "UNSAFE"
        liveness = "live" if self.live else "stall"
        marker = "" if self.as_expected else " !!"
        return f"{liveness}/{safety}{marker}"


def run_scenario(protocol: str, scenario: str,
                 params: Optional[ScenarioParams] = None,
                 driver: str = "sequential") -> ScenarioOutcome:
    """Run one audited (protocol, scenario) cell and classify the outcome.

    *driver* selects the execution engine for sharded scenarios:
    ``"sequential"`` (in-process reference) or ``"parallel"`` (one forked
    worker per shard, identical fingerprints).  Single-group scenarios
    run on one simulator and are sequential-only.
    """
    params = params or ScenarioParams()
    if scenario in SHARDED_SCENARIOS:
        return run_sharded_scenario(protocol, scenario, params, driver=driver)
    if driver != "sequential":
        raise ValueError(
            f"scenario {scenario!r} is single-group and sequential-only; "
            f"driver={driver!r} applies to sharded scenarios")
    try:
        recipe = SCENARIOS[scenario]
    except KeyError:
        raise KeyError(f"unknown scenario {scenario!r}; "
                       f"known: {sorted(SCENARIOS) + sorted(SHARDED_SCENARIOS)}") from None
    faults, byzantine, conditions, extras = unpack_recipe_ex(recipe(params))
    num_replicas = int(extras.get("num_replicas", params.num_replicas))
    total_batches = int(extras.get("total_batches", params.total_batches))
    config = ClusterConfig(
        protocol=protocol,
        num_replicas=num_replicas,
        batch_size=params.batch_size,
        num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=total_batches,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        conditions=conditions,
        faults=faults,
        byzantine=byzantine,
        extra_byzantine=tuple(extras.get("extra_byzantine", ())),
        reconfig=extras.get("reconfig"),
        seed=params.seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=params.max_ms)
    report = auditor.report()
    live = all(pool.is_done() for pool in cluster.pools)
    family = protocol_family(protocol)
    view_changes = max(
        (getattr(replica, "view_changes_completed", 0)
         for replica in cluster.replicas if not replica.crashed),
        default=0,
    )
    return ScenarioOutcome(
        protocol=protocol,
        scenario=scenario,
        n=num_replicas,
        completed_batches=sum(pool.completed_batches for pool in cluster.pools),
        expected_batches=total_batches * config.num_clients,
        live=live,
        safe=report.ok,
        expected_live=(family, scenario) not in EXPECTED_STALLED,
        expected_safe=(family, scenario) not in EXPECTED_UNSAFE,
        view_changes=view_changes,
        epochs=max((getattr(replica, "epoch", 0)
                    for replica in cluster.replicas), default=0),
        audit=report,
    )


def run_sharded_scenario(protocol: str, scenario: str,
                         params: Optional[ScenarioParams] = None,
                         driver: str = "sequential") -> ScenarioOutcome:
    """Run one audited (shard protocol, sharded scenario) cell.

    Every shard runs *protocol*; per-shard fault recipes come from the
    single-group registry, re-run under the shard's namespace.  With
    ``driver="parallel"`` the shards execute on forked worker processes
    and the auditor runs over the recorded wire artifacts; the outcome
    (completions, liveness, audit verdict, view changes) is identical to
    the sequential reference for the same params.
    """
    from repro.fabric.audit import ShardedSafetyAuditor
    from repro.fabric.sharding import ShardedCluster, ShardedClusterConfig, coordinator_id

    params = params or ScenarioParams()
    try:
        sdef = SHARDED_SCENARIOS[scenario]
    except KeyError:
        raise KeyError(f"unknown sharded scenario {scenario!r}; "
                       f"known: {sorted(SHARDED_SCENARIOS)}") from None
    shard_faults: Dict[int, FaultSchedule] = {}
    shard_byzantine: Dict[int, ByzantineSpec] = {}
    for shard, recipe_name in sdef.per_shard:
        shard_params = dataclasses.replace(params, namespace=f"s{shard}/")
        faults, byzantine, _ = unpack_recipe(
            SCENARIO_DEFS[recipe_name].recipe(shard_params))
        if faults is not None:
            shard_faults[shard] = faults
        if byzantine is not None:
            shard_byzantine[shard] = byzantine
    hub_faults = None
    if sdef.coordinator_crash_at_ms is not None:
        hub_faults = FaultSchedule().add_crash(
            coordinator_id(), at_ms=sdef.coordinator_crash_at_ms)
    config = ShardedClusterConfig(
        num_shards=sdef.num_shards,
        protocols=protocol,
        num_replicas=params.num_replicas,
        batch_size=params.batch_size,
        client_outstanding=params.client_outstanding,
        total_batches=params.total_batches,
        cross_shard_fraction=sdef.cross_shard_fraction,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        shard_faults=shard_faults,
        shard_byzantine=shard_byzantine,
        hub_faults=hub_faults,
        coordinator_behavior=sdef.coordinator_behavior,
        seed=params.seed,
    )
    if driver == "parallel":
        from repro.fabric.parallel import run_parallel

        run = run_parallel(config, max_ms=params.max_ms)
        report = ShardedSafetyAuditor.from_recorded(run).report()
    elif driver == "sequential":
        run = ShardedCluster(config)
        auditor = ShardedSafetyAuditor.attach(run)
        run.start()
        run.run_until_done(max_ms=params.max_ms)
        report = auditor.report()
    else:
        raise ValueError(f"unknown driver {driver!r}; "
                         f"expected 'sequential' or 'parallel'")
    family = protocol_family(protocol)
    view_changes = max(
        (getattr(replica, "view_changes_completed", 0)
         for shard_cluster in run.shard_clusters
         for replica in shard_cluster.replicas if not replica.crashed),
        default=0,
    )
    return ScenarioOutcome(
        protocol=protocol,
        scenario=scenario,
        n=sdef.num_shards * params.num_replicas,
        completed_batches=sum(pool.completed_batches for pool in run.pools),
        expected_batches=params.total_batches * config.num_pools,
        live=all(pool.is_done() for pool in run.pools),
        safe=report.ok,
        expected_live=(family, scenario) not in EXPECTED_STALLED,
        expected_safe=(family, scenario) not in EXPECTED_UNSAFE,
        view_changes=view_changes,
        audit=report,
    )


def default_matrix_scenarios() -> Tuple[str, ...]:
    """The default column list: single-group scenarios, then sharded ones."""
    return tuple(SCENARIOS) + tuple(SHARDED_SCENARIOS)


def run_matrix(protocols: Sequence[str] = MATRIX_PROTOCOLS,
               scenarios: Optional[Sequence[str]] = None,
               params: Optional[ScenarioParams] = None) -> List[ScenarioOutcome]:
    """Sweep protocols × scenarios, each cell audited.

    Sharded scenario columns only run for the protocols in
    :data:`SHARDED_MATRIX_PROTOCOLS`; the other (protocol, sharded
    scenario) combinations are skipped rather than reported as cells.
    """
    if scenarios is None:
        scenarios = default_matrix_scenarios()
    outcomes: List[ScenarioOutcome] = []
    for protocol in protocols:
        for scenario in scenarios:
            if (scenario in SHARDED_SCENARIOS
                    and protocol not in SHARDED_MATRIX_PROTOCOLS):
                continue
            outcomes.append(run_scenario(protocol, scenario, params))
    return outcomes


def format_matrix(outcomes: Sequence[ScenarioOutcome]) -> str:
    """Render outcomes as a protocols × scenarios text table."""
    protocols = list(dict.fromkeys(outcome.protocol for outcome in outcomes))
    scenarios = list(dict.fromkeys(outcome.scenario for outcome in outcomes))
    by_cell = {(o.protocol, o.scenario): o for o in outcomes}
    width = max(12, max(len(s) for s in scenarios) + 2)
    name_width = max(len(p) for p in protocols) + 2
    lines = ["".join([" " * name_width] + [s.rjust(width) for s in scenarios])]
    for protocol in protocols:
        cells = []
        for scenario in scenarios:
            outcome = by_cell.get((protocol, scenario))
            cells.append((outcome.cell() if outcome else "-").rjust(width))
        lines.append(protocol.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def unexpected_outcomes(outcomes: Sequence[ScenarioOutcome]) -> List[ScenarioOutcome]:
    """The cells whose liveness/safety deviates from the documented expectation."""
    return [outcome for outcome in outcomes if not outcome.as_expected]


# ---------------------------------------------------------------------- soak
#: Per-replica bookkeeping maps sampled by the soak harness.  Everything
#: here must stay bounded by the checkpoint/retention window on a long
#: run — an entry that grows with run length is a leak.
TRACKED_STATE: Tuple[str, ...] = (
    # per-slot consensus state
    "_slots", "_accepted", "_accepted_proposal", "_accepted_preprepare",
    "_certified_log", "_executed_log", "_committed",
    # reply/dedup bookkeeping
    "_replied", "_reply_targets", "_seen_batch_ids", "_batch_sequence",
    "_forwarded_requests", "_completed_ids",
    # recovery / view-change state
    "_vc_votes", "_vc_requests", "_entered_views", "_deferred_messages",
    "_remote_checkpoint_votes", "_pending_state_transfers",
    # epoch reconfiguration (pending records drain at activation, and
    # the activated epoch log grows by exactly one entry per committed
    # reconfiguration — bounded by the plan, not by run length)
    "_pending_epochs", "epoch_log",
    # protocol-specific journals
    "_spec_history", "_commit_certs", "_proposals", "_rounds",
    "_qc_digests", "_voted_rounds",
)


def node_state_sizes(node) -> Dict[str, int]:
    """Sizes of every tracked bookkeeping map *node* actually has."""
    sizes: Dict[str, int] = {}
    for name in TRACKED_STATE:
        value = getattr(node, name, None)
        if value is not None:
            sizes[name] = len(value)
    return sizes


@dataclass
class SoakSample:
    """One point-in-time snapshot of per-node bookkeeping sizes."""

    now_ms: float
    completed_batches: int
    sizes: Dict[str, Dict[str, int]]  # node id -> map name -> size

    def max_size(self, name: str) -> int:
        return max((sizes.get(name, 0) for sizes in self.sizes.values()),
                   default=0)


@dataclass
class SoakReport:
    """Outcome of a bounded-horizon soak run."""

    protocol: str
    scenario: str
    steps: int
    completed_batches: int
    live: bool
    safe: bool
    samples: List[SoakSample]
    epochs: int = 0
    audit: AuditReport = field(repr=False, default=None)

    def tracked_names(self) -> List[str]:
        names = set()
        for sample in self.samples:
            for sizes in sample.sizes.values():
                names.update(sizes)
        return sorted(names)


def soak_params(steps: int, seed: int = 11) -> ScenarioParams:
    """Deployment knobs for soak runs.

    The client timeout is shortened so the run spans several reply
    retention windows (``request_timeout_ms * REPLY_RETENTION_TIMEOUTS``)
    of virtual time — a soak that finishes inside one window could not
    observe the reply-state GC at all.
    """
    return ScenarioParams(total_batches=steps, request_timeout_ms=25.0,
                          max_ms=600_000.0, seed=seed)


def run_soak(protocol: str, scenario: str = "no-fault", steps: int = 2000,
             params: Optional[ScenarioParams] = None,
             num_samples: int = 5) -> SoakReport:
    """Run *steps* batches, sampling bookkeeping sizes along the way.

    The samples let callers assert that every tracked map is bounded by
    the checkpoint/retention window rather than the number of executed
    batches: sizes late in the run must not exceed early-run sizes by
    more than a constant.
    """
    params = params or soak_params(steps)
    params = dataclasses.replace(params, total_batches=steps)
    if scenario in SHARDED_SCENARIOS:
        raise ValueError(f"soak runs are single-group only; {scenario!r} "
                         f"is a sharded scenario")
    faults, byzantine, conditions, extras = unpack_recipe_ex(
        SCENARIOS[scenario](params))
    config = ClusterConfig(
        protocol=protocol,
        # extras may resize the deployment, but the soak horizon always
        # wins over a recipe's total_batches override: *steps* is the
        # point of the run.
        num_replicas=int(extras.get("num_replicas", params.num_replicas)),
        batch_size=params.batch_size,
        num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=steps,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        conditions=conditions,
        faults=faults,
        byzantine=byzantine,
        extra_byzantine=tuple(extras.get("extra_byzantine", ())),
        reconfig=extras.get("reconfig"),
        seed=params.seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    marks = [steps * (i + 1) // num_samples for i in range(num_samples)]
    samples: List[SoakSample] = []

    def snapshot() -> None:
        samples.append(SoakSample(
            now_ms=cluster.simulator.now,
            completed_batches=sum(p.completed_batches for p in cluster.pools),
            sizes={node.node_id: node_state_sizes(node)
                   for node in list(cluster.replicas) + list(cluster.pools)},
        ))

    deadline = params.max_ms
    while cluster.simulator.now < deadline:
        if all(pool.is_done() for pool in cluster.pools):
            break
        before = cluster.simulator.processed_events
        cluster.run_for(25.0)
        completed = sum(pool.completed_batches for pool in cluster.pools)
        while marks and completed >= marks[0]:
            marks.pop(0)
            snapshot()
        if (cluster.simulator.processed_events == before
                and all(pool.is_done() for pool in cluster.pools)):
            break
    snapshot()
    report = auditor.report()
    return SoakReport(
        protocol=protocol,
        scenario=scenario,
        steps=steps,
        completed_batches=sum(p.completed_batches for p in cluster.pools),
        live=all(pool.is_done() for pool in cluster.pools),
        safe=report.ok,
        samples=samples,
        epochs=max((getattr(replica, "epoch", 0)
                    for replica in cluster.replicas), default=0),
        audit=report,
    )
