"""Adversarial scenario matrix: protocols × fault scenarios, audited.

The ROADMAP's north star asks for "as many scenarios as you can
imagine"; this module is the harness that makes those scenarios cheap to
add and impossible to run without a safety check.  A *scenario* is a
named recipe producing a fault schedule and/or a Byzantine behaviour for
a deployment; :func:`run_scenario` wires it into a cluster, attaches the
:class:`~repro.fabric.audit.SafetyAuditor`, runs to completion (or a
virtual-time bound, for combinations that are expected to stall) and
returns a structured outcome.

:func:`run_matrix` sweeps protocols × scenarios — the default protocol
list covers the paper's five protocols with PoE in both of its
authentication schemes (MACs and threshold signatures; the baselines are
tied to their native scheme) — and :func:`format_matrix` renders the
liveness/safety table.

Outcomes are judged against *expectations*: every combination must be
safe and live except the documented ones.  Since the baseline recovery
subsystem landed (SBFT and Zyzzyva view changes over
:class:`~repro.protocols.recovery.ViewChangeRecovery`, including
Zyzzyva's client proof-of-misbehaviour path), there are none: the cells
that used to be expected-stall (``sbft``/``zyzzyva`` × faulty primary)
and expected-unsafe (``zyzzyva × equivocate``) now recover and must pass
the auditor like every other cell.  Any deviation anywhere in the matrix
is a regression.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.audit import AuditReport, SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.byzantine import ByzantineSpec
from repro.net.conditions import DriftPhase, LatencyTopology, NetworkConditions
from repro.net.faults import FaultSchedule

#: Protocol keys swept by default: the paper's five protocols, with PoE in
#: both authentication schemes (ingredient I3).  PBFT is MAC-native; SBFT
#: and HotStuff are threshold-native; Zyzzyva is MAC-native.
MATRIX_PROTOCOLS: Tuple[str, ...] = (
    "poe-mac", "poe-ts", "pbft", "sbft", "zyzzyva", "hotstuff",
)


@dataclass
class ScenarioParams:
    """Deployment knobs shared by every scenario run."""

    num_replicas: int = 4
    batch_size: int = 10
    total_batches: int = 20
    client_outstanding: int = 4
    request_timeout_ms: float = 100.0
    checkpoint_interval: int = 5
    max_ms: float = 60_000.0
    seed: int = 11

    @property
    def f(self) -> int:
        return (self.num_replicas - 1) // 3


#: A scenario recipe returns (fault schedule, byzantine spec) or
#: (fault schedule, byzantine spec, network conditions); any element may
#: be ``None``.  The two-tuple form predates the topology column and
#: remains valid so external recipes keep working.
ScenarioRecipe = Callable[[ScenarioParams], Tuple]


def unpack_recipe(result: Tuple) -> Tuple[Optional[FaultSchedule],
                                          Optional[ByzantineSpec],
                                          Optional[NetworkConditions]]:
    """Normalise a recipe result onto (faults, byzantine, conditions)."""
    if len(result) == 2:
        faults, byzantine = result
        return faults, byzantine, None
    faults, byzantine, conditions = result
    return faults, byzantine, conditions


def _no_fault(params: ScenarioParams):
    return None, None


def _backup_crash(params: ScenarioParams):
    # The paper's standard single-backup-failure configuration.
    victim = replica_id(params.num_replicas - 1)
    return FaultSchedule.single_backup_crash(victim, at_ms=0.0), None


def _primary_crash(params: ScenarioParams):
    # Crash the primary with most of the workload still outstanding, so
    # recovery requires a view change (paper, Figure 10).
    return FaultSchedule.primary_crash(replica_id(0), at_ms=2.0), None


def _dark_replicas(params: ScenarioParams):
    # A malicious primary keeps f replicas in the dark (paper, Example 3
    # case 2); they must catch up through checkpoint state transfer.
    dark = [replica_id(i) for i in
            range(params.num_replicas - params.f, params.num_replicas)]
    return FaultSchedule().add_dark_replicas(replica_id(0), dark), None


def _equivocate(params: ScenarioParams):
    # The primary proposes conflicting batches to disjoint halves and
    # fabricates the dark half's votes under forged identities.
    return None, ByzantineSpec(behavior="equivocate-spoof", replica_index=0)


def _partition_heal(params: ScenarioParams):
    # Sever f replicas from the majority for a window, then heal; the
    # majority retains an nf quorum throughout.
    minority = [replica_id(i) for i in
                range(params.num_replicas - params.f, params.num_replicas)]
    majority = [replica_id(i) for i in
                range(params.num_replicas - params.f)]
    faults = FaultSchedule().add_partition(majority, minority,
                                           at_ms=50.0, until_ms=600.0)
    return faults, None


def _forge_history(params: ScenarioParams):
    # Replica-level: a backup forges view-change histories below the
    # durable anchor (and, for Zyzzyva, fabricates the POM that starts the
    # view change).  The last replica is partitioned away for an initial
    # window, so when the forged view change fires right after the heal a
    # lagging honest replica exists that has not yet heard enough
    # checkpoint votes to self-heal — the exact shape the forged
    # sub-anchor entries prey on.  The window is bounded (unlike a
    # permanent double-dark link, which would silence half of HotStuff's
    # leadership line and push every protocol outside the fault model the
    # matrix is designed around).
    lagging = [replica_id(params.num_replicas - 1)]
    rest = [replica_id(i) for i in range(params.num_replicas - 1)]
    window_ms = params.request_timeout_ms * 1.5
    faults = FaultSchedule().add_partition(rest, lagging,
                                           at_ms=0.0, until_ms=window_ms)
    return faults, ByzantineSpec(
        behavior="forge-history", replica_index=2,
        options={"pom_at_ms": window_ms},
    )


def _lying_checkpoint(params: ScenarioParams):
    # Replica-level: an up-to-date backup poisons the state transfers it
    # serves and pushes fabricated future checkpoints at every peer; the
    # dark replica guarantees real transfer traffic exists to poison.
    dark = [replica_id(params.num_replicas - 1)]
    faults = FaultSchedule().add_dark_replicas(replica_id(0), dark)
    return faults, ByzantineSpec(behavior="lying-checkpoint", replica_index=1)


def _wrong_exec(params: ScenarioParams):
    # Replica-level: one backup executes a fabricated batch at one slot —
    # same height as the quorum, divergent state — and must detect the
    # stable checkpoint contradicting its own digest and resync.
    return None, ByzantineSpec(behavior="wrong-exec", replica_index=2)


def _adaptive_primary(params: ScenarioParams):
    # Adaptive: a backup partitions whoever is primary *now*, re-targeting
    # after each view change it observes through its own replica's state.
    # The partition windows are bounded (1.5 timeouts: long enough that
    # honest replicas suspect the isolated primary, short enough that the
    # deposed primary rejoins as a backup), and the attack budget is two
    # primaries, so the third view's primary runs unmolested.
    return None, ByzantineSpec(
        behavior="adaptive-primary", replica_index=2,
        options={"mode": "partition",
                 "window_ms": params.request_timeout_ms * 1.5,
                 "max_targets": 2},
    )


def _checkpoint_equivocate(params: ScenarioParams):
    # Adaptive: the primary equivocates only on the last two slots before
    # each checkpoint boundary — the exact window where a divergent batch
    # would be laundered into a stable checkpoint if checkpoint votes did
    # not require f + 1 matching digests.
    return None, ByzantineSpec(behavior="checkpoint-equivocate",
                               replica_index=0, options={"window": 2})


def _timeout_stall(params: ScenarioParams):
    # Adaptive: the primary crashes, and one backup withholds its
    # VIEW-CHANGE vote until just before the honest replicas' retry
    # deadline — riding the exponential backoff schedule it reads off its
    # own replica.  With n = 4 the stalled vote is quorum-critical, so
    # recovery is delayed by almost a full retry period but must still
    # complete (the stall budget is bounded).
    faults = FaultSchedule.primary_crash(replica_id(0), at_ms=2.0)
    return faults, ByzantineSpec(behavior="timeout-stall", replica_index=2)


def _churn(params: ScenarioParams):
    # Membership churn: bounded leave/rejoin windows.  A backup leaves
    # almost immediately and the primary follows, so the cluster drops to
    # n - 2 live replicas (below quorum — progress stalls) until the
    # backup rejoins mid-view-change; the deposed primary rejoins last,
    # behind both the view and the checkpoint horizon, and must catch up
    # through deferred messages and checkpoint state transfer.
    timeout = params.request_timeout_ms
    faults = (FaultSchedule()
              .add_crash(replica_id(params.num_replicas - 1),
                         at_ms=5.0, until_ms=5.0 + 0.9 * timeout)
              .add_crash(replica_id(0), at_ms=2.0,
                         until_ms=2.0 + 1.6 * timeout))
    return faults, None


GEO_REGIONS: Tuple[str, ...] = ("us-east", "eu-west", "ap-south")


def geo_topology(params: ScenarioParams) -> LatencyTopology:
    """Three-region WAN topology with a scheduled mid-run drift.

    Replicas round-robin across three regions; links are directional (and
    mildly asymmetric).  The drift schedule doubles every inter-region
    latency early in the run, then eases off while tripling one specific
    link, then heals — all deterministic functions of virtual time.
    """
    regions = {replica_id(i): GEO_REGIONS[i % len(GEO_REGIONS)]
               for i in range(params.num_replicas)}
    return LatencyTopology(
        regions=regions,
        intra_ms=0.3,
        link_ms={
            ("us-east", "eu-west"): 7.0,
            ("eu-west", "us-east"): 8.0,
            ("us-east", "ap-south"): 11.0,
            ("eu-west", "ap-south"): 9.0,
        },
        default_inter_ms=10.0,
        default_region="us-east",
        drift=(
            DriftPhase(at_ms=0.0, scale=1.0),
            DriftPhase(at_ms=40.0, scale=2.0),
            DriftPhase(at_ms=120.0, scale=1.3,
                       link_scale={("us-east", "ap-south"): 3.0}),
            DriftPhase(at_ms=260.0, scale=1.0),
        ),
    )


def _geo_drift(params: ScenarioParams):
    # Topology: no faults, no Byzantine replica — the adversary is the
    # network itself.  Inter-region latencies double mid-run and one link
    # degrades 3x before healing; the protocols must absorb the drift
    # without spurious view changes turning into safety violations.
    conditions = NetworkConditions(
        latency_ms=0.5, jitter_ms=0.05, bandwidth_mbps=2000.0,
        topology=geo_topology(params), seed=params.seed,
    )
    return None, None, conditions


def _forge_history_vc(params: ScenarioParams):
    # The forged-history corner, aimed at the view change itself: the
    # partition creates a lagging honest replica, and the primary crashes
    # permanently the moment the partition heals — so every protocol runs
    # a *real* view change in which the forger's fabricated request
    # (stable checkpoint -1, invented history from slot 0) competes
    # against honest requests while one participant is still behind.
    # Support-ranked selection must keep the forged sub-anchor entries
    # out of the adopted prefix.
    lagging = [replica_id(params.num_replicas - 1)]
    rest = [replica_id(i) for i in range(params.num_replicas - 1)]
    window_ms = params.request_timeout_ms * 1.5
    faults = (FaultSchedule()
              .add_partition(rest, lagging, at_ms=0.0, until_ms=window_ms)
              .add_crash(replica_id(0), at_ms=window_ms))
    return faults, ByzantineSpec(
        behavior="forge-history", replica_index=2,
        options={"pom_at_ms": window_ms},
    )


SCENARIOS: Dict[str, ScenarioRecipe] = {
    "no-fault": _no_fault,
    "backup-crash": _backup_crash,
    "primary-crash": _primary_crash,
    "dark-replicas": _dark_replicas,
    "equivocate": _equivocate,
    "partition-heal": _partition_heal,
    "forge-history": _forge_history,
    "lying-checkpoint": _lying_checkpoint,
    "wrong-exec": _wrong_exec,
    # The adaptive tier: behaviours reacting to live protocol state.
    "adaptive-primary": _adaptive_primary,
    "checkpoint-equivocate": _checkpoint_equivocate,
    "timeout-stall": _timeout_stall,
    # Reconfiguration and topology columns.
    "churn": _churn,
    "geo-drift": _geo_drift,
    "forge-history-vc": _forge_history_vc,
}

#: (protocol family, scenario) combinations that are *expected* to violate
#: safety.  Empty since the baseline recovery subsystem: Zyzzyva's view
#: change repairs divergent speculation from the highest commit
#: certificate (a proof of misbehaviour from the client triggers it), so
#: even the equivocation cell — the paper's Figure 1 reason for calling
#: Zyzzyva unsafe — must now converge every honest replica onto one
#: prefix.  Additions require a written justification in SCENARIOS.md.
EXPECTED_UNSAFE: frozenset = frozenset()

#: (protocol family, scenario) combinations that are *expected* to stall.
#: Empty since the baseline recovery subsystem: SBFT rotates its
#: collector/executor through the shared view-change engine and Zyzzyva's
#: clients trigger one via proofs of misbehaviour, so a faulty primary no
#: longer halts either baseline.  Additions require a written
#: justification in SCENARIOS.md.
EXPECTED_STALLED: frozenset = frozenset()


def protocol_family(protocol: str) -> str:
    """Collapse scheme variants onto the paper's protocol name."""
    key = protocol.lower()
    return "poe" if key.startswith("poe") else key


@dataclass
class ScenarioOutcome:
    """Result of one (protocol, scenario) cell of the matrix."""

    protocol: str
    scenario: str
    n: int
    completed_batches: int
    expected_batches: int
    live: bool
    safe: bool
    expected_live: bool
    expected_safe: bool
    view_changes: int
    audit: AuditReport = field(repr=False, default=None)

    @property
    def as_expected(self) -> bool:
        """Liveness and safety both match the documented expectation.

        A stalled-but-expected-stalled cell still requires *some* absence
        of safety violations unless the cell is expected-unsafe.
        """
        return self.live == self.expected_live and self.safe == self.expected_safe

    def cell(self) -> str:
        safety = "safe" if self.safe else "UNSAFE"
        liveness = "live" if self.live else "stall"
        marker = "" if self.as_expected else " !!"
        return f"{liveness}/{safety}{marker}"


def run_scenario(protocol: str, scenario: str,
                 params: Optional[ScenarioParams] = None) -> ScenarioOutcome:
    """Run one audited (protocol, scenario) cell and classify the outcome."""
    params = params or ScenarioParams()
    try:
        recipe = SCENARIOS[scenario]
    except KeyError:
        raise KeyError(f"unknown scenario {scenario!r}; "
                       f"known: {sorted(SCENARIOS)}") from None
    faults, byzantine, conditions = unpack_recipe(recipe(params))
    config = ClusterConfig(
        protocol=protocol,
        num_replicas=params.num_replicas,
        batch_size=params.batch_size,
        num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=params.total_batches,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        conditions=conditions,
        faults=faults,
        byzantine=byzantine,
        seed=params.seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=params.max_ms)
    report = auditor.report()
    live = all(pool.is_done() for pool in cluster.pools)
    family = protocol_family(protocol)
    view_changes = max(
        (getattr(replica, "view_changes_completed", 0)
         for replica in cluster.replicas if not replica.crashed),
        default=0,
    )
    return ScenarioOutcome(
        protocol=protocol,
        scenario=scenario,
        n=params.num_replicas,
        completed_batches=sum(pool.completed_batches for pool in cluster.pools),
        expected_batches=params.total_batches * config.num_clients,
        live=live,
        safe=report.ok,
        expected_live=(family, scenario) not in EXPECTED_STALLED,
        expected_safe=(family, scenario) not in EXPECTED_UNSAFE,
        view_changes=view_changes,
        audit=report,
    )


def run_matrix(protocols: Sequence[str] = MATRIX_PROTOCOLS,
               scenarios: Sequence[str] = tuple(SCENARIOS),
               params: Optional[ScenarioParams] = None) -> List[ScenarioOutcome]:
    """Sweep protocols × scenarios, each cell audited."""
    outcomes: List[ScenarioOutcome] = []
    for protocol in protocols:
        for scenario in scenarios:
            outcomes.append(run_scenario(protocol, scenario, params))
    return outcomes


def format_matrix(outcomes: Sequence[ScenarioOutcome]) -> str:
    """Render outcomes as a protocols × scenarios text table."""
    protocols = list(dict.fromkeys(outcome.protocol for outcome in outcomes))
    scenarios = list(dict.fromkeys(outcome.scenario for outcome in outcomes))
    by_cell = {(o.protocol, o.scenario): o for o in outcomes}
    width = max(12, max(len(s) for s in scenarios) + 2)
    name_width = max(len(p) for p in protocols) + 2
    lines = ["".join([" " * name_width] + [s.rjust(width) for s in scenarios])]
    for protocol in protocols:
        cells = []
        for scenario in scenarios:
            outcome = by_cell.get((protocol, scenario))
            cells.append((outcome.cell() if outcome else "-").rjust(width))
        lines.append(protocol.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def unexpected_outcomes(outcomes: Sequence[ScenarioOutcome]) -> List[ScenarioOutcome]:
    """The cells whose liveness/safety deviates from the documented expectation."""
    return [outcome for outcome in outcomes if not outcome.as_expected]


# ---------------------------------------------------------------------- soak
#: Per-replica bookkeeping maps sampled by the soak harness.  Everything
#: here must stay bounded by the checkpoint/retention window on a long
#: run — an entry that grows with run length is a leak.
TRACKED_STATE: Tuple[str, ...] = (
    # per-slot consensus state
    "_slots", "_accepted", "_accepted_proposal", "_accepted_preprepare",
    "_certified_log", "_executed_log", "_committed",
    # reply/dedup bookkeeping
    "_replied", "_reply_targets", "_seen_batch_ids", "_batch_sequence",
    "_forwarded_requests", "_completed_ids",
    # recovery / view-change state
    "_vc_votes", "_vc_requests", "_entered_views", "_deferred_messages",
    "_remote_checkpoint_votes", "_pending_state_transfers",
    # protocol-specific journals
    "_spec_history", "_commit_certs", "_proposals", "_rounds",
    "_qc_digests", "_voted_rounds",
)


def node_state_sizes(node) -> Dict[str, int]:
    """Sizes of every tracked bookkeeping map *node* actually has."""
    sizes: Dict[str, int] = {}
    for name in TRACKED_STATE:
        value = getattr(node, name, None)
        if value is not None:
            sizes[name] = len(value)
    return sizes


@dataclass
class SoakSample:
    """One point-in-time snapshot of per-node bookkeeping sizes."""

    now_ms: float
    completed_batches: int
    sizes: Dict[str, Dict[str, int]]  # node id -> map name -> size

    def max_size(self, name: str) -> int:
        return max((sizes.get(name, 0) for sizes in self.sizes.values()),
                   default=0)


@dataclass
class SoakReport:
    """Outcome of a bounded-horizon soak run."""

    protocol: str
    scenario: str
    steps: int
    completed_batches: int
    live: bool
    safe: bool
    samples: List[SoakSample]
    audit: AuditReport = field(repr=False, default=None)

    def tracked_names(self) -> List[str]:
        names = set()
        for sample in self.samples:
            for sizes in sample.sizes.values():
                names.update(sizes)
        return sorted(names)


def soak_params(steps: int, seed: int = 11) -> ScenarioParams:
    """Deployment knobs for soak runs.

    The client timeout is shortened so the run spans several reply
    retention windows (``request_timeout_ms * REPLY_RETENTION_TIMEOUTS``)
    of virtual time — a soak that finishes inside one window could not
    observe the reply-state GC at all.
    """
    return ScenarioParams(total_batches=steps, request_timeout_ms=25.0,
                          max_ms=600_000.0, seed=seed)


def run_soak(protocol: str, scenario: str = "no-fault", steps: int = 2000,
             params: Optional[ScenarioParams] = None,
             num_samples: int = 5) -> SoakReport:
    """Run *steps* batches, sampling bookkeeping sizes along the way.

    The samples let callers assert that every tracked map is bounded by
    the checkpoint/retention window rather than the number of executed
    batches: sizes late in the run must not exceed early-run sizes by
    more than a constant.
    """
    params = params or soak_params(steps)
    params = dataclasses.replace(params, total_batches=steps)
    faults, byzantine, conditions = unpack_recipe(SCENARIOS[scenario](params))
    config = ClusterConfig(
        protocol=protocol,
        num_replicas=params.num_replicas,
        batch_size=params.batch_size,
        num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=steps,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        conditions=conditions,
        faults=faults,
        byzantine=byzantine,
        seed=params.seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    marks = [steps * (i + 1) // num_samples for i in range(num_samples)]
    samples: List[SoakSample] = []

    def snapshot() -> None:
        samples.append(SoakSample(
            now_ms=cluster.simulator.now,
            completed_batches=sum(p.completed_batches for p in cluster.pools),
            sizes={node.node_id: node_state_sizes(node)
                   for node in list(cluster.replicas) + list(cluster.pools)},
        ))

    deadline = params.max_ms
    while cluster.simulator.now < deadline:
        if all(pool.is_done() for pool in cluster.pools):
            break
        before = cluster.simulator.processed_events
        cluster.run_for(25.0)
        completed = sum(pool.completed_batches for pool in cluster.pools)
        while marks and completed >= marks[0]:
            marks.pop(0)
            snapshot()
        if (cluster.simulator.processed_events == before
                and all(pool.is_done() for pool in cluster.pools)):
            break
    snapshot()
    report = auditor.report()
    return SoakReport(
        protocol=protocol,
        scenario=scenario,
        steps=steps,
        completed_batches=sum(p.completed_batches for p in cluster.pools),
        live=all(pool.is_done() for pool in cluster.pools),
        safe=report.ok,
        samples=samples,
        audit=report,
    )
