"""Adversarial scenario matrix: protocols × fault scenarios, audited.

The ROADMAP's north star asks for "as many scenarios as you can
imagine"; this module is the harness that makes those scenarios cheap to
add and impossible to run without a safety check.  A *scenario* is a
named recipe producing a fault schedule and/or a Byzantine behaviour for
a deployment; :func:`run_scenario` wires it into a cluster, attaches the
:class:`~repro.fabric.audit.SafetyAuditor`, runs to completion (or a
virtual-time bound, for combinations that are expected to stall) and
returns a structured outcome.

:func:`run_matrix` sweeps protocols × scenarios — the default protocol
list covers the paper's five protocols with PoE in both of its
authentication schemes (MACs and threshold signatures; the baselines are
tied to their native scheme) — and :func:`format_matrix` renders the
liveness/safety table.

Outcomes are judged against *expectations*: every combination must be
safe and live except the documented ones.  Since the baseline recovery
subsystem landed (SBFT and Zyzzyva view changes over
:class:`~repro.protocols.recovery.ViewChangeRecovery`, including
Zyzzyva's client proof-of-misbehaviour path), there are none: the cells
that used to be expected-stall (``sbft``/``zyzzyva`` × faulty primary)
and expected-unsafe (``zyzzyva × equivocate``) now recover and must pass
the auditor like every other cell.  Any deviation anywhere in the matrix
is a regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.audit import AuditReport, SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.byzantine import ByzantineSpec
from repro.net.faults import FaultSchedule

#: Protocol keys swept by default: the paper's five protocols, with PoE in
#: both authentication schemes (ingredient I3).  PBFT is MAC-native; SBFT
#: and HotStuff are threshold-native; Zyzzyva is MAC-native.
MATRIX_PROTOCOLS: Tuple[str, ...] = (
    "poe-mac", "poe-ts", "pbft", "sbft", "zyzzyva", "hotstuff",
)


@dataclass
class ScenarioParams:
    """Deployment knobs shared by every scenario run."""

    num_replicas: int = 4
    batch_size: int = 10
    total_batches: int = 20
    client_outstanding: int = 4
    request_timeout_ms: float = 100.0
    checkpoint_interval: int = 5
    max_ms: float = 60_000.0
    seed: int = 11

    @property
    def f(self) -> int:
        return (self.num_replicas - 1) // 3


#: A scenario recipe returns (fault schedule, byzantine spec); either may
#: be ``None``.
ScenarioRecipe = Callable[[ScenarioParams],
                          Tuple[Optional[FaultSchedule], Optional[ByzantineSpec]]]


def _no_fault(params: ScenarioParams):
    return None, None


def _backup_crash(params: ScenarioParams):
    # The paper's standard single-backup-failure configuration.
    victim = replica_id(params.num_replicas - 1)
    return FaultSchedule.single_backup_crash(victim, at_ms=0.0), None


def _primary_crash(params: ScenarioParams):
    # Crash the primary with most of the workload still outstanding, so
    # recovery requires a view change (paper, Figure 10).
    return FaultSchedule.primary_crash(replica_id(0), at_ms=2.0), None


def _dark_replicas(params: ScenarioParams):
    # A malicious primary keeps f replicas in the dark (paper, Example 3
    # case 2); they must catch up through checkpoint state transfer.
    dark = [replica_id(i) for i in
            range(params.num_replicas - params.f, params.num_replicas)]
    return FaultSchedule().add_dark_replicas(replica_id(0), dark), None


def _equivocate(params: ScenarioParams):
    # The primary proposes conflicting batches to disjoint halves and
    # fabricates the dark half's votes under forged identities.
    return None, ByzantineSpec(behavior="equivocate-spoof", replica_index=0)


def _partition_heal(params: ScenarioParams):
    # Sever f replicas from the majority for a window, then heal; the
    # majority retains an nf quorum throughout.
    minority = [replica_id(i) for i in
                range(params.num_replicas - params.f, params.num_replicas)]
    majority = [replica_id(i) for i in
                range(params.num_replicas - params.f)]
    faults = FaultSchedule().add_partition(majority, minority,
                                           at_ms=50.0, until_ms=600.0)
    return faults, None


def _forge_history(params: ScenarioParams):
    # Replica-level: a backup forges view-change histories below the
    # durable anchor (and, for Zyzzyva, fabricates the POM that starts the
    # view change).  The last replica is partitioned away for an initial
    # window, so when the forged view change fires right after the heal a
    # lagging honest replica exists that has not yet heard enough
    # checkpoint votes to self-heal — the exact shape the forged
    # sub-anchor entries prey on.  The window is bounded (unlike a
    # permanent double-dark link, which would silence half of HotStuff's
    # leadership line and push every protocol outside the fault model the
    # matrix is designed around).
    lagging = [replica_id(params.num_replicas - 1)]
    rest = [replica_id(i) for i in range(params.num_replicas - 1)]
    window_ms = params.request_timeout_ms * 1.5
    faults = FaultSchedule().add_partition(rest, lagging,
                                           at_ms=0.0, until_ms=window_ms)
    return faults, ByzantineSpec(
        behavior="forge-history", replica_index=2,
        options={"pom_at_ms": window_ms},
    )


def _lying_checkpoint(params: ScenarioParams):
    # Replica-level: an up-to-date backup poisons the state transfers it
    # serves and pushes fabricated future checkpoints at every peer; the
    # dark replica guarantees real transfer traffic exists to poison.
    dark = [replica_id(params.num_replicas - 1)]
    faults = FaultSchedule().add_dark_replicas(replica_id(0), dark)
    return faults, ByzantineSpec(behavior="lying-checkpoint", replica_index=1)


def _wrong_exec(params: ScenarioParams):
    # Replica-level: one backup executes a fabricated batch at one slot —
    # same height as the quorum, divergent state — and must detect the
    # stable checkpoint contradicting its own digest and resync.
    return None, ByzantineSpec(behavior="wrong-exec", replica_index=2)


SCENARIOS: Dict[str, ScenarioRecipe] = {
    "no-fault": _no_fault,
    "backup-crash": _backup_crash,
    "primary-crash": _primary_crash,
    "dark-replicas": _dark_replicas,
    "equivocate": _equivocate,
    "partition-heal": _partition_heal,
    "forge-history": _forge_history,
    "lying-checkpoint": _lying_checkpoint,
    "wrong-exec": _wrong_exec,
}

#: (protocol family, scenario) combinations that are *expected* to violate
#: safety.  Empty since the baseline recovery subsystem: Zyzzyva's view
#: change repairs divergent speculation from the highest commit
#: certificate (a proof of misbehaviour from the client triggers it), so
#: even the equivocation cell — the paper's Figure 1 reason for calling
#: Zyzzyva unsafe — must now converge every honest replica onto one
#: prefix.  Additions require a written justification in SCENARIOS.md.
EXPECTED_UNSAFE: frozenset = frozenset()

#: (protocol family, scenario) combinations that are *expected* to stall.
#: Empty since the baseline recovery subsystem: SBFT rotates its
#: collector/executor through the shared view-change engine and Zyzzyva's
#: clients trigger one via proofs of misbehaviour, so a faulty primary no
#: longer halts either baseline.  Additions require a written
#: justification in SCENARIOS.md.
EXPECTED_STALLED: frozenset = frozenset()


def protocol_family(protocol: str) -> str:
    """Collapse scheme variants onto the paper's protocol name."""
    key = protocol.lower()
    return "poe" if key.startswith("poe") else key


@dataclass
class ScenarioOutcome:
    """Result of one (protocol, scenario) cell of the matrix."""

    protocol: str
    scenario: str
    n: int
    completed_batches: int
    expected_batches: int
    live: bool
    safe: bool
    expected_live: bool
    expected_safe: bool
    view_changes: int
    audit: AuditReport = field(repr=False, default=None)

    @property
    def as_expected(self) -> bool:
        """Liveness and safety both match the documented expectation.

        A stalled-but-expected-stalled cell still requires *some* absence
        of safety violations unless the cell is expected-unsafe.
        """
        return self.live == self.expected_live and self.safe == self.expected_safe

    def cell(self) -> str:
        safety = "safe" if self.safe else "UNSAFE"
        liveness = "live" if self.live else "stall"
        marker = "" if self.as_expected else " !!"
        return f"{liveness}/{safety}{marker}"


def run_scenario(protocol: str, scenario: str,
                 params: Optional[ScenarioParams] = None) -> ScenarioOutcome:
    """Run one audited (protocol, scenario) cell and classify the outcome."""
    params = params or ScenarioParams()
    try:
        recipe = SCENARIOS[scenario]
    except KeyError:
        raise KeyError(f"unknown scenario {scenario!r}; "
                       f"known: {sorted(SCENARIOS)}") from None
    faults, byzantine = recipe(params)
    config = ClusterConfig(
        protocol=protocol,
        num_replicas=params.num_replicas,
        batch_size=params.batch_size,
        num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=params.total_batches,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        faults=faults,
        byzantine=byzantine,
        seed=params.seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=params.max_ms)
    report = auditor.report()
    live = all(pool.is_done() for pool in cluster.pools)
    family = protocol_family(protocol)
    view_changes = max(
        (getattr(replica, "view_changes_completed", 0)
         for replica in cluster.replicas if not replica.crashed),
        default=0,
    )
    return ScenarioOutcome(
        protocol=protocol,
        scenario=scenario,
        n=params.num_replicas,
        completed_batches=sum(pool.completed_batches for pool in cluster.pools),
        expected_batches=params.total_batches * config.num_clients,
        live=live,
        safe=report.ok,
        expected_live=(family, scenario) not in EXPECTED_STALLED,
        expected_safe=(family, scenario) not in EXPECTED_UNSAFE,
        view_changes=view_changes,
        audit=report,
    )


def run_matrix(protocols: Sequence[str] = MATRIX_PROTOCOLS,
               scenarios: Sequence[str] = tuple(SCENARIOS),
               params: Optional[ScenarioParams] = None) -> List[ScenarioOutcome]:
    """Sweep protocols × scenarios, each cell audited."""
    outcomes: List[ScenarioOutcome] = []
    for protocol in protocols:
        for scenario in scenarios:
            outcomes.append(run_scenario(protocol, scenario, params))
    return outcomes


def format_matrix(outcomes: Sequence[ScenarioOutcome]) -> str:
    """Render outcomes as a protocols × scenarios text table."""
    protocols = list(dict.fromkeys(outcome.protocol for outcome in outcomes))
    scenarios = list(dict.fromkeys(outcome.scenario for outcome in outcomes))
    by_cell = {(o.protocol, o.scenario): o for o in outcomes}
    width = max(12, max(len(s) for s in scenarios) + 2)
    name_width = max(len(p) for p in protocols) + 2
    lines = ["".join([" " * name_width] + [s.rjust(width) for s in scenarios])]
    for protocol in protocols:
        cells = []
        for scenario in scenarios:
            outcome = by_cell.get((protocol, scenario))
            cells.append((outcome.cell() if outcome else "-").rjust(width))
        lines.append(protocol.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def unexpected_outcomes(outcomes: Sequence[ScenarioOutcome]) -> List[ScenarioOutcome]:
    """The cells whose liveness/safety deviates from the documented expectation."""
    return [outcome for outcome in outcomes if not outcome.as_expected]
