"""Seeded-bug demo: the model checker rediscovers a fixed recovery bug.

PR 3 fixed a stale-slot eviction bug in :meth:`PoeReplica.adopt_new_view`:
a batch parked in ``_committed`` at its view-0 slot survives the view
change, and when the new primary re-proposes the same batch at a lower
slot, ``try_execute`` later drains the stale entry too — the batch
executes at two slots.  This module re-introduces the bug under a
monkeypatch (the real code keeps the fix) and drives the model checker's
randomized deferral hunt to a minimal, replayable counterexample.

The bug is *structurally unreachable* under the checker's ``global`` and
``owner`` timer gates: any replica whose view-change timer fires under
those gates has already drained its inbound deliveries, and with three
live replicas the second backup to time out always completes the gapped
slot before joining the view change.  The demo therefore runs with
``timer_gate="eager"`` — timers race deliveries freely — where
exhaustive exploration is intractable and the hunt's sticky deferral
sets do the work.  The schedule that exhibits the bug defers a handful
of deliveries to the next primary (replica 1) so that it enters view 1
clean of the parked batch and re-proposes it at slot 1.

``REVERT_DEMO_WALK_SEED`` pins the violating walk: walk *i* of a hunt
draws from ``Random(1_000_003 * (walk_seed + i))``, so the walk that
found the violation replays alone with ``walks=1``.
"""
from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.replica import PoeReplica, SchemeKind
from repro.core.view_change import longest_consecutive_prefix
from repro.fabric.audit import AuditViolation
from repro.fabric.modelcheck import (
    Counterexample,
    ModelCheckConfig,
    counterexample_to_json,
    hunt,
    replay_trace,
    shrink_trace,
)

#: The hunt cell: eager timer gate, backup 3 down from the start so the
#: three live replicas are exactly ``nf`` and every certification needs
#: all of them.  Two outstanding batches give the new primary something
#: to re-propose at a shifted slot.
REVERT_DEMO_CONFIG = ModelCheckConfig(
    protocol="poe-mac", num_batches=2, client_outstanding=2,
    crash_replica=3, crash_at_start=True, checkpoint_interval=10,
    view_bound=1, timer_gate="eager")

#: ``walk_seed`` of the known violating walk (found once with a 20k-walk
#: hunt at the same ``defer_p``; CI replays just this walk).
REVERT_DEMO_WALK_SEED = 518
REVERT_DEMO_DEFER_P = 0.15
REVERT_DEMO_MAX_STEPS = 300


def buggy_adopt_new_view(self, proposal, requests, now_ms):
    """Pre-fix ``PoeReplica.adopt_new_view``: no stale-slot eviction.

    Identical to the current implementation except the loop that evicts
    ``_committed`` slots beyond ``kmax`` (and slots re-assigned by the
    adopted prefix) is missing, so a batch parked at its old slot can
    later execute twice.
    """
    prefix, kmax = longest_consecutive_prefix(
        requests, f=self.config.f,
        trust_certificates=self.scheme is SchemeKind.THRESHOLD)
    rollback_target = kmax
    for sequence in sorted(prefix):
        if sequence > self.last_executed_sequence:
            break
        mine = self.executor.executed(sequence)
        if mine is not None and (mine.batch.digest()
                                 != prefix[sequence].batch.digest()):
            rollback_target = max(sequence - 1,
                                  self.checkpoints.stable_sequence)
            break
    self.rollback_speculation(min(kmax, rollback_target), now_ms)
    # BUG (reverted fix): stale _committed slots are NOT evicted here.
    for sequence in sorted(prefix):
        if sequence <= self.last_executed_sequence:
            continue
        entry = prefix[sequence]
        self._certified_log[sequence] = entry
        self.commit_slot(sequence=sequence, view=entry.view, batch=entry.batch,
                         proof=entry.certificate, now_ms=now_ms,
                         speculative=False)
    return kmax


@contextlib.contextmanager
def reverted_stale_slot_fix():
    """Swap in the pre-fix ``adopt_new_view`` for the duration."""
    original = PoeReplica.adopt_new_view
    PoeReplica.adopt_new_view = buggy_adopt_new_view
    try:
        yield
    finally:
        PoeReplica.adopt_new_view = original


@dataclass
class RevertDemoResult:
    """Everything the demo established, ready for printing or asserting."""

    config: ModelCheckConfig
    walks: int = 0
    violating_walk: Optional[int] = None
    counterexample: Optional[Counterexample] = None
    #: Delta-debugged local minimum of the found trace.
    minimal_trace: List[Tuple[int, Tuple]] = field(default_factory=list)
    #: Violations observed when replaying the minimal trace.
    replay_violations: List[AuditViolation] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    def minimal_json(self) -> Dict[str, object]:
        """The minimal trace as a replayable counterexample document."""
        assert self.counterexample is not None
        minimal = Counterexample(
            kind=self.counterexample.kind, config=self.config,
            trace=self.minimal_trace, violations=self.replay_violations)
        return counterexample_to_json(minimal)


def run_revert_demo(walks: int = 1,
                    walk_seed: int = REVERT_DEMO_WALK_SEED,
                    shrink: bool = True) -> RevertDemoResult:
    """Hunt for the reverted bug and shrink the trace it finds.

    The defaults replay exactly the pinned violating walk; pass a larger
    ``walks`` with a different ``walk_seed`` to search afresh.  The
    shrunk trace is re-validated with :func:`replay_trace` (under the
    monkeypatch, so the recorded violations reproduce).
    """
    result = RevertDemoResult(config=REVERT_DEMO_CONFIG)
    with reverted_stale_slot_fix():
        outcome = hunt(REVERT_DEMO_CONFIG, walks=walks, walk_seed=walk_seed,
                       defer_p=REVERT_DEMO_DEFER_P, ordered=True,
                       max_steps=REVERT_DEMO_MAX_STEPS)
        result.walks = outcome.walks
        result.violating_walk = outcome.violating_walk
        result.counterexample = outcome.counterexample
        if outcome.counterexample is None:
            return result
        trace = outcome.counterexample.trace
        if shrink:
            trace = shrink_trace(REVERT_DEMO_CONFIG, trace)
        result.minimal_trace = list(trace)
        entries = [{"seq": seq, "label": None} for seq, _label in trace]
        _cluster, violations = replay_trace(REVERT_DEMO_CONFIG, entries)
        result.replay_violations = violations
    return result
