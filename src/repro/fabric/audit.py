"""Cross-replica safety auditor for cluster runs.

The figure benchmarks measure throughput; nothing in them would notice if
two replicas silently executed *different* batches at the same consensus
slot.  The auditor closes that gap: attach it to a cluster before the run
starts, and after the run it checks the safety invariants the paper
claims for PoE (and that every baseline protocol is expected to uphold
within its own fault model):

* **Agreement** — no two honest, live replicas executed divergent batches
  at the same consensus slot, and no batch was executed at two different
  slots (final state, i.e. after any view-change rollback).
* **Inform quorum** — for every batch a client pool reported complete,
  the network really delivered the pool a quorum of *matching* replies
  from distinct transport-level senders (the auditor counts senders
  itself, so a client-side vote-counting bug cannot hide).
* **Checkpoint-bounded rollback** — no view-change rollback ever crossed
  a stable checkpoint (``rollback_log`` on the replicas).
* **Ledger integrity** — every honest replica's hash chain verifies and
  its executed prefix is consistent with its ledger head.

Replicas that are configured Byzantine or crashed at the end of the run
are excluded from cross-replica checks: the invariants only bind honest
participants.  :meth:`SafetyAuditor.check` raises on any violation;
:meth:`SafetyAuditor.report` returns the findings for tabular use by the
scenario matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.protocols.checkpoint import CheckpointMessage
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.zyzzyva import ZyzzyvaClientPool, ZyzzyvaLocalCommit


class SafetyViolation(AssertionError):
    """Raised by :meth:`SafetyAuditor.check` when an invariant fails."""


@dataclass(frozen=True)
class AuditViolation:
    """One observed violation of a safety invariant."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass
class AuditReport:
    """Everything one audit pass established."""

    violations: List[AuditViolation] = field(default_factory=list)
    replicas_audited: int = 0
    slots_checked: int = 0
    completions_checked: int = 0
    rollbacks_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (f"audited {self.replicas_audited} replicas, "
                f"{self.slots_checked} slots, "
                f"{self.completions_checked} completions, "
                f"{self.rollbacks_checked} rollbacks")
        if self.ok:
            return f"SAFE ({head})"
        lines = [f"UNSAFE ({head}):"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


class SafetyAuditor:
    """Audits one cluster run; attach before ``cluster.start()``.

    The auditor records every client-bound reply the network delivers
    (via a message observer) so the inform-quorum check is grounded in
    what actually crossed the wire, not in client bookkeeping.
    """

    def __init__(self, cluster, observe: bool = True) -> None:
        self.cluster = cluster
        #: (pool_id, batch_id) -> matching_key -> distinct transport senders.
        self._reply_votes: Dict[Tuple[str, str], Dict[tuple, Set[str]]] = {}
        #: (pool_id, batch_id) -> distinct senders of local-commit acks.
        self._commit_acks: Dict[Tuple[str, str], Set[str]] = {}
        #: (sequence, state_digest) -> distinct transport-level senders of
        #: checkpoint votes, counted from the wire: the ground truth any
        #: installed state transfer must be vouched by.
        self._checkpoint_votes: Dict[Tuple[int, bytes], Set[str]] = {}
        self._pool_ids = {pool.node_id for pool in cluster.pools}
        self._observing = observe
        if observe:
            cluster.network.add_observer(self._observe)

    @classmethod
    def attach(cls, cluster) -> "SafetyAuditor":
        """Create an auditor observing *cluster* (call before ``start``)."""
        return cls(cluster)

    # ----------------------------------------------------------- observation
    def _observe(self, sender: str, receiver: str, message, time_ms: float) -> None:
        if receiver not in self._pool_ids:
            if isinstance(message, CheckpointMessage):
                self._checkpoint_votes.setdefault(
                    (message.sequence, message.state_digest), set()).add(sender)
            return
        if isinstance(message, ClientReplyMessage):
            votes = self._reply_votes.setdefault((receiver, message.batch_id), {})
            votes.setdefault(message.matching_key(), set()).add(sender)
        elif isinstance(message, ZyzzyvaLocalCommit):
            self._commit_acks.setdefault(
                (receiver, message.batch_id), set()).add(sender)

    # ----------------------------------------------------------------- audit
    def _honest_live_replicas(self) -> List[object]:
        excluded = set(getattr(self.cluster, "byzantine_ids", ()))
        return [replica for replica in self.cluster.replicas
                if not replica.crashed and replica.node_id not in excluded]

    def _slot_key(self, block) -> int:
        # HotStuff assigns execution sequence numbers locally, so the
        # consensus-visible slot is the committed round (stored as the
        # block's view); every other protocol agrees on sequence numbers.
        if issubclass(self.cluster.spec.replica_cls, HotStuffReplica):
            return block.view
        return block.sequence

    def report(self) -> AuditReport:
        """Run every invariant check and return the findings."""
        report = AuditReport()
        honest = self._honest_live_replicas()
        report.replicas_audited = len(honest)
        self._check_agreement(honest, report)
        self._check_ledgers(honest, report)
        self._check_rollbacks(honest, report)
        if self._observing:
            self._check_inform_quorum(report)
            self._check_state_transfers(honest, report)
        return report

    def check(self) -> AuditReport:
        """Like :meth:`report`, but raise :class:`SafetyViolation` on failure."""
        report = self.report()
        if not report.ok:
            raise SafetyViolation(report.summary())
        return report

    # -------------------------------------------------------------- invariants
    def _check_agreement(self, honest: List[object], report: AuditReport) -> None:
        """No divergent batches per slot; no batch at two different slots."""
        slots: Dict[int, Dict[bytes, List[str]]] = {}
        batch_slots: Dict[str, Dict[int, List[str]]] = {}
        for replica in honest:
            for block in replica.blockchain.blocks():
                if block.payload == "checkpoint-sync":
                    continue
                slot = self._slot_key(block)
                slots.setdefault(slot, {}).setdefault(
                    block.batch_digest, []).append(replica.node_id)
                if block.payload:
                    batch_slots.setdefault(str(block.payload), {}).setdefault(
                        slot, []).append(replica.node_id)
        report.slots_checked = len(slots)
        for slot in sorted(slots):
            by_digest = slots[slot]
            if len(by_digest) > 1:
                placement = "; ".join(
                    f"{digest.hex()[:12]} on {sorted(replicas)}"
                    for digest, replicas in sorted(by_digest.items())
                )
                report.violations.append(AuditViolation(
                    kind="divergent-prefix",
                    detail=f"slot {slot} executed divergently: {placement}",
                ))
        for batch_id, placements in sorted(batch_slots.items()):
            if len(placements) > 1:
                where = "; ".join(f"slot {slot} on {sorted(replicas)}"
                                  for slot, replicas in sorted(placements.items()))
                report.violations.append(AuditViolation(
                    kind="duplicate-execution",
                    detail=f"batch {batch_id} executed at multiple slots: {where}",
                ))

    def _check_ledgers(self, honest: List[object], report: AuditReport) -> None:
        for replica in honest:
            if not replica.blockchain.verify_chain():
                report.violations.append(AuditViolation(
                    kind="broken-chain",
                    detail=f"{replica.node_id}: ledger hash chain does not verify",
                ))
            head = replica.blockchain.head.sequence
            if head != replica.last_executed_sequence:
                report.violations.append(AuditViolation(
                    kind="ledger-state-skew",
                    detail=(f"{replica.node_id}: ledger head {head} != "
                            f"executed prefix {replica.last_executed_sequence}"),
                ))

    def _check_rollbacks(self, honest: List[object], report: AuditReport) -> None:
        for replica in honest:
            for target, stable in getattr(replica, "rollback_log", ()):
                report.rollbacks_checked += 1
                if target < stable:
                    report.violations.append(AuditViolation(
                        kind="rollback-past-checkpoint",
                        detail=(f"{replica.node_id}: rolled back to {target}, "
                                f"below stable checkpoint {stable}"),
                    ))

    def _check_state_transfers(self, honest: List[object],
                               report: AuditReport) -> None:
        """Every installed state transfer must be vouched by f+1 voters.

        A checkpoint-sync block records the state digest a replica adopted
        without executing the underlying slots.  The digest must have been
        vouched on the wire by at least ``f + 1`` distinct checkpoint
        senders — one of them necessarily honest — or the replica
        installed state the system never reached (a lying checkpointer's
        fabricated transfer).
        """
        f = self.cluster.node_config.f
        for replica in honest:
            for block in replica.blockchain.blocks():
                if block.payload != "checkpoint-sync":
                    continue
                voters = self._checkpoint_votes.get(
                    (block.sequence, block.batch_digest), set())
                if len(voters) < f + 1:
                    report.violations.append(AuditViolation(
                        kind="unvouched-state-transfer",
                        detail=(f"{replica.node_id}: installed checkpoint "
                                f"{block.sequence} whose state digest only "
                                f"{len(voters)} checkpoint senders vouched "
                                f"for (need f+1 = {f + 1})"),
                    ))

    def _check_inform_quorum(self, report: AuditReport) -> None:
        config = self.cluster.node_config
        for pool in self.cluster.pools:
            quorum = pool.completion_quorum
            fallback_quorum = None
            if isinstance(pool, ZyzzyvaClientPool):
                # Zyzzyva's slow path completes with 2f+1 matching replies
                # plus 2f+1 local-commit acknowledgements.
                fallback_quorum = 2 * config.f + 1
            for record in pool.completions:
                report.completions_checked += 1
                votes = self._reply_votes.get((pool.node_id, record.batch_id), {})
                best = max((len(senders) for senders in votes.values()), default=0)
                if best >= quorum:
                    continue
                acks = self._commit_acks.get((pool.node_id, record.batch_id), set())
                if (fallback_quorum is not None and best >= fallback_quorum
                        and len(acks) >= fallback_quorum):
                    continue
                report.violations.append(AuditViolation(
                    kind="inform-quorum",
                    detail=(f"{pool.node_id}: batch {record.batch_id} completed "
                            f"with only {best} matching replies from distinct "
                            f"senders (quorum {quorum})"),
                ))


def audit_cluster(cluster) -> AuditReport:
    """One-shot audit of an already-finished run.

    Without an observer attached before the run the inform-quorum check
    has no reply trace to ground itself in, so this convenience wrapper
    only runs the replica-state invariants.
    """
    return SafetyAuditor(cluster, observe=False).report()
