"""Cross-replica safety auditor for cluster runs.

The figure benchmarks measure throughput; nothing in them would notice if
two replicas silently executed *different* batches at the same consensus
slot.  The auditor closes that gap: attach it to a cluster before the run
starts, and after the run it checks the safety invariants the paper
claims for PoE (and that every baseline protocol is expected to uphold
within its own fault model):

* **Agreement** — no two honest, live replicas executed divergent batches
  at the same consensus slot, and no batch was executed at two different
  slots (final state, i.e. after any view-change rollback).
* **Inform quorum** — for every batch a client pool reported complete,
  the network really delivered the pool a quorum of *matching* replies
  from distinct transport-level senders (the auditor counts senders
  itself, so a client-side vote-counting bug cannot hide).
* **Checkpoint-bounded rollback** — no view-change rollback ever crossed
  a stable checkpoint (``rollback_log`` on the replicas).
* **Ledger integrity** — every honest replica's hash chain verifies and
  its executed prefix is consistent with its ledger head.

Replicas that are configured Byzantine or crashed at the end of the run
are excluded from cross-replica checks: the invariants only bind honest
participants.  :meth:`SafetyAuditor.check` raises on any violation;
:meth:`SafetyAuditor.report` returns the findings for tabular use by the
scenario matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.protocols.checkpoint import CheckpointMessage
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.zyzzyva import ZyzzyvaClientPool, ZyzzyvaLocalCommit

# Bound at import time on purpose: the auditor's certificate re-validation
# must stay correct even if the replicas' runtime validator is broken or
# monkeypatched away (the revert-demo failure mode).
from repro.workload.xshard import (
    DECIDE_PHASES as _DECIDE_PHASES,
    control_batch_id as _control_batch_id,
    decide_record_valid as _decide_record_valid,
    make_control_batch as _make_control_batch,
)

# Same import-time binding for the epoch machinery: the auditor re-runs
# every admissibility and transition rule itself, so a deployment whose
# replicas activated an inadmissible epoch (because their runtime
# ``reconfig_record_valid`` was reverted or patched away) is still flagged.
from repro.protocols.epoch import (
    validate_epoch_log as _validate_epoch_log,
)


class SafetyViolation(AssertionError):
    """Raised by :meth:`SafetyAuditor.check` when an invariant fails."""


@dataclass(frozen=True)
class AuditViolation:
    """One observed violation of a safety invariant."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass
class AuditReport:
    """Everything one audit pass established."""

    violations: List[AuditViolation] = field(default_factory=list)
    replicas_audited: int = 0
    slots_checked: int = 0
    completions_checked: int = 0
    rollbacks_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (f"audited {self.replicas_audited} replicas, "
                f"{self.slots_checked} slots, "
                f"{self.completions_checked} completions, "
                f"{self.rollbacks_checked} rollbacks")
        if self.ok:
            return f"SAFE ({head})"
        lines = [f"UNSAFE ({head}):"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


# --------------------------------------------------------- pure invariants
#
# The three replica-state invariants are pure functions over a list of
# honest replicas: no observer trace, no cluster object, no mutation.
# The post-run auditor calls them once at the end of a run; the bounded
# model checker (fabric/modelcheck.py) calls the same functions at every
# reachable state, so a divergence the checker flags is by construction
# the same finding the auditor would report.

def default_slot_key(block) -> int:
    """Consensus-visible slot of a ledger block (HotStuff uses rounds)."""
    return block.sequence


def hotstuff_slot_key(block) -> int:
    """HotStuff assigns execution sequence numbers locally; the
    consensus-visible slot is the committed round (stored as the block's
    view)."""
    return block.view


def check_agreement(honest: List[object],
                    slot_key: Callable[[object], int] = default_slot_key,
                    ) -> Tuple[List[AuditViolation], int]:
    """No divergent batches per slot; no batch at two different slots.

    Returns ``(violations, slots_checked)``.
    """
    violations: List[AuditViolation] = []
    slots: Dict[int, Dict[bytes, List[str]]] = {}
    batch_slots: Dict[str, Dict[int, List[str]]] = {}
    for replica in honest:
        for block in replica.blockchain.blocks():
            if block.payload == "checkpoint-sync":
                continue
            slot = slot_key(block)
            slots.setdefault(slot, {}).setdefault(
                block.batch_digest, []).append(replica.node_id)
            if block.payload:
                batch_slots.setdefault(str(block.payload), {}).setdefault(
                    slot, []).append(replica.node_id)
    for slot in sorted(slots):
        by_digest = slots[slot]
        if len(by_digest) > 1:
            placement = "; ".join(
                f"{digest.hex()[:12]} on {sorted(replicas)}"
                for digest, replicas in sorted(by_digest.items())
            )
            violations.append(AuditViolation(
                kind="divergent-prefix",
                detail=f"slot {slot} executed divergently: {placement}",
            ))
    for batch_id, placements in sorted(batch_slots.items()):
        if len(placements) > 1:
            where = "; ".join(f"slot {slot} on {sorted(replicas)}"
                              for slot, replicas in sorted(placements.items()))
            violations.append(AuditViolation(
                kind="duplicate-execution",
                detail=f"batch {batch_id} executed at multiple slots: {where}",
            ))
    return violations, len(slots)


def check_ledgers(honest: List[object]) -> List[AuditViolation]:
    """Every honest chain verifies and its head matches the executed prefix."""
    violations: List[AuditViolation] = []
    for replica in honest:
        if not replica.blockchain.verify_chain():
            violations.append(AuditViolation(
                kind="broken-chain",
                detail=f"{replica.node_id}: ledger hash chain does not verify",
            ))
        head = replica.blockchain.head.sequence
        if head != replica.last_executed_sequence:
            violations.append(AuditViolation(
                kind="ledger-state-skew",
                detail=(f"{replica.node_id}: ledger head {head} != "
                        f"executed prefix {replica.last_executed_sequence}"),
            ))
    return violations


def check_rollbacks(honest: List[object]) -> Tuple[List[AuditViolation], int]:
    """No view-change rollback ever crossed a stable checkpoint.

    Returns ``(violations, rollbacks_checked)``.
    """
    violations: List[AuditViolation] = []
    checked = 0
    for replica in honest:
        for target, stable in getattr(replica, "rollback_log", ()):
            checked += 1
            if target < stable:
                violations.append(AuditViolation(
                    kind="rollback-past-checkpoint",
                    detail=(f"{replica.node_id}: rolled back to {target}, "
                            f"below stable checkpoint {stable}"),
                ))
    return violations, checked


def check_replica_state(honest: List[object],
                        slot_key: Callable[[object], int] = default_slot_key,
                        ) -> List[AuditViolation]:
    """All replica-state invariants in one pass (the model checker's view)."""
    violations, _ = check_agreement(honest, slot_key)
    violations.extend(check_ledgers(honest))
    rollback_violations, _ = check_rollbacks(honest)
    violations.extend(rollback_violations)
    return violations


class WireRecord:
    """Picklable wire observations backing :class:`SafetyAuditor`.

    The recording logic lives here — not on the auditor — so a worker
    process can attach a bare recorder to its shard network, ship it back
    as part of the run artifacts, and have the parent construct an
    auditor *around* the recorded dicts (``SafetyAuditor(..., wire=...)``)
    that audits exactly as if it had observed the run live.
    """

    def __init__(self, pool_ids: Iterable[str] = ()) -> None:
        self.pool_ids: Set[str] = set(pool_ids)
        #: (pool_id, batch_id) -> matching_key -> sender -> first delivery
        #: time.  Timestamped so the inform-quorum check can count the
        #: replies the pool had *when it completed* — late replies that
        #: keep trickling in after completion must not retroactively
        #: justify a completion the quorum rule did not cover.
        self.reply_votes: Dict[Tuple[str, str], Dict[tuple, Dict[str, float]]] = {}
        #: (pool_id, batch_id) -> distinct senders of local-commit acks.
        self.commit_acks: Dict[Tuple[str, str], Set[str]] = {}
        #: (sequence, state_digest) -> distinct transport-level senders of
        #: checkpoint votes, counted from the wire: the ground truth any
        #: installed state transfer must be vouched by.
        self.checkpoint_votes: Dict[Tuple[int, bytes], Set[str]] = {}

    def observe(self, sender: str, receiver: str, message, time_ms: float) -> None:
        if receiver not in self.pool_ids:
            if isinstance(message, CheckpointMessage):
                self.checkpoint_votes.setdefault(
                    (message.sequence, message.state_digest), set()).add(sender)
            return
        if isinstance(message, ClientReplyMessage):
            votes = self.reply_votes.setdefault((receiver, message.batch_id), {})
            votes.setdefault(message.matching_key(), {}).setdefault(
                sender, time_ms)
        elif isinstance(message, ZyzzyvaLocalCommit):
            self.commit_acks.setdefault(
                (receiver, message.batch_id), set()).add(sender)


class SafetyAuditor:
    """Audits one cluster run; attach before ``cluster.start()``.

    The auditor records every client-bound reply the network delivers
    (via a message observer) so the inform-quorum check is grounded in
    what actually crossed the wire, not in client bookkeeping.

    With ``wire=`` the auditor instead adopts a :class:`WireRecord`
    collected elsewhere (a parallel worker) and runs the wire-grounded
    checks over it; *cluster* may then be any object exposing the same
    attributes (``replicas``, ``pools``, ``spec``, ``node_config``,
    ``byzantine_ids``).
    """

    def __init__(self, cluster, observe: bool = True,
                 wire: Optional[WireRecord] = None) -> None:
        self.cluster = cluster
        self._wire = wire if wire is not None else WireRecord(
            pool.node_id for pool in cluster.pools)
        # Aliases onto the recorder's dicts (shared objects, not copies).
        self._reply_votes = self._wire.reply_votes
        self._commit_acks = self._wire.commit_acks
        self._checkpoint_votes = self._wire.checkpoint_votes
        self._pool_ids = self._wire.pool_ids
        #: Per-pool completion rule captured at attach time (base quorum
        #: plus the per-epoch quorum function): the auditor re-derives
        #: per-epoch inform quorums itself, so reverting the pools'
        #: epoch awareness at runtime is still flagged.
        self._completion_rules: Dict[str, Tuple[int, object]] = {
            pool.node_id: (pool.completion_quorum,
                           getattr(pool, "completion_quorum_fn", None))
            for pool in cluster.pools}
        self._observing = observe or wire is not None
        if observe:
            cluster.network.add_observer(self._observe)

    @classmethod
    def attach(cls, cluster) -> "SafetyAuditor":
        """Create an auditor observing *cluster* (call before ``start``)."""
        return cls(cluster)

    # ----------------------------------------------------------- observation
    def _observe(self, sender: str, receiver: str, message, time_ms: float) -> None:
        self._wire.observe(sender, receiver, message, time_ms)

    # ----------------------------------------------------------------- audit
    def _honest_live_replicas(self) -> List[object]:
        excluded = set(getattr(self.cluster, "byzantine_ids", ()))
        return [replica for replica in self.cluster.replicas
                if not replica.crashed and replica.node_id not in excluded]

    def _slot_key_fn(self) -> "Callable[[object], int]":
        # Every protocol but HotStuff agrees on sequence numbers; see the
        # pure slot-key helpers above.
        if issubclass(self.cluster.spec.replica_cls, HotStuffReplica):
            return hotstuff_slot_key
        return default_slot_key

    def report(self) -> AuditReport:
        """Run every invariant check and return the findings."""
        report = AuditReport()
        honest = self._honest_live_replicas()
        report.replicas_audited = len(honest)
        self._check_agreement(honest, report)
        self._check_ledgers(honest, report)
        self._check_rollbacks(honest, report)
        self._check_epochs(honest, report)
        if self._observing:
            self._check_inform_quorum(report)
            self._check_state_transfers(honest, report)
        return report

    def check(self) -> AuditReport:
        """Like :meth:`report`, but raise :class:`SafetyViolation` on failure."""
        report = self.report()
        if not report.ok:
            raise SafetyViolation(report.summary())
        return report

    # -------------------------------------------------------------- invariants
    def _check_agreement(self, honest: List[object], report: AuditReport) -> None:
        """No divergent batches per slot; no batch at two different slots."""
        violations, slots_checked = check_agreement(honest, self._slot_key_fn())
        report.slots_checked = slots_checked
        report.violations.extend(violations)

    def _check_ledgers(self, honest: List[object], report: AuditReport) -> None:
        report.violations.extend(check_ledgers(honest))

    def _check_rollbacks(self, honest: List[object], report: AuditReport) -> None:
        violations, checked = check_rollbacks(honest)
        report.rollbacks_checked += checked
        report.violations.extend(violations)

    def _check_epochs(self, honest: List[object], report: AuditReport) -> None:
        """Epoch-log validity, prefix agreement and quorum-at-the-time.

        Three invariants, all re-derived by the auditor itself:

        * every honest replica's epoch log re-validates from genesis with
          the auditor's *own* (import-time-bound) transition rules — a
          replica that activated an inadmissible membership change is
          flagged even if its runtime admissibility check was reverted;
        * honest replicas agree on every epoch they share: same members,
          same activation boundary (epochs are consensus-committed, so a
          divergent epoch log is a divergent prefix);
        * **quorum at the time**: every stable checkpoint boundary was
          certified on the wire by ``2 f_e + 1`` distinct senders that
          were *members of the epoch governing that boundary* — an
          evicted replica's vote must never be what pushed a later
          boundary to stability.
        """
        config = self.cluster.node_config
        if not getattr(config, "reconfigured", False):
            return
        epoch_views: Dict[int, Dict[Tuple[int, Tuple[str, ...]], List[str]]] = {}
        for replica in honest:
            log = list(getattr(replica, "epoch_log", ()))
            for problem in _validate_epoch_log(log):
                report.violations.append(AuditViolation(
                    kind="invalid-epoch",
                    detail=f"{replica.node_id}: {problem}",
                ))
            for entry in log:
                epoch_views.setdefault(entry.epoch, {}).setdefault(
                    (entry.activation_sequence, tuple(entry.members)),
                    []).append(replica.node_id)
        for epoch in sorted(epoch_views):
            variants = epoch_views[epoch]
            if len(variants) > 1:
                placement = "; ".join(
                    f"activation {activation} members {list(members)} on "
                    f"{sorted(replicas)}"
                    for (activation, members), replicas in sorted(variants.items()))
                report.violations.append(AuditViolation(
                    kind="epoch-divergence",
                    detail=f"epoch {epoch} diverges: {placement}",
                ))
        if not self._observing:
            return
        checked: Set[Tuple[int, bytes]] = set()
        for replica in honest:
            stable_digests = dict(getattr(replica.checkpoints, "stable_digests", {}))
            for sequence, state_digest in sorted(stable_digests.items()):
                key = (sequence, state_digest)
                if key in checked:
                    continue
                checked.add(key)
                epoch = config.epoch_of_sequence(sequence)
                members = set(config.membership(epoch))
                quorum = config.quorum_of(epoch)
                senders = self._checkpoint_votes.get(key, set())
                eligible = senders & members
                if len(eligible) < quorum:
                    report.violations.append(AuditViolation(
                        kind="epoch-quorum",
                        detail=(f"checkpoint {sequence} (epoch {epoch}) is "
                                f"stable on {replica.node_id} but only "
                                f"{len(eligible)} of its wire votes came from "
                                f"epoch-{epoch} members (need {quorum}; "
                                f"{len(senders - members)} votes were from "
                                f"non-members)"),
                    ))

    def _check_state_transfers(self, honest: List[object],
                               report: AuditReport) -> None:
        """Every installed state transfer must be vouched by f+1 voters.

        A checkpoint-sync block records the state digest a replica adopted
        without executing the underlying slots.  The digest must have been
        vouched on the wire by at least ``f + 1`` distinct checkpoint
        senders — one of them necessarily honest — or the replica
        installed state the system never reached (a lying checkpointer's
        fabricated transfer).  After a reconfiguration, ``f`` is the
        fault bound of the epoch governing the transferred boundary.
        """
        config = self.cluster.node_config
        for replica in honest:
            for block in replica.blockchain.blocks():
                if block.payload != "checkpoint-sync":
                    continue
                f = (config.f_of(config.epoch_of_sequence(block.sequence))
                     if config.reconfigured else config.f)
                voters = self._checkpoint_votes.get(
                    (block.sequence, block.batch_digest), set())
                if len(voters) < f + 1:
                    report.violations.append(AuditViolation(
                        kind="unvouched-state-transfer",
                        detail=(f"{replica.node_id}: installed checkpoint "
                                f"{block.sequence} whose state digest only "
                                f"{len(voters)} checkpoint senders vouched "
                                f"for (need f+1 = {f + 1})"),
                    ))

    def _check_inform_quorum(self, report: AuditReport) -> None:
        config = self.cluster.node_config
        reconfigured = getattr(config, "reconfigured", False)
        for pool in self.cluster.pools:
            base_quorum, quorum_fn = self._completion_rules.get(
                pool.node_id, (pool.completion_quorum, None))

            def quorum_for(sequence: int) -> int:
                if not reconfigured or quorum_fn is None:
                    return base_quorum
                return quorum_fn(config.epoch_of_sequence(sequence))

            fallback_fn = None
            if isinstance(pool, ZyzzyvaClientPool):
                # Zyzzyva's slow path completes with 2f+1 matching replies
                # plus 2f+1 local-commit acknowledgements (per the epoch
                # governing the certified slot).
                fallback_fn = pool._slot_quorum
            for record in pool.completions:
                report.completions_checked += 1
                votes = self._reply_votes.get((pool.node_id, record.batch_id), {})
                # Matching keys are (batch_id, view, sequence, digest):
                # after a reconfiguration the required quorum depends on
                # the epoch the replied sequence belongs to.
                best, needed, satisfied = 0, base_quorum, False
                for key, senders in votes.items():
                    count = sum(1 for at_ms in senders.values()
                                if at_ms <= record.completed_at_ms)
                    quorum = quorum_for(key[2])
                    if count >= quorum:
                        satisfied = True
                        break
                    if count > best:
                        best, needed = count, quorum
                if satisfied:
                    continue
                acks = self._commit_acks.get((pool.node_id, record.batch_id), set())
                if fallback_fn is not None:
                    fallback_quorum = fallback_fn(record.sequence)
                    if best >= fallback_quorum and len(acks) >= fallback_quorum:
                        continue
                report.violations.append(AuditViolation(
                    kind="inform-quorum",
                    detail=(f"{pool.node_id}: batch {record.batch_id} completed "
                            f"with only {best} matching replies from distinct "
                            f"senders (quorum {needed})"),
                ))


def audit_cluster(cluster) -> AuditReport:
    """One-shot audit of an already-finished run.

    Without an observer attached before the run the inform-quorum check
    has no reply trace to ground itself in, so this convenience wrapper
    only runs the replica-state invariants.
    """
    return SafetyAuditor(cluster, observe=False).report()


#: Within one shard, every honest replica's 2PC status for a transaction
#: lies on a single trajectory (None -> prepared -> committed/aborted, or
#: None -> refused -> aborted); a lagging replica sits earlier on the same
#: chain.  These pairs can never coexist among honest shard members.
_CONFLICTING_STATUS = (("committed", "aborted"), ("committed", "refused"))


class HubWireRecord:
    """Picklable hub-network observations backing :class:`ShardedSafetyAuditor`.

    The hub-side twin of :class:`WireRecord`: it counts distinct
    transport-level senders of matching client replies per
    ``(pool, batch)``, which grounds the cross-shard decide-quorum check.
    Workers attach one to the home runtime's hub network and ship it back
    with the run artifacts.
    """

    def __init__(self, pool_ids: Iterable[str] = ()) -> None:
        self.pool_ids: Set[str] = set(pool_ids)
        #: (pool_id, batch_id) -> matching_key -> distinct transport senders.
        self.reply_votes: Dict[Tuple[str, str], Dict[tuple, Set[str]]] = {}

    def observe(self, sender: str, receiver: str, message, time_ms: float) -> None:
        if receiver in self.pool_ids and isinstance(message, ClientReplyMessage):
            votes = self.reply_votes.setdefault((receiver, message.batch_id), {})
            votes.setdefault(message.matching_key(), set()).add(sender)


class ShardedSafetyAuditor:
    """Audits a :class:`~repro.fabric.sharding.ShardedCluster` run.

    Wraps one :class:`SafetyAuditor` per shard (prefix agreement, ledger
    integrity, rollback and state-transfer checks all still apply inside
    every consensus group) and adds the cross-shard atomicity invariants:

    * **No split decision** — no shard's honest replicas executed the
      commit record of a transaction that any sibling shard's honest
      replicas aborted (or refused to prepare).
    * **Decided everywhere** — every cross-shard transaction a client pool
      reported complete reached the *same* terminal outcome in every
      touched shard, both in the pool's reply-quorum observations and in
      the replicas' journals.
    * **Certified decides only** — every decide record any honest replica
      accepted carries a certificate the auditor can independently
      re-validate against the shard layout
      (:func:`~repro.workload.xshard.decide_record_valid`).  This is the
      check that catches a removed/broken coordinator-equivocation fix
      even before a split decision materialises.
    * **Decide quorum** — for every completed cross-shard transaction the
      network really delivered the pool a quorum of matching decide
      replies from each touched shard's members (counted on the wire).

    The coordinator's journal is cross-checked too, unless the coordinator
    itself is configured Byzantine (its journal is then meaningless).
    """

    def __init__(self, cluster, observe: bool = True,
                 shard_wires: Optional[List[WireRecord]] = None,
                 hub_wire: Optional["HubWireRecord"] = None) -> None:
        self.cluster = cluster
        self._shard_auditors = [
            SafetyAuditor(shard_cluster, observe=observe,
                          wire=shard_wires[index] if shard_wires else None)
            for index, shard_cluster in enumerate(cluster.shard_clusters)]
        self._hub_wire = hub_wire if hub_wire is not None else HubWireRecord(
            pool.node_id for pool in cluster.pools)
        self._pool_ids = self._hub_wire.pool_ids
        #: (pool_id, batch_id) -> matching_key -> distinct transport senders.
        self._reply_votes = self._hub_wire.reply_votes
        self._shard_of: Dict[str, int] = {}
        for index, members in enumerate(cluster.layout.members):
            for rid in members:
                self._shard_of[rid] = index
        self._observing = observe or hub_wire is not None
        if observe:
            cluster.hub.add_observer(self._observe)

    @classmethod
    def attach(cls, cluster) -> "ShardedSafetyAuditor":
        """Create an auditor observing *cluster* (call before ``start``)."""
        return cls(cluster)

    @classmethod
    def from_recorded(cls, run) -> "ShardedSafetyAuditor":
        """Audit a finished run from worker-collected artifacts.

        *run* duck-types a finished :class:`ShardedCluster` (notably
        ``shard_clusters`` built from shipped replica objects, ``pools``,
        ``coordinator``, ``layout``, ``byzantine_ids``) and additionally
        carries the wire recorders every worker attached during the run
        (``shard_wires``, ``hub_wire``) — the parallel driver's
        :class:`~repro.fabric.parallel.ParallelShardedRun`.  The exact
        same invariants run over the exact same ground truth as a live
        attach.
        """
        return cls(run, observe=False,
                   shard_wires=list(run.shard_wires), hub_wire=run.hub_wire)

    # ----------------------------------------------------------- observation
    def _observe(self, sender: str, receiver: str, message, time_ms: float) -> None:
        self._hub_wire.observe(sender, receiver, message, time_ms)

    # ----------------------------------------------------------------- audit
    def _honest_managers(self) -> List[List[Tuple[str, object]]]:
        excluded = set(self.cluster.byzantine_ids)
        managers: List[List[Tuple[str, object]]] = []
        for shard_cluster in self.cluster.shard_clusters:
            managers.append([
                (replica.node_id, replica.control_layer)
                for replica in shard_cluster.replicas
                if (not replica.crashed and replica.node_id not in excluded
                    and replica.control_layer is not None)])
        return managers

    def report(self) -> AuditReport:
        """Run per-shard and cross-shard invariant checks."""
        report = AuditReport()
        for shard, auditor in enumerate(self._shard_auditors):
            sub = auditor.report()
            report.replicas_audited += sub.replicas_audited
            report.slots_checked += sub.slots_checked
            report.rollbacks_checked += sub.rollbacks_checked
            for violation in sub.violations:
                report.violations.append(AuditViolation(
                    kind=violation.kind, detail=f"s{shard}: {violation.detail}"))
        managers = self._honest_managers()
        statuses = self._consolidated_statuses(managers, report)
        self._check_split_decisions(statuses, report)
        self._check_decide_certificates(managers, report)
        self._check_pool_atomicity(statuses, report)
        self._check_coordinator_journal(report)
        if self._observing:
            self._check_reply_quorums(report)
        return report

    def check(self) -> AuditReport:
        """Like :meth:`report`, but raise :class:`SafetyViolation` on failure."""
        report = self.report()
        if not report.ok:
            raise SafetyViolation(report.summary())
        return report

    # -------------------------------------------------------------- invariants
    def _consolidated_statuses(
            self, managers: List[List[Tuple[str, object]]],
            report: AuditReport) -> List[Dict[str, str]]:
        """Per shard: txn -> most advanced honest status, flagging conflicts."""
        consolidated: List[Dict[str, str]] = []
        for shard, rows in enumerate(managers):
            by_txn: Dict[str, Dict[str, List[str]]] = {}
            for replica_id, manager in rows:
                for txn, status in manager.status.items():
                    by_txn.setdefault(txn, {}).setdefault(status, []).append(replica_id)
            summary: Dict[str, str] = {}
            for txn, placements in by_txn.items():
                for first, second in _CONFLICTING_STATUS:
                    if first in placements and second in placements:
                        report.violations.append(AuditViolation(
                            kind="intra-shard-divergence",
                            detail=(f"s{shard}: txn {txn} is {first} on "
                                    f"{sorted(placements[first])} but {second} "
                                    f"on {sorted(placements[second])}"),
                        ))
                for status in ("committed", "aborted", "prepared", "refused"):
                    if status in placements:
                        summary[txn] = status
                        break
            consolidated.append(summary)
        return consolidated

    def _check_split_decisions(self, statuses: List[Dict[str, str]],
                               report: AuditReport) -> None:
        """No txn may commit in one shard and abort/refuse in another."""
        committed: Dict[str, List[int]] = {}
        aborted: Dict[str, List[int]] = {}
        for shard, summary in enumerate(statuses):
            for txn, status in summary.items():
                if status == "committed":
                    committed.setdefault(txn, []).append(shard)
                elif status in ("aborted", "refused"):
                    aborted.setdefault(txn, []).append(shard)
        for txn in sorted(set(committed) & set(aborted)):
            report.violations.append(AuditViolation(
                kind="cross-shard-atomicity",
                detail=(f"txn {txn} committed in shards {committed[txn]} "
                        f"but aborted/refused in shards {aborted[txn]}"),
            ))

    def _check_decide_certificates(
            self, managers: List[List[Tuple[str, object]]],
            report: AuditReport) -> None:
        """Re-validate every accepted decide certificate independently."""
        layout = self.cluster.layout
        for shard, rows in enumerate(managers):
            for replica_id, manager in rows:
                for txn, (phase, shards, cert) in sorted(
                        manager.accepted_decides.items()):
                    probe = _make_control_batch(txn, phase, shard, shards, cert=cert)
                    if not _decide_record_valid(probe, layout):
                        report.violations.append(AuditViolation(
                            kind="forged-decide",
                            detail=(f"{replica_id}: accepted {phase} record for "
                                    f"txn {txn} whose certificate does not "
                                    f"validate against the shard layout"),
                        ))

    def _check_pool_atomicity(self, statuses: List[Dict[str, str]],
                              report: AuditReport) -> None:
        """Every completed cross-shard txn decided identically everywhere."""
        for pool in self.cluster.pools:
            for txn, outcomes in sorted(pool.xshard_outcomes.items()):
                plan = pool.xshard_plans.get(txn)
                shards = plan.shards if plan is not None else tuple(sorted(outcomes))
                observed = {outcomes.get(shard) for shard in shards}
                if len(observed) != 1 or None in observed:
                    report.violations.append(AuditViolation(
                        kind="cross-shard-atomicity",
                        detail=(f"{pool.node_id}: txn {txn} completed with "
                                f"non-uniform outcomes {sorted(outcomes.items())}"),
                    ))
                    continue
                decided = next(iter(observed))
                for shard in shards:
                    status = statuses[shard].get(txn)
                    if status is not None and status != decided:
                        report.violations.append(AuditViolation(
                            kind="cross-shard-atomicity",
                            detail=(f"txn {txn}: pool {pool.node_id} observed "
                                    f"{decided} on shard {shard} but the "
                                    f"shard's honest replicas record {status}"),
                        ))

    def _check_coordinator_journal(self, report: AuditReport) -> None:
        """An honest coordinator's journalled decisions must be certified."""
        coordinator = getattr(self.cluster, "coordinator", None)
        if coordinator is None or coordinator.node_id in self.cluster.byzantine_ids:
            return
        layout = self.cluster.layout
        for txn, entry in sorted(coordinator.journal.items()):
            shards = tuple(entry["shards"])  # type: ignore[arg-type]
            probe = _make_control_batch(
                txn, str(entry["decision"]), shards[0], shards,
                cert=tuple(entry["cert"]))  # type: ignore[arg-type]
            if not _decide_record_valid(probe, layout):
                report.violations.append(AuditViolation(
                    kind="coordinator-journal",
                    detail=(f"coordinator decided {entry['decision']} for txn "
                            f"{txn} without a validating certificate"),
                ))

    def _check_reply_quorums(self, report: AuditReport) -> None:
        """Ground every completion in wire-delivered reply quorums."""
        layout = self.cluster.layout
        for pool in self.cluster.pools:
            for record in pool.completions:
                report.completions_checked += 1
                plan = pool.xshard_plans.get(record.batch_id)
                if plan is None:
                    votes = self._reply_votes.get(
                        (pool.node_id, record.batch_id), {})
                    if not any(self._quorate(senders, layout)
                               for senders in votes.values()):
                        report.violations.append(AuditViolation(
                            kind="inform-quorum",
                            detail=(f"{pool.node_id}: batch {record.batch_id} "
                                    f"completed without a delivered reply "
                                    f"quorum from any shard"),
                        ))
                    continue
                for shard in plan.shards:
                    if self._shard_decide_quorate(pool.node_id, plan.txn,
                                                  shard, layout):
                        continue
                    report.violations.append(AuditViolation(
                        kind="inform-quorum",
                        detail=(f"{pool.node_id}: cross-shard txn {plan.txn} "
                                f"completed without a delivered decide-reply "
                                f"quorum from shard {shard}"),
                    ))

    def _shard_decide_quorate(self, pool_id: str, txn: str, shard: int,
                              layout) -> bool:
        members = set(layout.replicas(shard))
        quorum = layout.reply_quorum(shard)
        for phase in _DECIDE_PHASES:
            votes = self._reply_votes.get(
                (pool_id, _control_batch_id(txn, phase, shard)), {})
            for senders in votes.values():
                if len({s for s in senders if s in members}) >= quorum:
                    return True
        return False

    def _quorate(self, senders: Set[str], layout) -> bool:
        counts: Dict[int, int] = {}
        for sender in senders:
            shard = self._shard_of.get(sender)
            if shard is not None:
                counts[shard] = counts.get(shard, 0) + 1
        return any(count >= layout.reply_quorum(shard)
                   for shard, count in counts.items())


def audit_sharded_cluster(cluster) -> AuditReport:
    """One-shot replica-state audit of a finished sharded run (no wire trace)."""
    return ShardedSafetyAuditor(cluster, observe=False).report()
