"""Multi-group sharded deployments: S consensus groups plus cross-shard 2PC.

A :class:`ShardedCluster` partitions the keyspace across ``S`` independent
consensus groups ("shards"), each running any of the registered protocols
over its own namespaced replica set, all advancing on **one** deterministic
:class:`~repro.net.simulator.Simulator`.  Single-shard batches follow the
ordinary client path inside their shard.  Cross-shard transactions run
two-phase commit over the shards' consensus instances:

* **prepare** — the coordinator consensus-commits a PREPARE record in every
  touched shard; the shard's replicas transition the transaction to
  *prepared* (or refuse it) as a deterministic function of their log.
* **decide** — once every shard reports prepared, the coordinator
  consensus-commits a COMMIT record carrying, per shard, ``f + 1`` distinct
  replica attestations of the prepare outcome; any refusal yields an ABORT
  record instead.  Replicas validate the certificate before applying the
  decision (:func:`~repro.workload.xshard.decide_record_valid`), which is
  what stops a Byzantine coordinator from equivocating commit to one shard
  and abort to another.

Coordinator failure is survived by the submitting client pool: after two
request timeouts it PROBEs every touched shard (unprepared shards refuse —
presumed abort), derives the only certificate-consistent decision, and
writes the decide records itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.fabric.cluster import Cluster, ClusterConfig
from repro.fabric.metrics import MetricsWindow, RunResult, summarize
from repro.fabric.registry import ProtocolSpec
from repro.net.byzantine import ByzantineSpec, make_behavior
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.network import SimNetwork
from repro.net.simulator import Simulator
from repro.protocols.base import ClientNode, NodeConfig
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.quorum import VoteSet
from repro.workload.clients import CompletionRecord, ShardedClientPool
from repro.workload.xshard import (
    ABORT,
    COMMIT,
    PREPARE,
    CoordAck,
    CoordSubmit,
    CrossShardPlan,
    ShardLayout,
    ShardTxnManager,
    decode_outcome,
    make_control_batch,
    parse_control_batch_id,
    synthetic_sharded_source,
    ycsb_sharded_source,
)
from repro.workload.ycsb import YcsbConfig, YcsbWorkload


def coordinator_id(index: int = 0) -> str:
    """Canonical coordinator identifier."""
    return f"coord:{index}"


def pool_id(index: int) -> str:
    """Canonical sharded client-pool identifier."""
    return f"pool:{index}"


# -- coordinator -------------------------------------------------------------------

@dataclass(slots=True)
class _CoordTxn:
    """Coordinator-side book-keeping for one in-flight 2PC."""

    plan: CrossShardPlan
    reply_pool: str
    submitted_at_ms: float
    mode: str = "prepare"  # "prepare" | "decide"
    votes: Dict[Tuple, VoteSet] = field(default_factory=dict)
    phase_results: Dict[int, Tuple[str, Tuple[str, ...]]] = field(default_factory=dict)
    decision: str = ""
    cert: Tuple = ()
    retries: int = 0


class ShardCoordinator(ClientNode):
    """Drives two-phase commit for cross-shard transactions.

    The coordinator is an ordinary client of every shard: the PREPARE
    record is a consensus-committed batch whose replies (stamped with the
    per-replica prepare outcome) it counts per shard.  Decide records
    carry the submitting pool as ``reply_to``, so the pool — not the
    coordinator — observes decide completion and acknowledges with
    :class:`~repro.workload.xshard.CoordAck`.  Until that ack arrives the
    coordinator retransmits with exponential backoff, which makes the
    decide phase survive message loss without any extra machinery.

    ``journal`` keeps every decision and its certificate for the safety
    auditor.
    """

    #: Retransmission rounds before an undecided transaction is abandoned
    #: to the pool's probe-based recovery.
    MAX_RETRIES = 8

    def __init__(self, node_id: str, config: NodeConfig, layout: ShardLayout,
                 timeout_ms: Optional[float] = None) -> None:
        super().__init__(node_id, config)
        self.layout = layout
        self.timeout_ms = timeout_ms if timeout_ms is not None else config.request_timeout_ms
        #: txn -> {"decision", "cert", "shards", "decided_at_ms"}.
        self.journal: Dict[str, Dict[str, object]] = {}
        self._views = [0] * layout.num_shards
        self._pending: Dict[str, _CoordTxn] = {}

    # -- messages ----------------------------------------------------------------
    def on_message(self, sender: str, message, now_ms: float) -> None:
        if isinstance(message, CoordSubmit):
            self._on_submit(message, now_ms)
        elif isinstance(message, CoordAck):
            self._on_ack(message.txn)
        elif isinstance(message, ClientReplyMessage):
            self._on_reply(sender, message, now_ms)

    def _on_submit(self, message: CoordSubmit, now_ms: float) -> None:
        plan = message.plan
        if plan is None or plan.txn in self._pending:
            return
        pending = _CoordTxn(plan=plan, reply_pool=message.reply_to,
                            submitted_at_ms=now_ms)
        self._pending[plan.txn] = pending
        entry = self.journal.get(plan.txn)
        if entry is not None:
            # Already decided in a previous life of this transaction
            # (duplicate submit): replay the recorded decision.
            pending.mode = "decide"
            pending.decision = str(entry["decision"])
            pending.cert = tuple(entry["cert"])  # type: ignore[arg-type]
            self._send_decides(pending, now_ms, retransmission=True)
        else:
            self._send_prepares(pending, now_ms, retransmission=False)
        self.set_timer(f"txn:{plan.txn}", self.timeout_ms, payload=plan.txn)

    def _on_ack(self, txn: str) -> None:
        if self._pending.pop(txn, None) is not None:
            self.cancel_timer(f"txn:{txn}")

    def _on_reply(self, sender: str, message: ClientReplyMessage,
                  now_ms: float) -> None:
        parsed = parse_control_batch_id(message.batch_id)
        if parsed is None:
            return
        txn, phase, shard = parsed
        pending = self._pending.get(txn)
        if (pending is None or pending.mode != "prepare" or phase != PREPARE
                or not 0 <= shard < self.layout.num_shards):
            return
        key = message.matching_key()
        votes = pending.votes.get(key)
        if votes is None:
            votes = pending.votes[key] = VoteSet(self.layout.index_map(shard))
        votes.add(sender)
        if message.view > self._views[shard]:
            self._views[shard] = message.view
        if votes.count < self.layout.reply_quorum(shard):
            return
        outcome = decode_outcome(message.result_digest, txn, phase, shard)
        if outcome is None or shard in pending.phase_results:
            return
        pending.phase_results[shard] = (outcome, tuple(sorted(votes)))
        if all(s in pending.phase_results for s in pending.plan.shards):
            self._decide(txn, pending, now_ms)

    # -- 2PC phases --------------------------------------------------------------
    def _send_prepares(self, pending: _CoordTxn, now_ms: float,
                       retransmission: bool) -> None:
        for shard in pending.plan.shards:
            if shard in pending.phase_results:
                continue
            batch = make_control_batch(
                pending.plan.txn, PREPARE, shard, pending.plan.shards,
                reply_to=self.node_id, created_at_ms=now_ms)
            self._send_control(shard, batch, self.node_id, retransmission)

    def _decide(self, txn: str, pending: _CoordTxn, now_ms: float) -> None:
        outcomes = [pending.phase_results[s][0] for s in pending.plan.shards]
        if any(o == "committed" for o in outcomes):
            decision = COMMIT
        elif any(o in ("refused", "aborted") for o in outcomes):
            decision = ABORT
        else:
            decision = COMMIT
        pending.decision = decision
        pending.cert = tuple(
            (shard,) + pending.phase_results[shard]
            for shard in pending.plan.shards)
        pending.mode = "decide"
        self.journal[txn] = {
            "decision": decision,
            "cert": pending.cert,
            "shards": pending.plan.shards,
            "decided_at_ms": now_ms,
        }
        self._send_decides(pending, now_ms, retransmission=False)

    def _send_decides(self, pending: _CoordTxn, now_ms: float,
                      retransmission: bool) -> None:
        for shard in pending.plan.shards:
            payload = (pending.plan.slice_for(shard)
                       if pending.decision == COMMIT else ())
            batch = make_control_batch(
                pending.plan.txn, pending.decision, shard, pending.plan.shards,
                cert=pending.cert, payload_txns=payload,
                reply_to=pending.reply_pool, created_at_ms=now_ms)
            self._send_control(shard, batch, pending.reply_pool, retransmission)

    def _send_control(self, shard: int, batch, reply_to: str,
                      retransmission: bool) -> None:
        from repro.protocols.client_messages import ClientRequestMessage

        message = ClientRequestMessage(
            batch=batch,
            reply_to=reply_to,
            retransmission=retransmission,
            size_bytes=self.config.proposal_size_bytes(1),
        )
        if retransmission or self.layout.wants_broadcast(shard):
            for rid in self.layout.replicas(shard):
                self.send(rid, message)
        else:
            self.send(self.layout.primary(shard, self._views[shard]), message)

    # -- timeouts ----------------------------------------------------------------
    def on_timer(self, name: str, payload, now_ms: float) -> None:
        if not name.startswith("txn:"):
            return
        pending = self._pending.get(payload)
        if pending is None:
            return
        pending.retries += 1
        if pending.retries > self.MAX_RETRIES:
            # Hand the transaction over to the pool's probe-based recovery
            # rather than retrying forever; the journal keeps the decision.
            del self._pending[payload]
            return
        if pending.mode == "prepare":
            self._send_prepares(pending, now_ms, retransmission=True)
        else:
            self._send_decides(pending, now_ms, retransmission=True)
        backoff = self.timeout_ms * (2 ** min(pending.retries, 4))
        self.set_timer(f"txn:{payload}", backoff, payload=payload)


# -- configuration -----------------------------------------------------------------

@dataclass
class ShardedClusterConfig:
    """Parameters of one sharded deployment.

    Attributes:
        num_shards: number of consensus groups ``S``.
        protocols: protocol key per shard; a single string applies to all
            shards.  SBFT is rejected: its aggregated single-reply path
            cannot yield the ``f + 1`` distinct replica attestations the
            cross-shard certificates are built from.
        num_replicas: replicas per shard.
        cross_shard_fraction: probability that a generated request is a
            two-shard transaction instead of a single-shard batch.
        use_coordinator: drive 2PC through a dedicated coordinator node
            (``False`` = the pools always self-drive).
        shard_faults / shard_byzantine: per-shard fault schedule and
            Byzantine replica spec, keyed by shard index.
        hub_faults: fault schedule of the client/coordinator network —
            crash ``coord:0`` here for the crash-mid-2PC scenarios.
        coordinator_behavior: optional Byzantine behaviour name installed
            on the coordinator's network boundary (e.g.
            ``"equivocate-coordinator"``, ``"stall-coordinator"``).
    """

    num_shards: int = 2
    protocols: Union[str, Tuple[str, ...]] = "poe-mac"
    num_replicas: int = 4
    batch_size: int = 16
    num_pools: int = 1
    client_outstanding: int = 4
    total_batches: Optional[int] = 40
    cross_shard_fraction: float = 0.2
    use_coordinator: bool = True
    execute_operations: bool = False
    use_ycsb_payload: bool = False
    out_of_order: bool = True
    request_timeout_ms: float = 3000.0
    checkpoint_interval: int = 50
    conditions: Optional[NetworkConditions] = None
    shard_faults: Dict[int, FaultSchedule] = field(default_factory=dict)
    shard_byzantine: Dict[int, ByzantineSpec] = field(default_factory=dict)
    hub_faults: Optional[FaultSchedule] = None
    coordinator_behavior: Optional[str] = None
    coordinator_behavior_options: Dict[str, object] = field(default_factory=dict)
    ycsb: Optional[YcsbConfig] = None
    seed: int = 1

    def protocol_for(self, shard: int) -> str:
        if isinstance(self.protocols, str):
            return self.protocols
        return self.protocols[shard]

    def pool_ids(self) -> List[str]:
        return [pool_id(i) for i in range(self.num_pools)]


# -- the sharded cluster -----------------------------------------------------------

class ShardedCluster:
    """S per-shard clusters, a coordinator and sharded client pools.

    All shards run on one externally visible :class:`Simulator`; each
    shard keeps its own :class:`~repro.net.network.SimNetwork` (own
    conditions, faults, Byzantine boundary) and the client pools plus
    the coordinator live on a hub network.  A shared router map lets any
    node address any other — the receiver's home network applies its own
    delivery semantics.
    """

    def __init__(self, config: ShardedClusterConfig) -> None:
        for shard in range(config.num_shards):
            if config.protocol_for(shard) == "sbft":
                raise ValueError(
                    "sbft shards are unsupported: aggregated replies cannot "
                    "produce the f+1 distinct attestations cross-shard "
                    "certificates require")
        self.config = config
        self.simulator = Simulator()
        self.shard_clusters: List[Cluster] = []
        router: Dict[str, SimNetwork] = {}
        for shard in range(config.num_shards):
            cluster = Cluster(self._shard_config(shard), simulator=self.simulator)
            self.shard_clusters.append(cluster)
            cluster.network.router = router
            for rid in cluster.config.replica_ids():
                router[rid] = cluster.network
        self.layout = self._build_layout()
        for shard, cluster in enumerate(self.shard_clusters):
            for replica in cluster.replicas:
                replica.control_layer = ShardTxnManager(shard, self.layout)
        self.hub = SimNetwork(
            self.simulator,
            conditions=config.conditions or NetworkConditions.lan(seed=config.seed),
            faults=config.hub_faults or FaultSchedule.none(),
        )
        self.hub.router = router
        self.router = router
        all_replicas = [rid for shard in self.layout.members for rid in shard]
        self.node_config = NodeConfig(
            replica_ids=all_replicas,
            batch_size=config.batch_size,
            request_timeout_ms=config.request_timeout_ms,
            checkpoint_interval=config.checkpoint_interval,
            execute_operations=config.execute_operations,
            out_of_order=config.out_of_order,
        )
        self.coordinator: Optional[ShardCoordinator] = None
        self.byzantine_ids: List[str] = [
            rid for cluster in self.shard_clusters for rid in cluster.byzantine_ids]
        if config.use_coordinator:
            self.coordinator = ShardCoordinator(
                coordinator_id(), self.node_config, self.layout,
                timeout_ms=config.request_timeout_ms)
            self.hub.add_client(self.coordinator)
            router[self.coordinator.node_id] = self.hub
            self._attach_coordinator_behavior()
        self.pools: List[ShardedClientPool] = []
        for pid in config.pool_ids():
            pool = ShardedClientPool(
                node_id=pid,
                config=self.node_config,
                layout=self.layout,
                batch_source=self._pool_source(pid),
                target_outstanding=config.client_outstanding,
                total_batches=config.total_batches,
                timeout_ms=config.request_timeout_ms,
                coordinator_id=self.coordinator.node_id if self.coordinator else "",
            )
            self.pools.append(pool)
            self.hub.add_client(pool)
            router[pid] = self.hub

    # -- build -------------------------------------------------------------------
    def _shard_config(self, shard: int) -> ClusterConfig:
        config = self.config
        return ClusterConfig(
            protocol=config.protocol_for(shard),
            num_replicas=config.num_replicas,
            batch_size=config.batch_size,
            num_clients=0,
            total_batches=None,
            out_of_order=config.out_of_order,
            execute_operations=config.execute_operations,
            request_timeout_ms=config.request_timeout_ms,
            checkpoint_interval=config.checkpoint_interval,
            # Every shard draws from its own conditions RNG so shard k's
            # traffic cannot perturb shard j's latency stream.
            conditions=config.conditions or NetworkConditions.lan(
                seed=config.seed * 101 + shard),
            faults=config.shard_faults.get(shard),
            byzantine=config.shard_byzantine.get(shard),
            ycsb=self._ycsb_config(),
            seed=config.seed,
            namespace=f"s{shard}/",
        )

    def _ycsb_config(self) -> Optional[YcsbConfig]:
        if not (self.config.execute_operations or self.config.use_ycsb_payload):
            return None
        # One shared YCSB universe: every shard's replicas hold the same
        # initial table, and the sharded sources route keys by crc32.
        return self.config.ycsb or YcsbConfig.small(seed=self.config.seed)

    def _build_layout(self) -> ShardLayout:
        members = []
        quorums = []
        broadcast = []
        for cluster in self.shard_clusters:
            spec: ProtocolSpec = cluster.spec
            n = cluster.config.num_replicas
            members.append(tuple(cluster.config.replica_ids()))
            quorums.append(self._reply_quorum(spec, n))
            broadcast.append(bool(spec.broadcast_requests))
        return ShardLayout(
            members=tuple(members),
            reply_quorums=tuple(quorums),
            broadcast_requests=tuple(broadcast),
        )

    @staticmethod
    def _reply_quorum(spec: ProtocolSpec, n: int) -> int:
        f = (n - 1) // 3
        rule = spec.client_quorum or "f+1"
        if rule == "nf":
            return n - f
        if rule == "f+1":
            return f + 1
        if rule == "n":
            return n
        raise ValueError(f"unsupported client quorum {rule!r} for sharding")

    def _attach_coordinator_behavior(self) -> None:
        name = self.config.coordinator_behavior
        if not name or self.coordinator is None:
            return
        behavior = make_behavior(name, **self.config.coordinator_behavior_options)
        self.hub.set_byzantine(self.coordinator.node_id, behavior,
                               seed=self.config.seed)
        behavior.install(self.hub.node(self.coordinator.node_id))
        self.byzantine_ids.append(self.coordinator.node_id)

    def _pool_source(self, pid: str):
        config = self.config
        if not config.use_ycsb_payload:
            return synthetic_sharded_source(
                pid, config.num_shards, config.batch_size,
                config.cross_shard_fraction, seed=config.seed)
        workload = YcsbWorkload(self._ycsb_config(), client_id=pid)
        return ycsb_sharded_source(
            workload, config.num_shards, config.batch_size,
            config.cross_shard_fraction, seed=config.seed)

    # -- running -----------------------------------------------------------------
    def start(self) -> None:
        """Boot every shard, then the hub (clients + coordinator)."""
        for cluster in self.shard_clusters:
            cluster.start()
        self.hub.start_all()

    def run_for(self, duration_ms: float) -> float:
        return self.hub.run(until_ms=self.simulator.now + duration_ms)

    def run_until_done(self, max_ms: float = 600_000.0,
                       chunk_ms: float = 1_000.0) -> float:
        """Run until every pool completed its budget (shared-clock twin of
        :meth:`Cluster.run_until_done`)."""
        deadline = self.simulator.now + max_ms
        check_completion = True
        while self.simulator.now < deadline:
            if check_completion and all(pool.is_done() for pool in self.pools):
                break
            next_stop = min(deadline, self.simulator.now + chunk_ms)
            before = self.simulator.processed_events
            self.hub.run(until_ms=next_stop)
            check_completion = self.simulator.processed_events != before
            if (not check_completion
                    and self.simulator.now >= next_stop >= deadline):
                break
        return self.simulator.now

    # -- results -----------------------------------------------------------------
    def completions(self) -> List[CompletionRecord]:
        records: List[CompletionRecord] = []
        for pool in self.pools:
            records.extend(pool.completions)
        records.sort(key=lambda record: record.completed_at_ms)
        return records

    def result(self, window: Optional[MetricsWindow] = None,
               warmup_fraction: float = 0.1,
               metadata: Optional[Dict[str, object]] = None) -> RunResult:
        records = self.completions()
        if window is None and records:
            start_index = int(len(records) * warmup_fraction)
            start_index = min(start_index, len(records) - 1)
            measured = records[start_index:]
            last_submission = max(record.submitted_at_ms for record in measured)
            window = MetricsWindow(
                start_ms=min(measured[0].completed_at_ms, last_submission),
                end_ms=measured[-1].completed_at_ms,
            )
        protocols = "+".join(
            cluster.config.protocol for cluster in self.shard_clusters)
        info = {
            "batch_size": self.config.batch_size,
            "num_shards": self.config.num_shards,
            "cross_shard_fraction": self.config.cross_shard_fraction,
        }
        info.update(metadata or {})
        return summarize(
            protocol=f"sharded[{protocols}]",
            n=self.config.num_shards * self.config.num_replicas,
            completions=records,
            window=window,
            metadata=info,
        )


def sharded_fingerprint(config: ShardedClusterConfig,
                        max_ms: float = 600_000.0) -> str:
    """Run a sharded deployment and hash everything observable about it.

    Folds per-replica ledger heads and 2PC journals, pool completions and
    cross-shard outcomes, the coordinator journal and the event count into
    one digest.  Two runs of the same config must produce the same
    fingerprint — the determinism contract of the sharded path.
    """
    cluster = ShardedCluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    hasher = hashlib.sha256()

    def fold(*parts: object) -> None:
        for part in parts:
            hasher.update(repr(part).encode())
            hasher.update(b"|")

    fold("events", cluster.simulator.processed_events, cluster.simulator.now)
    for shard_cluster in cluster.shard_clusters:
        for replica in shard_cluster.replicas:
            fold(replica.node_id, replica.crashed,
                 replica.last_executed_sequence)
            if not replica.crashed:
                fold(replica.blockchain.head.sequence,
                     replica.blockchain.head.block_hash.hex())
            manager = replica.control_layer
            if manager is not None:
                fold(sorted(manager.status.items()),
                     sorted((txn, entry[0])
                            for txn, entry in manager.accepted_decides.items()),
                     sorted(manager.rejected_decides))
    for pool in cluster.pools:
        fold(pool.node_id,
             [(r.batch_id, r.view, r.sequence, r.completed_at_ms)
              for r in pool.completions],
             sorted((txn, sorted(outcomes.items()))
                    for txn, outcomes in pool.xshard_outcomes.items()))
    if cluster.coordinator is not None:
        fold(sorted((txn, entry["decision"], entry["shards"])
                    for txn, entry in cluster.coordinator.journal.items()))
    return hasher.hexdigest()
