"""Multi-group sharded deployments: S consensus groups plus cross-shard 2PC.

A :class:`ShardedCluster` partitions the keyspace across ``S`` independent
consensus groups ("shards"), each running any of the registered protocols
over its own namespaced replica set, all advancing on **one** deterministic
:class:`~repro.net.simulator.Simulator`.  Single-shard batches follow the
ordinary client path inside their shard.  Cross-shard transactions run
two-phase commit over the shards' consensus instances:

* **prepare** — the coordinator consensus-commits a PREPARE record in every
  touched shard; the shard's replicas transition the transaction to
  *prepared* (or refuse it) as a deterministic function of their log.
* **decide** — once every shard reports prepared, the coordinator
  consensus-commits a COMMIT record carrying, per shard, ``f + 1`` distinct
  replica attestations of the prepare outcome; any refusal yields an ABORT
  record instead.  Replicas validate the certificate before applying the
  decision (:func:`~repro.workload.xshard.decide_record_valid`), which is
  what stops a Byzantine coordinator from equivocating commit to one shard
  and abort to another.

Coordinator failure is survived by the submitting client pool: after two
request timeouts it PROBEs every touched shard (unprepared shards refuse —
presumed abort), derives the only certificate-consistent decision, and
writes the decide records itself.

Since the parallel-simulation refactor each shard owns its **own**
:class:`~repro.net.simulator.Simulator` (a :class:`ShardRuntime`); the
client pools and the coordinator live on a hub network hosted by the home
runtime (shard 0).  All cross-runtime traffic crosses an explicit
:class:`ShardBoundary` with deterministic, RNG-free send→deliver
timestamps, and every driver — the in-process sequential reference here,
the multiprocessing driver in :mod:`repro.fabric.parallel` — advances the
runtimes through the same conservative time windows
(:func:`run_windows`), which is why their fingerprints are byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.metrics import MetricsWindow, RunResult, summarize
from repro.fabric.registry import ProtocolSpec, get_spec
from repro.net.byzantine import ByzantineSpec, make_behavior
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.network import SimNetwork
from repro.net.simulator import Simulator
from repro.protocols.base import ClientNode, NodeConfig
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.quorum import VoteSet
from repro.workload.clients import CompletionRecord, ShardedClientPool
from repro.workload.xshard import (
    ABORT,
    COMMIT,
    PREPARE,
    CoordAck,
    CoordSubmit,
    CrossShardPlan,
    ShardLayout,
    ShardTxnManager,
    decode_outcome,
    make_control_batch,
    parse_control_batch_id,
    synthetic_sharded_source,
    ycsb_sharded_source,
)
from repro.workload.ycsb import YcsbConfig, YcsbWorkload


def coordinator_id(index: int = 0) -> str:
    """Canonical coordinator identifier."""
    return f"coord:{index}"


def pool_id(index: int) -> str:
    """Canonical sharded client-pool identifier."""
    return f"pool:{index}"


# -- coordinator -------------------------------------------------------------------

@dataclass(slots=True)
class _CoordTxn:
    """Coordinator-side book-keeping for one in-flight 2PC."""

    plan: CrossShardPlan
    reply_pool: str
    submitted_at_ms: float
    mode: str = "prepare"  # "prepare" | "decide"
    votes: Dict[Tuple, VoteSet] = field(default_factory=dict)
    phase_results: Dict[int, Tuple[str, Tuple[str, ...]]] = field(default_factory=dict)
    decision: str = ""
    cert: Tuple = ()
    retries: int = 0


class ShardCoordinator(ClientNode):
    """Drives two-phase commit for cross-shard transactions.

    The coordinator is an ordinary client of every shard: the PREPARE
    record is a consensus-committed batch whose replies (stamped with the
    per-replica prepare outcome) it counts per shard.  Decide records
    carry the submitting pool as ``reply_to``, so the pool — not the
    coordinator — observes decide completion and acknowledges with
    :class:`~repro.workload.xshard.CoordAck`.  Until that ack arrives the
    coordinator retransmits with exponential backoff, which makes the
    decide phase survive message loss without any extra machinery.

    ``journal`` keeps every decision and its certificate for the safety
    auditor.
    """

    #: Retransmission rounds before an undecided transaction is abandoned
    #: to the pool's probe-based recovery.
    MAX_RETRIES = 8

    def __init__(self, node_id: str, config: NodeConfig, layout: ShardLayout,
                 timeout_ms: Optional[float] = None) -> None:
        super().__init__(node_id, config)
        self.layout = layout
        self.timeout_ms = timeout_ms if timeout_ms is not None else config.request_timeout_ms
        #: txn -> {"decision", "cert", "shards", "decided_at_ms"}.
        self.journal: Dict[str, Dict[str, object]] = {}
        self._views = [0] * layout.num_shards
        self._pending: Dict[str, _CoordTxn] = {}

    # -- messages ----------------------------------------------------------------
    def on_message(self, sender: str, message, now_ms: float) -> None:
        if isinstance(message, CoordSubmit):
            self._on_submit(message, now_ms)
        elif isinstance(message, CoordAck):
            self._on_ack(message.txn)
        elif isinstance(message, ClientReplyMessage):
            self._on_reply(sender, message, now_ms)

    def _on_submit(self, message: CoordSubmit, now_ms: float) -> None:
        plan = message.plan
        if plan is None or plan.txn in self._pending:
            return
        pending = _CoordTxn(plan=plan, reply_pool=message.reply_to,
                            submitted_at_ms=now_ms)
        self._pending[plan.txn] = pending
        entry = self.journal.get(plan.txn)
        if entry is not None:
            # Already decided in a previous life of this transaction
            # (duplicate submit): replay the recorded decision.
            pending.mode = "decide"
            pending.decision = str(entry["decision"])
            pending.cert = tuple(entry["cert"])  # type: ignore[arg-type]
            self._send_decides(pending, now_ms, retransmission=True)
        else:
            self._send_prepares(pending, now_ms, retransmission=False)
        self.set_timer(f"txn:{plan.txn}", self.timeout_ms, payload=plan.txn)

    def _on_ack(self, txn: str) -> None:
        if self._pending.pop(txn, None) is not None:
            self.cancel_timer(f"txn:{txn}")

    def _on_reply(self, sender: str, message: ClientReplyMessage,
                  now_ms: float) -> None:
        parsed = parse_control_batch_id(message.batch_id)
        if parsed is None:
            return
        txn, phase, shard = parsed
        pending = self._pending.get(txn)
        if (pending is None or pending.mode != "prepare" or phase != PREPARE
                or not 0 <= shard < self.layout.num_shards):
            return
        key = message.matching_key()
        votes = pending.votes.get(key)
        if votes is None:
            votes = pending.votes[key] = VoteSet(self.layout.index_map(shard))
        votes.add(sender)
        if message.view > self._views[shard]:
            self._views[shard] = message.view
        if votes.count < self.layout.reply_quorum(shard):
            return
        outcome = decode_outcome(message.result_digest, txn, phase, shard)
        if outcome is None or shard in pending.phase_results:
            return
        pending.phase_results[shard] = (outcome, tuple(sorted(votes)))
        if all(s in pending.phase_results for s in pending.plan.shards):
            self._decide(txn, pending, now_ms)

    # -- 2PC phases --------------------------------------------------------------
    def _send_prepares(self, pending: _CoordTxn, now_ms: float,
                       retransmission: bool) -> None:
        for shard in pending.plan.shards:
            if shard in pending.phase_results:
                continue
            batch = make_control_batch(
                pending.plan.txn, PREPARE, shard, pending.plan.shards,
                reply_to=self.node_id, created_at_ms=now_ms)
            self._send_control(shard, batch, self.node_id, retransmission)

    def _decide(self, txn: str, pending: _CoordTxn, now_ms: float) -> None:
        outcomes = [pending.phase_results[s][0] for s in pending.plan.shards]
        if any(o == "committed" for o in outcomes):
            decision = COMMIT
        elif any(o in ("refused", "aborted") for o in outcomes):
            decision = ABORT
        else:
            decision = COMMIT
        pending.decision = decision
        pending.cert = tuple(
            (shard,) + pending.phase_results[shard]
            for shard in pending.plan.shards)
        pending.mode = "decide"
        self.journal[txn] = {
            "decision": decision,
            "cert": pending.cert,
            "shards": pending.plan.shards,
            "decided_at_ms": now_ms,
        }
        self._send_decides(pending, now_ms, retransmission=False)

    def _send_decides(self, pending: _CoordTxn, now_ms: float,
                      retransmission: bool) -> None:
        for shard in pending.plan.shards:
            payload = (pending.plan.slice_for(shard)
                       if pending.decision == COMMIT else ())
            batch = make_control_batch(
                pending.plan.txn, pending.decision, shard, pending.plan.shards,
                cert=pending.cert, payload_txns=payload,
                reply_to=pending.reply_pool, created_at_ms=now_ms)
            self._send_control(shard, batch, pending.reply_pool, retransmission)

    def _send_control(self, shard: int, batch, reply_to: str,
                      retransmission: bool) -> None:
        from repro.protocols.client_messages import ClientRequestMessage

        message = ClientRequestMessage(
            batch=batch,
            reply_to=reply_to,
            retransmission=retransmission,
            size_bytes=self.config.proposal_size_bytes(1),
        )
        if retransmission or self.layout.wants_broadcast(shard):
            for rid in self.layout.replicas(shard):
                self.send(rid, message)
        else:
            self.send(self.layout.primary(shard, self._views[shard]), message)

    # -- timeouts ----------------------------------------------------------------
    def on_timer(self, name: str, payload, now_ms: float) -> None:
        if not name.startswith("txn:"):
            return
        pending = self._pending.get(payload)
        if pending is None:
            return
        pending.retries += 1
        if pending.retries > self.MAX_RETRIES:
            # Hand the transaction over to the pool's probe-based recovery
            # rather than retrying forever; the journal keeps the decision.
            del self._pending[payload]
            return
        if pending.mode == "prepare":
            self._send_prepares(pending, now_ms, retransmission=True)
        else:
            self._send_decides(pending, now_ms, retransmission=True)
        backoff = self.timeout_ms * (2 ** min(pending.retries, 4))
        self.set_timer(f"txn:{payload}", backoff, payload=payload)


# -- configuration -----------------------------------------------------------------

@dataclass
class ShardedClusterConfig:
    """Parameters of one sharded deployment.

    Attributes:
        num_shards: number of consensus groups ``S``.
        protocols: protocol key per shard; a single string applies to all
            shards.  SBFT is rejected: its aggregated single-reply path
            cannot yield the ``f + 1`` distinct replica attestations the
            cross-shard certificates are built from.
        num_replicas: replicas per shard.
        cross_shard_fraction: probability that a generated request is a
            two-shard transaction instead of a single-shard batch.
        use_coordinator: drive 2PC through a dedicated coordinator node
            (``False`` = the pools always self-drive).
        shard_faults / shard_byzantine: per-shard fault schedule and
            Byzantine replica spec, keyed by shard index.
        hub_faults: fault schedule of the client/coordinator network —
            crash ``coord:0`` here for the crash-mid-2PC scenarios.
        coordinator_behavior: optional Byzantine behaviour name installed
            on the coordinator's network boundary (e.g.
            ``"equivocate-coordinator"``, ``"stall-coordinator"``).
    """

    num_shards: int = 2
    protocols: Union[str, Tuple[str, ...]] = "poe-mac"
    num_replicas: int = 4
    batch_size: int = 16
    num_pools: int = 1
    client_outstanding: int = 4
    total_batches: Optional[int] = 40
    cross_shard_fraction: float = 0.2
    use_coordinator: bool = True
    execute_operations: bool = False
    use_ycsb_payload: bool = False
    out_of_order: bool = True
    request_timeout_ms: float = 3000.0
    checkpoint_interval: int = 50
    conditions: Optional[NetworkConditions] = None
    shard_faults: Dict[int, FaultSchedule] = field(default_factory=dict)
    shard_byzantine: Dict[int, ByzantineSpec] = field(default_factory=dict)
    hub_faults: Optional[FaultSchedule] = None
    coordinator_behavior: Optional[str] = None
    coordinator_behavior_options: Dict[str, object] = field(default_factory=dict)
    ycsb: Optional[YcsbConfig] = None
    seed: int = 1

    def protocol_for(self, shard: int) -> str:
        if isinstance(self.protocols, str):
            return self.protocols
        return self.protocols[shard]

    def pool_ids(self) -> List[str]:
        return [pool_id(i) for i in range(self.num_pools)]


# -- shard boundary ----------------------------------------------------------------

#: The runtime hosting the hub network (client pools + coordinator).
HOME_SHARD = 0


@dataclass(frozen=True)
class BoundaryEvent:
    """One message crossing between shard runtimes.

    Timestamps are fixed by the *sending* runtime (deterministically, see
    :meth:`ShardBoundary.transmit`), so the receiving runtime — whichever
    process it runs in — schedules delivery identically.  ``(deliver_at_ms,
    source, send_seq)`` is the canonical inbox order: the drivers sort every
    window's inbox by it before injection, which pins the receiving
    simulator's tie-breaking sequence numbers across drivers.
    """

    deliver_at_ms: float
    source: int
    send_seq: int
    sender: str
    receiver: str
    message: object
    send_time_ms: float


def boundary_event_order(event: BoundaryEvent) -> Tuple[float, int, int]:
    """Canonical injection order for one window's inbox."""
    return (event.deliver_at_ms, event.source, event.send_seq)


def runtime_of(node_id: str) -> int:
    """Map a node id to the index of its home runtime.

    Shard replicas are namespaced ``s<k>/...``; everything else (pools,
    the coordinator, unknown receivers) lives on the hub, i.e. the home
    runtime.
    """
    if node_id.startswith("s"):
        slash = node_id.find("/")
        if slash > 1:
            try:
                return int(node_id[1:slash])
            except ValueError:
                pass
    return HOME_SHARD


class ShardBoundary:
    """The deterministic cross-shard channel of one runtime.

    Attached as ``network.boundary`` to every network the runtime hosts.
    A send whose receiver is not registered on the origin network lands
    here; the boundary stamps it with an RNG-free delay (base latency —
    overrides and topology apply, jitter and loss do not — plus
    serialization, :meth:`NetworkConditions.boundary_delay_ms`) and either

    * delivers it directly when the receiver lives on a *sibling network
      of the same runtime* (the hub and shard 0 share the home simulator —
      this fast path is runtime-internal and therefore driver-independent), or
    * appends it to the runtime's outbox, to be exchanged at the next
      window barrier.

    Every delay is at least :attr:`lookahead_ms`, which is what makes the
    conservative windows of :func:`run_windows` safe: a message sent in
    the window ``(T, E]`` with ``E = t_min + lookahead`` has
    ``send_time >= t_min`` and so delivers at or after ``E`` — no boundary
    message can ever target the window it was sent in.
    """

    def __init__(self, source: int, conditions: NetworkConditions) -> None:
        self.source = source
        self.conditions = conditions
        self.lookahead_ms = conditions.min_propagation_ms()
        if self.lookahead_ms <= 0:
            raise ValueError(
                "sharded deployments need a positive minimum cross-shard "
                "propagation delay (the conservative-window lookahead)")
        self._networks: List[SimNetwork] = []
        self._outbox: List[BoundaryEvent] = []
        self._seq = 0

    def attach(self, network: SimNetwork) -> None:
        """Host *network* on this boundary (its misses route through us)."""
        network.boundary = self
        self._networks.append(network)

    def transmit(self, origin: SimNetwork, sender: str, receiver: str,
                 message, ready_at: float) -> bool:
        """Route one cross-network send (the ``network.boundary`` hook)."""
        now = origin.sim.now
        send_time = ready_at if ready_at > now else now
        deliver_at = send_time + self.conditions.boundary_delay_ms(
            sender, receiver, message.size_bytes, send_time)
        for network in self._networks:
            if network is origin:
                continue
            if receiver in network._nodes:
                network.deliver_boundary(sender, receiver, message,
                                         send_time, deliver_at)
                return True
        seq = self._seq
        self._seq = seq + 1
        self._outbox.append(BoundaryEvent(
            deliver_at_ms=deliver_at, source=self.source, send_seq=seq,
            sender=sender, receiver=receiver, message=message,
            send_time_ms=send_time))
        return True

    def inject(self, event: BoundaryEvent) -> None:
        """Deliver an inbound boundary event into its home network."""
        for network in self._networks:
            if event.receiver in network._nodes:
                network.deliver_boundary(event.sender, event.receiver,
                                         event.message, event.send_time_ms,
                                         event.deliver_at_ms)
                return
        self._networks[0].dropped_count += 1

    def take_outbox(self) -> List[BoundaryEvent]:
        outbox = self._outbox
        self._outbox = []
        return outbox


# -- configuration helpers ---------------------------------------------------------

def _validate_config(config: ShardedClusterConfig) -> None:
    for shard in range(config.num_shards):
        if config.protocol_for(shard) == "sbft":
            raise ValueError(
                "sbft shards are unsupported: aggregated replies cannot "
                "produce the f+1 distinct attestations cross-shard "
                "certificates require")


def _hub_conditions(config: ShardedClusterConfig) -> NetworkConditions:
    # dataclasses.replace re-runs __post_init__, so a shared config object
    # yields per-runtime conditions with *independent but identically
    # seeded* RNGs — each runtime draws the same stream under every driver.
    if config.conditions is not None:
        return replace(config.conditions)
    return NetworkConditions.lan(seed=config.seed)


def _shard_conditions(config: ShardedClusterConfig, shard: int) -> NetworkConditions:
    # Every shard draws from its own conditions RNG so shard k's traffic
    # cannot perturb shard j's latency stream.
    if config.conditions is not None:
        return replace(config.conditions)
    return NetworkConditions.lan(seed=config.seed * 101 + shard)


def _ycsb_config(config: ShardedClusterConfig) -> Optional[YcsbConfig]:
    if not (config.execute_operations or config.use_ycsb_payload):
        return None
    # One shared YCSB universe: every shard's replicas hold the same
    # initial table, and the sharded sources route keys by crc32.
    return config.ycsb or YcsbConfig.small(seed=config.seed)


def _pool_source(config: ShardedClusterConfig, pid: str):
    if not config.use_ycsb_payload:
        return synthetic_sharded_source(
            pid, config.num_shards, config.batch_size,
            config.cross_shard_fraction, seed=config.seed)
    workload = YcsbWorkload(_ycsb_config(config), client_id=pid)
    return ycsb_sharded_source(
        workload, config.num_shards, config.batch_size,
        config.cross_shard_fraction, seed=config.seed)


def _shard_cluster_config(config: ShardedClusterConfig, shard: int) -> ClusterConfig:
    return ClusterConfig(
        protocol=config.protocol_for(shard),
        num_replicas=config.num_replicas,
        batch_size=config.batch_size,
        num_clients=0,
        total_batches=None,
        out_of_order=config.out_of_order,
        execute_operations=config.execute_operations,
        request_timeout_ms=config.request_timeout_ms,
        checkpoint_interval=config.checkpoint_interval,
        conditions=_shard_conditions(config, shard),
        faults=config.shard_faults.get(shard),
        byzantine=config.shard_byzantine.get(shard),
        ycsb=_ycsb_config(config),
        seed=config.seed,
        namespace=f"s{shard}/",
    )


def _reply_quorum(rule: Optional[str], n: int) -> int:
    f = (n - 1) // 3
    rule = rule or "f+1"
    if rule == "nf":
        return n - f
    if rule == "f+1":
        return f + 1
    if rule == "n":
        return n
    raise ValueError(f"unsupported client quorum {rule!r} for sharding")


def layout_for_config(config: ShardedClusterConfig) -> ShardLayout:
    """The shard layout implied by a config, computed without building
    any cluster — every runtime (in-process or worker) derives the same
    layout from the config alone."""
    members = []
    quorums = []
    broadcast = []
    for shard in range(config.num_shards):
        spec: ProtocolSpec = get_spec(config.protocol_for(shard))
        n = config.num_replicas
        members.append(tuple(
            f"s{shard}/" + replica_id(i) for i in range(n)))
        quorums.append(_reply_quorum(spec.client_quorum, n))
        broadcast.append(bool(spec.broadcast_requests))
    return ShardLayout(
        members=tuple(members),
        reply_quorums=tuple(quorums),
        broadcast_requests=tuple(broadcast),
    )


def hub_node_config(config: ShardedClusterConfig,
                    layout: ShardLayout) -> NodeConfig:
    """The NodeConfig shared by hub-side nodes (pools, coordinator)."""
    return NodeConfig(
        replica_ids=[rid for shard in layout.members for rid in shard],
        batch_size=config.batch_size,
        request_timeout_ms=config.request_timeout_ms,
        checkpoint_interval=config.checkpoint_interval,
        execute_operations=config.execute_operations,
        out_of_order=config.out_of_order,
    )


# -- per-shard runtime -------------------------------------------------------------

@dataclass
class WindowResult:
    """What one runtime reports back at a window barrier (picklable)."""

    outbox: List[BoundaryEvent]
    next_event_ms: Optional[float]
    pools_done: bool
    now_ms: float
    processed_events: int


class ShardRuntime:
    """One shard's self-contained simulation: simulator, consensus group,
    boundary channel — and, on the home shard, the hub network with the
    client pools and the 2PC coordinator.

    A runtime is built identically from the config whether it lives
    in-process (sequential driver) or in a forked worker (parallel
    driver); everything it does between window barriers is a
    deterministic function of its config and the injected inbox.
    """

    def __init__(self, config: ShardedClusterConfig, shard: int,
                 layout: Optional[ShardLayout] = None) -> None:
        _validate_config(config)
        self.config = config
        self.shard = shard
        self.layout = layout if layout is not None else layout_for_config(config)
        self.simulator = Simulator()
        self.boundary = ShardBoundary(shard, _hub_conditions(config))
        self.cluster = Cluster(_shard_cluster_config(config, shard),
                               simulator=self.simulator)
        for replica in self.cluster.replicas:
            replica.control_layer = ShardTxnManager(shard, self.layout)
        self.boundary.attach(self.cluster.network)
        self.node_config = hub_node_config(config, self.layout)
        self.hub: Optional[SimNetwork] = None
        self.coordinator: Optional[ShardCoordinator] = None
        self.pools: List[ShardedClientPool] = []
        self.byzantine_ids: List[str] = list(self.cluster.byzantine_ids)
        if shard == HOME_SHARD:
            self._build_hub()

    def _build_hub(self) -> None:
        config = self.config
        self.hub = SimNetwork(
            self.simulator,
            conditions=_hub_conditions(config),
            faults=config.hub_faults or FaultSchedule.none(),
        )
        self.boundary.attach(self.hub)
        if config.use_coordinator:
            self.coordinator = ShardCoordinator(
                coordinator_id(), self.node_config, self.layout,
                timeout_ms=config.request_timeout_ms)
            self.hub.add_client(self.coordinator)
            self._attach_coordinator_behavior()
        for pid in config.pool_ids():
            pool = ShardedClientPool(
                node_id=pid,
                config=self.node_config,
                layout=self.layout,
                batch_source=_pool_source(config, pid),
                target_outstanding=config.client_outstanding,
                total_batches=config.total_batches,
                timeout_ms=config.request_timeout_ms,
                coordinator_id=self.coordinator.node_id if self.coordinator else "",
            )
            self.pools.append(pool)
            self.hub.add_client(pool)

    def _attach_coordinator_behavior(self) -> None:
        name = self.config.coordinator_behavior
        if not name or self.coordinator is None:
            return
        behavior = make_behavior(name, **self.config.coordinator_behavior_options)
        self.hub.set_byzantine(self.coordinator.node_id, behavior,
                               seed=self.config.seed)
        behavior.install(self.hub.node(self.coordinator.node_id))
        self.byzantine_ids.append(self.coordinator.node_id)

    # -- windowed execution ------------------------------------------------------
    @property
    def lookahead_ms(self) -> float:
        return self.boundary.lookahead_ms

    def start(self) -> WindowResult:
        """Boot every hosted node at t=0 and report the initial horizon."""
        self.cluster.start()
        if self.hub is not None:
            self.hub.start_all()
        return self._window_result()

    def window(self, edge_ms: float, inbox: Sequence[BoundaryEvent]) -> WindowResult:
        """Inject one barrier's inbox, then advance to *edge_ms*.

        The inbox must already be in canonical order
        (:func:`boundary_event_order`); injection order assigns the
        receiving simulator's tie-breaking sequence numbers, so it has to
        match across drivers.
        """
        for event in inbox:
            self.boundary.inject(event)
        self.simulator.run(until_ms=edge_ms)
        return self._window_result()

    def _window_result(self) -> WindowResult:
        done = all(pool.is_done() for pool in self.pools)
        return WindowResult(
            outbox=self.boundary.take_outbox(),
            next_event_ms=self.simulator.next_event_time(),
            pools_done=done,
            now_ms=self.simulator.now,
            processed_events=self.simulator.processed_events,
        )


def run_windows(results: List[WindowResult], window_all,
                num_runtimes: int, lookahead_ms: float,
                deadline_ms: float) -> List[WindowResult]:
    """Advance all runtimes through conservative windows until done.

    The single windowing loop shared by both drivers: given the
    :class:`WindowResult` list from ``start()`` (or a previous call) and a
    ``window_all(edge_ms, inboxes) -> results`` callback that advances
    every runtime to the window edge, it exchanges outboxes into
    per-runtime inboxes at each barrier and picks the next edge as
    ``min(horizons) + lookahead`` — where the horizons are every runtime's
    next live event plus every in-flight boundary event.  It stops when

    * every pool reported its budget complete, or
    * all runtimes are quiescent and the boundary channels are empty
      (nothing can ever happen again), or
    * the next horizon lies at or beyond *deadline_ms*.

    The completion predicate is therefore identical under the sequential
    and the parallel driver — both ask the same per-runtime questions at
    the same barriers.
    """
    while True:
        inboxes: List[List[BoundaryEvent]] = [[] for _ in range(num_runtimes)]
        for result in results:
            for event in result.outbox:
                inboxes[runtime_of(event.receiver)].append(event)
        for inbox in inboxes:
            inbox.sort(key=boundary_event_order)
        if all(result.pools_done for result in results):
            break
        horizons = [result.next_event_ms for result in results
                    if result.next_event_ms is not None]
        for inbox in inboxes:
            for event in inbox:
                horizons.append(event.deliver_at_ms)
        if not horizons:
            break
        t_min = min(horizons)
        if t_min >= deadline_ms:
            break
        edge = t_min + lookahead_ms
        if edge > deadline_ms:
            edge = deadline_ms
        results = window_all(edge, inboxes)
    return results


# -- the sharded cluster (sequential reference driver) -----------------------------

class ShardedCluster:
    """S per-shard runtimes, a coordinator and sharded client pools.

    Each shard advances on its **own** :class:`Simulator` inside a
    :class:`ShardRuntime`; the client pools and the coordinator live on a
    hub network hosted by the home runtime.  Cross-runtime traffic crosses
    the deterministic :class:`ShardBoundary`, and :meth:`run_until_done`
    advances all runtimes through the shared conservative window loop
    (:func:`run_windows`) — in-process, in shard order.  This is the
    reference implementation the multiprocessing driver
    (:mod:`repro.fabric.parallel`) must match byte for byte.
    """

    def __init__(self, config: ShardedClusterConfig) -> None:
        _validate_config(config)
        self.config = config
        self.layout = layout_for_config(config)
        self.runtimes: List[ShardRuntime] = [
            ShardRuntime(config, shard, layout=self.layout)
            for shard in range(config.num_shards)]
        home = self.runtimes[HOME_SHARD]
        self.shard_clusters: List[Cluster] = [
            runtime.cluster for runtime in self.runtimes]
        self.hub = home.hub
        self.node_config = home.node_config
        self.coordinator = home.coordinator
        self.pools = home.pools
        self.byzantine_ids: List[str] = [
            rid for cluster in self.shard_clusters for rid in cluster.byzantine_ids]
        if self.coordinator is not None and config.coordinator_behavior:
            self.byzantine_ids.append(self.coordinator.node_id)
        self._results: Optional[List[WindowResult]] = None

    # -- introspection -----------------------------------------------------------
    @property
    def lookahead_ms(self) -> float:
        return self.runtimes[0].lookahead_ms

    @property
    def now(self) -> float:
        """Virtual time (all runtimes share each window edge)."""
        return max(runtime.simulator.now for runtime in self.runtimes)

    @property
    def processed_events(self) -> int:
        """Total events executed across every runtime's simulator."""
        return sum(runtime.simulator.processed_events
                   for runtime in self.runtimes)

    @property
    def shard_processed_events(self) -> List[int]:
        """Per-runtime event counts, in shard order (home runtime first)."""
        return [runtime.simulator.processed_events
                for runtime in self.runtimes]

    @property
    def shard_clocks(self) -> List[float]:
        return [runtime.simulator.now for runtime in self.runtimes]

    # -- running -----------------------------------------------------------------
    def start(self) -> None:
        """Boot every runtime (shards, then hub nodes on the home shard)."""
        self._results = [runtime.start() for runtime in self.runtimes]

    def run_until_done(self, max_ms: float = 600_000.0) -> float:
        """Advance conservative windows until every pool is done, all
        runtimes are quiescent with empty boundary channels, or *max_ms*
        of virtual time elapsed."""
        if self._results is None:
            raise RuntimeError("call start() before run_until_done()")

        def window_all(edge_ms: float,
                       inboxes: List[List[BoundaryEvent]]) -> List[WindowResult]:
            return [runtime.window(edge_ms, inbox)
                    for runtime, inbox in zip(self.runtimes, inboxes)]

        self._results = run_windows(
            self._results, window_all, len(self.runtimes),
            self.lookahead_ms, self.now + max_ms)
        return self.now

    # -- results -----------------------------------------------------------------
    def completions(self) -> List[CompletionRecord]:
        records: List[CompletionRecord] = []
        for pool in self.pools:
            records.extend(pool.completions)
        records.sort(key=lambda record: record.completed_at_ms)
        return records

    def result(self, window: Optional[MetricsWindow] = None,
               warmup_fraction: float = 0.1,
               metadata: Optional[Dict[str, object]] = None) -> RunResult:
        return summarize_sharded(
            self.config, self.completions(),
            [cluster.config.protocol for cluster in self.shard_clusters],
            window=window, warmup_fraction=warmup_fraction,
            metadata=metadata)


def summarize_sharded(config: ShardedClusterConfig,
                      records: List[CompletionRecord],
                      protocols: List[str],
                      window: Optional[MetricsWindow] = None,
                      warmup_fraction: float = 0.1,
                      metadata: Optional[Dict[str, object]] = None) -> RunResult:
    """Summarise a sharded run's completions (shared by both drivers)."""
    if window is None and records:
        start_index = int(len(records) * warmup_fraction)
        start_index = min(start_index, len(records) - 1)
        measured = records[start_index:]
        last_submission = max(record.submitted_at_ms for record in measured)
        window = MetricsWindow(
            start_ms=min(measured[0].completed_at_ms, last_submission),
            end_ms=measured[-1].completed_at_ms,
        )
    info = {
        "batch_size": config.batch_size,
        "num_shards": config.num_shards,
        "cross_shard_fraction": config.cross_shard_fraction,
    }
    info.update(metadata or {})
    return summarize(
        protocol=f"sharded[{'+'.join(protocols)}]",
        n=config.num_shards * config.num_replicas,
        completions=records,
        window=window,
        metadata=info,
    )


def fingerprint_state(run) -> str:
    """Hash everything observable about a finished sharded run.

    *run* is either a :class:`ShardedCluster` or the parallel driver's
    artifact view — anything exposing ``shard_processed_events``,
    ``shard_clocks``, ``shard_clusters`` (each with ``replicas``),
    ``pools`` and ``coordinator``.  Both drivers fold the exact same
    state, which is what the byte-identical acceptance test compares.
    """
    hasher = hashlib.sha256()

    def fold(*parts: object) -> None:
        for part in parts:
            hasher.update(repr(part).encode())
            hasher.update(b"|")

    fold("events", tuple(run.shard_processed_events), tuple(run.shard_clocks))
    for shard_cluster in run.shard_clusters:
        for replica in shard_cluster.replicas:
            fold(replica.node_id, replica.crashed,
                 replica.last_executed_sequence)
            if not replica.crashed:
                fold(replica.blockchain.head.sequence,
                     replica.blockchain.head.block_hash.hex())
            manager = replica.control_layer
            if manager is not None:
                fold(sorted(manager.status.items()),
                     sorted((txn, entry[0])
                            for txn, entry in manager.accepted_decides.items()),
                     sorted(manager.rejected_decides))
    for pool in run.pools:
        fold(pool.node_id,
             [(r.batch_id, r.view, r.sequence, r.completed_at_ms)
              for r in pool.completions],
             sorted((txn, sorted(outcomes.items()))
                    for txn, outcomes in pool.xshard_outcomes.items()))
    if run.coordinator is not None:
        fold(sorted((txn, entry["decision"], entry["shards"])
                    for txn, entry in run.coordinator.journal.items()))
    return hasher.hexdigest()


def sharded_fingerprint(config: ShardedClusterConfig,
                        max_ms: float = 600_000.0,
                        driver: str = "sequential") -> str:
    """Run a sharded deployment and hash everything observable about it.

    Folds per-replica ledger heads and 2PC journals, pool completions and
    cross-shard outcomes, the coordinator journal and per-runtime event
    counts into one digest.  Two runs of the same config must produce the
    same fingerprint — under *either* driver (``"sequential"`` or
    ``"parallel"``): that cross-driver equality is the acceptance test of
    the parallel executor.
    """
    if driver == "parallel":
        from repro.fabric.parallel import run_parallel

        return fingerprint_state(run_parallel(config, max_ms=max_ms))
    if driver != "sequential":
        raise ValueError(f"unknown sharded driver {driver!r}")
    cluster = ShardedCluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    return fingerprint_state(cluster)
