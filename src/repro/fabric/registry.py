"""Registry of the protocols the evaluation compares.

Maps a protocol name to everything the cluster builder needs: the replica
class, the client-pool class (each protocol has its own completion rule),
whether clients must broadcast their requests, and protocol-specific
constructor arguments.  This mirrors the paper's selection of protocols
(Section IV): PoE, PBFT, Zyzzyva, SBFT and HotStuff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.client import PoeClientPool
from repro.core.replica import PoeReplica
from repro.crypto.authenticator import SchemeKind
from repro.protocols.base import NodeConfig, ProtocolInfo
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.pbft import PbftClientPool, PbftReplica
from repro.protocols.sbft import SbftClientPool, SbftReplica
from repro.protocols.zyzzyva import ZyzzyvaClientPool, ZyzzyvaReplica
from repro.workload.clients import ClientPool


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything needed to instantiate one protocol in the fabric."""

    name: str
    replica_cls: type
    client_pool_cls: type
    broadcast_requests: bool = False
    replica_kwargs: Dict[str, object] = field(default_factory=dict)
    client_quorum: Optional[str] = None  # "nf", "f+1", "n", "1" (informational)

    @property
    def info(self) -> ProtocolInfo:
        return self.replica_cls.PROTOCOL_INFO


class HotStuffClientPool(ClientPool):
    """HotStuff clients broadcast requests and need ``f + 1`` matching replies."""

    def __init__(self, node_id: str, config: NodeConfig, batch_source=None,
                 target_outstanding: int = 8, total_batches=None,
                 timeout_ms=None) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=config.f + 1,
            target_outstanding=target_outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
            broadcast_requests=True,
            completion_quorum_fn=lambda epoch: config.f_of(epoch) + 1,
        )


PROTOCOLS: Dict[str, ProtocolSpec] = {
    "poe": ProtocolSpec(
        name="PoE",
        replica_cls=PoeReplica,
        client_pool_cls=PoeClientPool,
        # scheme=None lets PoE pick MACs for small deployments and
        # threshold signatures for large ones (paper, ingredient I3).
        replica_kwargs={"scheme": None},
        client_quorum="nf",
    ),
    "poe-ts": ProtocolSpec(
        name="PoE-TS",
        replica_cls=PoeReplica,
        client_pool_cls=PoeClientPool,
        replica_kwargs={"scheme": SchemeKind.THRESHOLD},
        client_quorum="nf",
    ),
    "poe-mac": ProtocolSpec(
        name="PoE-MAC",
        replica_cls=PoeReplica,
        client_pool_cls=PoeClientPool,
        replica_kwargs={"scheme": SchemeKind.MACS},
        client_quorum="nf",
    ),
    "poe-nospec": ProtocolSpec(
        name="PoE-NoSpec",
        replica_cls=PoeReplica,
        client_pool_cls=PoeClientPool,
        # Ablation: disable speculative execution (ingredient I1) by adding a
        # PBFT-style commit phase after the view-commit.
        replica_kwargs={"scheme": None, "speculative": False},
        client_quorum="nf",
    ),
    "pbft": ProtocolSpec(
        name="PBFT",
        replica_cls=PbftReplica,
        client_pool_cls=PbftClientPool,
        client_quorum="f+1",
    ),
    "zyzzyva": ProtocolSpec(
        name="Zyzzyva",
        replica_cls=ZyzzyvaReplica,
        client_pool_cls=ZyzzyvaClientPool,
        client_quorum="n",
    ),
    "sbft": ProtocolSpec(
        name="SBFT",
        replica_cls=SbftReplica,
        client_pool_cls=SbftClientPool,
        client_quorum="1",
    ),
    "hotstuff": ProtocolSpec(
        name="HotStuff",
        replica_cls=HotStuffReplica,
        client_pool_cls=HotStuffClientPool,
        broadcast_requests=True,
        client_quorum="f+1",
    ),
}


def protocol_names(include_mac_variant: bool = False) -> List[str]:
    """The protocol keys in the order the paper's figures list them."""
    names = ["poe", "pbft", "sbft", "hotstuff", "zyzzyva"]
    if include_mac_variant:
        names.insert(1, "poe-mac")
    return names


def get_spec(name: str) -> ProtocolSpec:
    """Look up a protocol spec by (case-insensitive) name."""
    key = name.lower()
    if key not in PROTOCOLS:
        raise KeyError(f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}")
    return PROTOCOLS[key]
