"""The paper's experiment configurations, runnable in one call.

Every throughput/latency experiment in Section IV is a combination of a
few dimensions: protocol, number of replicas, standard vs zero payload,
single-backup failure vs failure free, batch size, and whether
out-of-order processing is available.  :class:`ExperimentConfig` captures
one such point and :func:`run_experiment` executes it on the simulated
fabric, returning a :class:`~repro.fabric.metrics.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.crypto.cost import CryptoCostModel
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.metrics import RunResult
from repro.fabric.registry import protocol_names
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule


@dataclass(frozen=True)
class ExperimentConfig:
    """One point in the paper's evaluation space.

    Attributes:
        protocol: protocol key (see :mod:`repro.fabric.registry`).
        num_replicas: number of replicas ``n``.
        batch_size: transactions per consensus slot (paper default 100).
        single_backup_failure: crash one backup replica before the run
            starts (the paper's "Single Failure" configuration).
        zero_payload: proposals carry no request data, replicas execute
            dummy instructions (Figures 9(e)-(h)).
        out_of_order: whether the primary may process requests
            out-of-order; disabling it reproduces Figures 9(k), 9(l).
        num_batches: how many batches the client pool submits; the run is
            count-based and throughput is measured over the completion
            window after warm-up.
        client_outstanding: batches kept in flight by the client pool.
        latency_ms: one-way network delay between replicas.
        bandwidth_mbps: effective per-node uplink goodput; the primary's
            broadcast of standard-payload proposals is charged against it.
        request_timeout_ms: client/replica timeout.
        cost_scale: global multiplier on crypto CPU costs.
        seed: RNG seed.
    """

    protocol: str = "poe"
    num_replicas: int = 16
    batch_size: int = 100
    single_backup_failure: bool = False
    zero_payload: bool = False
    out_of_order: bool = True
    num_batches: int = 120
    client_outstanding: int = 32
    latency_ms: float = 1.0
    bandwidth_mbps: float = 2000.0
    request_timeout_ms: float = 3000.0
    cost_scale: float = 1.0
    seed: int = 1

    def describe(self) -> str:
        failure = "1 backup crashed" if self.single_backup_failure else "no failures"
        payload = "zero payload" if self.zero_payload else "standard payload"
        return (f"{self.protocol} n={self.num_replicas} batch={self.batch_size} "
                f"({failure}, {payload})")


def _fault_schedule(config: ExperimentConfig) -> FaultSchedule:
    """Crash the last replica; it is a backup and (for SBFT) not the executor."""
    if not config.single_backup_failure:
        return FaultSchedule.none()
    crashed = replica_id(config.num_replicas - 1)
    return FaultSchedule.single_backup_crash(crashed, at_ms=0.0)


def build_cluster(config: ExperimentConfig,
                  cost_model: Optional[CryptoCostModel] = None) -> Cluster:
    """Build (but do not run) the cluster for one experiment point."""
    conditions = NetworkConditions(
        latency_ms=config.latency_ms,
        jitter_ms=config.latency_ms * 0.1,
        bandwidth_mbps=config.bandwidth_mbps,
        seed=config.seed,
    )
    model = cost_model or CryptoCostModel.cmac().scaled(config.cost_scale)
    outstanding = config.client_outstanding if config.out_of_order else 1
    if not config.out_of_order and config.protocol == "hotstuff":
        # The paper allows HotStuff four outstanding requests because its
        # chained pipeline spans four rounds.
        outstanding = 4
    cluster_config = ClusterConfig(
        protocol=config.protocol,
        num_replicas=config.num_replicas,
        batch_size=config.batch_size,
        num_clients=1,
        client_outstanding=outstanding,
        total_batches=config.num_batches,
        zero_payload=config.zero_payload,
        out_of_order=config.out_of_order,
        execute_operations=False,
        request_timeout_ms=config.request_timeout_ms,
        conditions=conditions,
        faults=_fault_schedule(config),
        cost_model=model,
        seed=config.seed,
    )
    return Cluster(cluster_config)


def run_experiment(config: ExperimentConfig,
                   max_ms: float = 600_000.0,
                   warmup_fraction: float = 0.1) -> RunResult:
    """Run one experiment point and summarise it."""
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    metadata = {
        "single_backup_failure": config.single_backup_failure,
        "num_batches": config.num_batches,
        "description": config.describe(),
    }
    return cluster.result(warmup_fraction=warmup_fraction, metadata=metadata)


def run_protocol_comparison(
    base: ExperimentConfig,
    protocols: Optional[Iterable[str]] = None,
    max_ms: float = 600_000.0,
) -> Dict[str, RunResult]:
    """Run the same experiment point for several protocols."""
    selected = list(protocols) if protocols is not None else protocol_names()
    results: Dict[str, RunResult] = {}
    for name in selected:
        results[name] = run_experiment(replace(base, protocol=name), max_ms=max_ms)
    return results


def scaling_sweep(
    base: ExperimentConfig,
    replica_counts: Iterable[int],
    protocols: Optional[Iterable[str]] = None,
    max_ms: float = 600_000.0,
) -> List[RunResult]:
    """Sweep the number of replicas for several protocols (Figure 9 style)."""
    results: List[RunResult] = []
    for n in replica_counts:
        for name in (list(protocols) if protocols is not None else protocol_names()):
            config = replace(base, protocol=name, num_replicas=n)
            results.append(run_experiment(config, max_ms=max_ms))
    return results


def batching_sweep(
    base: ExperimentConfig,
    batch_sizes: Iterable[int],
    protocols: Optional[Iterable[str]] = None,
    max_ms: float = 600_000.0,
) -> List[RunResult]:
    """Sweep the batch size (Figures 9(i), 9(j))."""
    results: List[RunResult] = []
    for batch_size in batch_sizes:
        for name in (list(protocols) if protocols is not None else protocol_names()):
            config = replace(base, protocol=name, batch_size=batch_size)
            results.append(run_experiment(config, max_ms=max_ms))
    return results
