"""Canonical state fingerprints for determinism tests and model checking.

Two kinds of fingerprint live here, both hashable and both independent of
wall-clock:

* :func:`run_fingerprint` — the *whole-run* fingerprint the determinism
  suite pins: every completion record (identity, timing, view, sequence),
  the processed-event count, the final virtual clock and the summary
  metrics.  Any divergence in scheduling order shows up as a mismatch.
  This used to live in ``bench/perf.py``; the perf harness now imports it
  from here so the determinism tests and the benchmark driver hash runs
  the same way.

* :func:`replica_fingerprint` / :func:`cluster_state_fingerprint` — the
  *per-state* fingerprint the bounded model checker
  (:mod:`repro.fabric.modelcheck`) uses for visited-state deduplication:
  per-replica consensus-visible state (view, executed prefix, checkpoint
  state, in-flight view-change state), per-pool completion state, and the
  label multiset of pending scheduler events.  Virtual timestamps are
  deliberately excluded — two states that differ only in the clock are
  the same state to the checker.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.fabric.cluster import Cluster, ClusterConfig


# ------------------------------------------------------------- whole-run
def completion_records(cluster: Cluster) -> Tuple[Tuple, ...]:
    """The canonical per-completion tuple stream of a finished run."""
    return tuple(
        (r.batch_id, r.num_txns, r.submitted_at_ms, r.completed_at_ms,
         r.view, r.sequence)
        for r in cluster.completions()
    )


def run_fingerprint(config: ClusterConfig,
                    max_ms: float = 300_000.0) -> Tuple[Tuple, ...]:
    """Run *config* once and return a hashable fingerprint of the outcome.

    The fingerprint covers every completion record (identity, timing, view
    and sequence), the event count and the final virtual clock, so any
    divergence in scheduling order shows up as a mismatch.
    """
    cluster = Cluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    records = completion_records(cluster)
    summary = cluster.result()
    return (
        records,
        cluster.simulator.processed_events,
        cluster.simulator.now,
        round(summary.throughput_txn_per_s, 9),
        round(summary.avg_latency_ms, 9),
    )


# ------------------------------------------------------------- per-state
def replica_fingerprint(replica) -> Tuple:
    """Consensus-visible state of one replica, as a hashable tuple.

    Covers exactly the state the safety invariants range over: the view,
    the executed prefix (ledger head hash commits to every executed
    batch), checkpoint stability, the rollback audit trail and the
    in-flight view-change bookkeeping of
    :class:`~repro.protocols.recovery.ViewChangeRecovery`.  Per-slot vote
    tallies and message buffers are *not* included: two states that
    differ only in partially-collected votes behave identically for the
    invariants, and folding them in would defeat deduplication.
    """
    checkpoints = getattr(replica, "checkpoints", None)
    stable_sequence = checkpoints.stable_sequence if checkpoints else -1
    stable_digest = (checkpoints.stable_digests.get(stable_sequence, b"")
                     if checkpoints else b"")
    vc_votes = getattr(replica, "_vc_votes", {})
    committed = getattr(replica, "_committed", {})
    return (
        replica.node_id,
        bool(replica.crashed),
        replica.view,
        getattr(replica, "view_change_in_progress", False),
        getattr(replica, "next_sequence", 0),
        replica.last_executed_sequence,
        replica.blockchain.head.block_hash,
        stable_sequence,
        stable_digest,
        tuple(getattr(replica, "rollback_log", ())),
        getattr(replica, "view_changes_completed", 0),
        getattr(replica, "_vc_failed_attempts", 0),
        tuple(sorted(getattr(replica, "_entered_views", ()))),
        tuple(sorted((view, len(votes)) for view, votes in vc_votes.items())),
        tuple(sorted(committed)),
    )


def pool_fingerprint(pool) -> Tuple:
    """Completion-visible state of one client pool."""
    return (
        pool.node_id,
        pool.completed_batches,
        tuple(record.batch_id for record in pool.completions),
        pool.outstanding,
    )


def cluster_state_fingerprint(cluster: Cluster,
                              pending: Tuple = (),
                              digest: bool = True) -> object:
    """One hashable fingerprint of a whole cluster state.

    *pending* is the (sorted) label multiset of schedulable events — two
    states with identical node state but different undelivered messages
    are different states.  With ``digest=True`` (the default) the tuple is
    collapsed to a hex digest so the visited set stays compact;
    ``digest=False`` returns the raw tuple for debugging.
    """
    state = (
        tuple(replica_fingerprint(replica) for replica in cluster.replicas),
        tuple(pool_fingerprint(pool) for pool in cluster.pools),
        tuple(pending),
    )
    if not digest:
        return state
    return hashlib.sha256(repr(state).encode("utf-8")).hexdigest()


def state_fingerprints_equal(first: Cluster, second: Cluster) -> bool:
    """Whether two clusters are in the same consensus-visible state."""
    return (cluster_state_fingerprint(first, digest=False)
            == cluster_state_fingerprint(second, digest=False))


__all__ = [
    "completion_records",
    "run_fingerprint",
    "replica_fingerprint",
    "pool_fingerprint",
    "cluster_state_fingerprint",
    "state_fingerprints_equal",
]
