"""Evaluation fabric: clusters, metrics and the paper's experiment suite.

This package plays the role RESILIENTDB plays in the paper: it wires the
protocol state machines, the simulated network, the workload generators
and the fault schedules into runnable experiments and collects
throughput/latency metrics from them.
"""

from repro.fabric.metrics import MetricsWindow, RunResult, ThroughputTimeline
from repro.fabric.registry import ProtocolSpec, PROTOCOLS, protocol_names
from repro.fabric.cluster import Cluster, ClusterConfig
from repro.fabric.audit import (
    AuditReport,
    AuditViolation,
    SafetyAuditor,
    SafetyViolation,
    audit_cluster,
)
from repro.fabric.scenarios import (
    MATRIX_PROTOCOLS,
    SCENARIOS,
    ScenarioOutcome,
    ScenarioParams,
    format_matrix,
    run_matrix,
    run_scenario,
    unexpected_outcomes,
)
from repro.fabric.experiments import (
    ExperimentConfig,
    run_experiment,
    run_protocol_comparison,
)
from repro.fabric.timeline import run_view_change_timeline
from repro.fabric.upper_bound import run_upper_bound

__all__ = [
    "MetricsWindow",
    "RunResult",
    "ThroughputTimeline",
    "ProtocolSpec",
    "PROTOCOLS",
    "protocol_names",
    "Cluster",
    "ClusterConfig",
    "AuditReport",
    "AuditViolation",
    "SafetyAuditor",
    "SafetyViolation",
    "audit_cluster",
    "MATRIX_PROTOCOLS",
    "SCENARIOS",
    "ScenarioOutcome",
    "ScenarioParams",
    "format_matrix",
    "run_matrix",
    "run_scenario",
    "unexpected_outcomes",
    "ExperimentConfig",
    "run_experiment",
    "run_protocol_comparison",
    "run_view_change_timeline",
    "run_upper_bound",
]
