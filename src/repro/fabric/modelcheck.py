"""Bounded model checker: every delivery ordering of a tiny cluster.

The fault matrix samples interleavings with seeds; this module *explores*
them.  It drives the ordinary cluster fabric — real replicas, real
network driver, real client pools — through **all** schedulable event
orderings for tiny configurations (n=4, a couple of consensus slots,
optional crash/equivocate choice points), asserting the pure safety
invariants of :mod:`repro.fabric.audit` in every reachable state.

How it works:

* the cluster runs on a
  :class:`~repro.net.simulator.ControlledScheduler`, whose pending
  events are explicit labelled choice points;
* a run is identified by its **trace** — the ordered tuple of chosen
  event sequence numbers.  Forking a run is replaying its trace from a
  fresh cluster (sequence numbers are deterministic functions of the
  choice prefix), so no live object is ever deep-copied;
* reached states are deduplicated by the canonical state fingerprint
  (:func:`repro.fabric.fingerprint.cluster_state_fingerprint`): the
  consensus-visible replica state, the pool state and the label multiset
  of still-pending events.  Virtual timestamps are excluded — the
  checker treats the network as fully asynchronous;
* timers are *choice-gated*: by default a timer may only fire when no
  message delivery is enabled.  Orderings of in-flight messages are
  explored exhaustively; timeout storms are not, which is what keeps
  exhaustive n=4 runs inside CI minutes.  ``timer_gate="owner"`` relaxes
  the gate per node (a timeout may race other nodes' in-flight
  messages), ``"eager"`` lifts it entirely;
* a state with no enabled event and unfinished clients is a **deadlock**
  (distinguished from normal quiescence, where every pool completed its
  budget); a state where fewer than a commit quorum of replicas are
  alive is a **stall** leaf and is not expanded further (expected when
  the configuration crashes more than f replicas — set
  ``expect_stall=True``);
* on a violation the trace is re-run to attach labels, minimised by a
  breadth-first re-exploration (BFS visits states in nondecreasing
  depth, so the first violating state it finds is a shortest
  counterexample), and serialised to JSON for
  ``examples/model_check.py --replay``.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.audit import (
    AuditViolation,
    check_replica_state,
    default_slot_key,
    hotstuff_slot_key,
)
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.fingerprint import cluster_state_fingerprint
from repro.net.byzantine import ByzantineSpec
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.simulator import ControlledScheduler
from repro.protocols.hotstuff import HotStuffReplica

#: Version tag of the counterexample-trace JSON format.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class ModelCheckConfig:
    """One model-checking cell: a tiny deployment plus exploration bounds.

    The deployment fields mirror :class:`~repro.fabric.cluster.ClusterConfig`
    but default to the smallest interesting instance: n=4, one client,
    two single-transaction consensus slots, a checkpoint boundary inside
    the explored window, and fixed-delay lossless network conditions so
    no RNG is consumed anywhere on a path (fingerprint deduplication
    then collapses commuting deliveries exactly).

    ``crash_replica`` schedules a crash transition that the checker
    interleaves at every position like any other event — a crash choice
    point.  ``byzantine_behavior`` routes one replica through a
    network-boundary behaviour (e.g. ``"equivocate"``), whose forged
    deliveries become ordinary delivery choice points.
    """

    protocol: str = "poe-mac"
    num_replicas: int = 4
    num_batches: int = 2
    batch_size: int = 1
    client_outstanding: int = 2
    checkpoint_interval: int = 2
    request_timeout_ms: float = 100.0
    delay_ms: float = 1.0
    crash_replica: Optional[int] = None
    crash_at_ms: float = 2.0
    #: Fire the crash transition as a mandatory first step instead of
    #: interleaving it as a choice point.  With an interleaved crash the
    #: checker also explores orderings that finish all slots before the
    #: crash lands (no view change on those paths); crashing up front
    #: forces every completing ordering through a view change.
    crash_at_start: bool = False
    byzantine_behavior: Optional[str] = None
    byzantine_replica: int = 0
    seed: int = 11
    max_depth: int = 240
    max_states: int = 120_000
    #: States where any replica's view exceeds this become leaves.  Timer
    #: chains make the view dimension unbounded (every timeout round can
    #: start another view change); real recovery needs at most a couple
    #: of views at this scale, so deeper view towers are pruned like
    #: depth-bound truncation.
    view_bound: int = 2
    #: When timers become choice points.  ``"global"`` (default): only at
    #: delivery quiescence — no message at all is in flight; the smallest
    #: space, but it excludes every schedule where a timeout races an
    #: undelivered message.  ``"owner"``: a node's timer is enabled once
    #: *that node* has no pending deliveries — other nodes' in-flight
    #: messages no longer hold its timeout hostage, which is exactly the
    #: corner where view changes race stragglers (a lagging replica still
    #: joins the view change via f+1 VIEW-CHANGE messages).  ``"eager"``:
    #: timers are always choices; the full asynchronous space, usually
    #: only tractable for :func:`hunt`.
    timer_gate: str = "global"
    #: Partial-order reduction over *deliveries only*.  Deliveries to
    #: different receivers commute: each touches only its receiver's
    #: state, the message soup is append-only, and firing one delivery
    #: can never dequeue another.  Expanding only the earliest enabled
    #: delivery's receiver (a persistent set) therefore preserves
    #: reachability of invariant violations while cutting interleaving
    #: breadth by roughly the node count; orderings of messages to the
    #: *same* receiver — where equivocation bites — stay exhaustive.
    #: Timers are **never** pruned (a delivery may cancel or re-arm a
    #: timer, so timer orderings do not commute), and the reduction
    #: steps aside entirely when a crash/recover or unknown-footprint
    #: event is enabled.  Disable to explore every interleaving of every
    #: event.
    persistent_sets: bool = True
    expect_stall: bool = False


@dataclass
class Counterexample:
    """A violating run: the ordered event choices that reach it."""

    kind: str  # "invariant" | "deadlock" | "stall"
    config: ModelCheckConfig
    #: Ordered (seq, label) choices from the initial state.
    trace: List[Tuple[int, Tuple]]
    violations: List[AuditViolation]

    def summary(self) -> str:
        lines = [f"{self.kind} after {len(self.trace)} events:"]
        lines.extend(f"  - [{v.kind}] {v.detail}" for v in self.violations)
        return "\n".join(lines)


@dataclass
class ExploreResult:
    """Everything one bounded exploration established."""

    config: ModelCheckConfig
    states_explored: int = 0
    transitions: int = 0
    quiescent_leaves: int = 0
    truncated_leaves: int = 0
    view_capped_leaves: int = 0
    stall_leaves: int = 0
    deadlock_leaves: int = 0
    max_view: int = 0
    #: Smallest max-honest-view over all quiescent leaves: ``>= 1`` proves
    #: every completing ordering went through at least one view change.
    min_quiescent_view: Optional[int] = None
    hit_state_bound: bool = False
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def summary(self) -> str:
        head = (f"{self.config.protocol}: {self.states_explored} states, "
                f"{self.transitions} transitions, "
                f"{self.quiescent_leaves} quiescent / "
                f"{self.stall_leaves} stalled / "
                f"{self.deadlock_leaves} deadlocked / "
                f"{self.truncated_leaves} truncated / "
                f"{self.view_capped_leaves} view-capped leaves, "
                f"max view {self.max_view}")
        if self.hit_state_bound:
            head += " [state bound hit]"
        if self.ok:
            return f"SAFE ({head})"
        return f"UNSAFE ({head})\n{self.counterexample.summary()}"


# ------------------------------------------------------------------ build
#: (replica_ids, client_ids, seed) -> authenticator map.  The trusted
#: setup is deterministic and its products are immutable, so the many
#: thousand replays of one configuration share a single provisioning run
#: (otherwise key generation dominates exploration time).
_AUTH_CACHE: Dict[Tuple, Dict[str, object]] = {}


def _authenticators_for(cluster_config: ClusterConfig):
    from repro.crypto.authenticator import make_authenticators

    key = (tuple(cluster_config.replica_ids()),
           tuple(cluster_config.client_ids()), cluster_config.seed)
    cached = _AUTH_CACHE.get(key)
    if cached is None:
        cached = make_authenticators(
            replica_ids=cluster_config.replica_ids(),
            client_ids=cluster_config.client_ids(),
            seed=f"cluster-seed-{cluster_config.seed}".encode(),
        )
        _AUTH_CACHE[key] = cached
    return cached


def build_cluster(config: ModelCheckConfig) -> Tuple[Cluster, ControlledScheduler]:
    """One fresh, started cluster on a controlled scheduler."""
    faults = FaultSchedule()
    if config.crash_replica is not None:
        faults.add_crash(replica_id(config.crash_replica),
                         at_ms=config.crash_at_ms)
    byzantine = None
    if config.byzantine_behavior is not None:
        byzantine = ByzantineSpec(behavior=config.byzantine_behavior,
                                  replica_index=config.byzantine_replica)
    scheduler = ControlledScheduler()
    cluster_config = ClusterConfig(
        protocol=config.protocol,
        num_replicas=config.num_replicas,
        batch_size=config.batch_size,
        num_clients=1,
        client_outstanding=config.client_outstanding,
        total_batches=config.num_batches,
        request_timeout_ms=config.request_timeout_ms,
        checkpoint_interval=config.checkpoint_interval,
        conditions=NetworkConditions.uniform_delay(config.delay_ms,
                                                   seed=config.seed),
        faults=faults,
        byzantine=byzantine,
        seed=config.seed,
    )
    cluster = Cluster(cluster_config, simulator=scheduler,
                      authenticators=_authenticators_for(cluster_config))
    cluster.start()
    if config.crash_at_start and config.crash_replica is not None:
        target = ("crash", replica_id(config.crash_replica))
        for seq, _time, label in scheduler.choices():
            if label == target:
                scheduler.fire(seq)
                break
        else:
            raise RuntimeError("crash_at_start: no pending crash transition")
    return cluster, scheduler


def _replay(config: ModelCheckConfig,
            trace: Sequence[int]) -> Tuple[Cluster, ControlledScheduler]:
    cluster, scheduler = build_cluster(config)
    for seq in trace:
        scheduler.fire(seq)
    return cluster, scheduler


# ------------------------------------------------------------- state view
def _slot_key_fn(cluster: Cluster):
    if issubclass(cluster.spec.replica_cls, HotStuffReplica):
        return hotstuff_slot_key
    return default_slot_key


def _honest(cluster: Cluster) -> List[object]:
    excluded = set(cluster.byzantine_ids)
    return [replica for replica in cluster.replicas
            if not replica.crashed and replica.node_id not in excluded]


def _state_fingerprint(cluster: Cluster, choices) -> str:
    pending = tuple(sorted(repr(label) for _seq, _time, label in choices))
    return cluster_state_fingerprint(cluster, pending)


def _quorum_reachable(cluster: Cluster) -> bool:
    live = sum(1 for replica in cluster.replicas if not replica.crashed)
    return live >= cluster.node_config.nf


def _enabled(choices, cluster: Cluster, config: ModelCheckConfig):
    """The subset of pending events offered as choices in this state.

    Deliveries to crashed nodes and timers owned by crashed nodes are
    no-ops and are filtered out; timers are gated per
    ``config.timer_gate``.  With ``persistent_sets`` the deliveries are
    further restricted to one receiver's (the receiver of the earliest
    enabled delivery) — see :class:`ModelCheckConfig`.  Timers are never
    pruned, and the reduction steps aside whenever an event with an
    unknown footprint (opaque label) or an interleaved crash/recover
    transition is enabled: fault transitions must be explored against
    every node's schedule, not just their own.
    """
    nodes = {replica.node_id: replica for replica in cluster.replicas}
    immediate = []
    timers = []
    busy_receivers = set()
    for seq, time_ms, label in choices:
        kind = label[0]
        if kind == "timer":
            owner = nodes.get(label[1])
            if owner is not None and owner.crashed:
                continue
            timers.append((seq, time_ms, label))
        elif kind == "deliver":
            receiver = nodes.get(label[2])
            if receiver is not None and receiver.crashed:
                continue
            busy_receivers.add(label[2])
            immediate.append((seq, time_ms, label))
        else:  # crash/recover transitions, opaque events
            immediate.append((seq, time_ms, label))
    gate = config.timer_gate
    if gate == "eager":
        enabled = immediate + timers
    elif gate == "owner":
        enabled = immediate + [entry for entry in timers
                               if entry[2][1] not in busy_receivers]
    else:  # "global"
        enabled = immediate if immediate else timers
    enabled.sort(key=lambda entry: (entry[1], entry[0]))
    if not config.persistent_sets:
        return enabled
    if any(entry[2][0] not in ("deliver", "timer") for entry in enabled):
        return enabled
    deliveries = [entry for entry in enabled if entry[2][0] == "deliver"]
    if len(deliveries) < 2:
        return enabled
    focus = deliveries[0][2][2]  # receiver of the earliest enabled delivery
    return [entry for entry in enabled
            if entry[2][0] != "deliver" or entry[2][2] == focus]


# ------------------------------------------------------------ exploration
def explore(config: ModelCheckConfig, order: str = "dfs") -> ExploreResult:
    """Bounded exhaustive exploration; stops at the first violation.

    ``order`` is ``"dfs"`` (default, memory-light) or ``"bfs"`` (visits
    states in nondecreasing depth — used for counterexample
    minimisation).
    """
    result = ExploreResult(config=config)
    visited = set()
    frontier: deque = deque([()])
    pop = frontier.pop if order == "dfs" else frontier.popleft
    while frontier:
        trace = pop()
        cluster, scheduler = _replay(config, trace)
        choices = scheduler.choices()
        fingerprint = _state_fingerprint(cluster, choices)
        if fingerprint in visited:
            continue
        if result.states_explored >= config.max_states:
            result.hit_state_bound = True
            break
        visited.add(fingerprint)
        result.states_explored += 1
        honest = _honest(cluster)
        state_view = 0
        for replica in cluster.replicas:
            if replica.view > state_view:
                state_view = replica.view
        if state_view > result.max_view:
            result.max_view = state_view
        violations = check_replica_state(honest, _slot_key_fn(cluster))
        if violations:
            result.counterexample = Counterexample(
                kind="invariant", config=config,
                trace=trace_with_labels(config, trace), violations=violations)
            break
        if all(pool.is_done() for pool in cluster.pools):
            result.quiescent_leaves += 1
            leaf_view = max((replica.view for replica in honest), default=0)
            if (result.min_quiescent_view is None
                    or leaf_view < result.min_quiescent_view):
                result.min_quiescent_view = leaf_view
            continue
        if not _quorum_reachable(cluster):
            result.stall_leaves += 1
            if not config.expect_stall:
                live = sum(1 for r in cluster.replicas if not r.crashed)
                result.counterexample = Counterexample(
                    kind="stall", config=config,
                    trace=trace_with_labels(config, trace),
                    violations=[AuditViolation(
                        kind="stall",
                        detail=(f"only {live} live replicas; commit quorum "
                                f"{cluster.node_config.nf} unreachable"))])
                break
            continue
        if state_view > config.view_bound:
            result.view_capped_leaves += 1
            continue
        enabled = _enabled(choices, cluster, config)
        if not enabled:
            result.deadlock_leaves += 1
            if not config.expect_stall:
                result.counterexample = Counterexample(
                    kind="deadlock", config=config,
                    trace=trace_with_labels(config, trace),
                    violations=[AuditViolation(
                        kind="deadlock",
                        detail=("no enabled events but "
                                f"{sum(not p.is_done() for p in cluster.pools)}"
                                " client pool(s) incomplete"))])
                break
            continue
        if len(trace) >= config.max_depth:
            result.truncated_leaves += 1
            continue
        for seq, _time, _label in reversed(enabled):
            frontier.append(trace + (seq,))
            result.transitions += 1
    return result


def check(config: ModelCheckConfig, minimize: bool = True) -> ExploreResult:
    """Explore depth-first; on violation, minimise the counterexample.

    Minimisation re-explores breadth-first with the depth capped at the
    found trace's length: BFS reaches violating states in nondecreasing
    depth, so its first hit is a shortest counterexample.  If the BFS is
    cut short by the state bound, the DFS trace is kept.
    """
    result = explore(config, order="dfs")
    if result.counterexample is None or not minimize:
        return result
    found = result.counterexample
    if len(found.trace) > 1:
        bounded = replace(config, max_depth=len(found.trace))
        shorter = explore(bounded, order="bfs")
        if (shorter.counterexample is not None
                and len(shorter.counterexample.trace) < len(found.trace)):
            result.counterexample = shorter.counterexample
    return result


# -------------------------------------------------------------- bug hunts
@dataclass
class HuntResult:
    """Outcome of a randomized schedule hunt."""

    config: ModelCheckConfig
    walks: int = 0
    steps: int = 0
    #: Index of the violating walk (reproducible: walk i always draws
    #: from ``Random(walk_seed * 1_000_003 + i)``).
    violating_walk: Optional[int] = None
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


def _defer_key(label: Tuple) -> Optional[Tuple]:
    """The deferral-set key of an event, or ``None`` if never deferrable.

    Deliveries key on (receiver, type, view, sequence, content tag) — one
    key covers e.g. "all view-0 SUPPORTs for slot 2 arriving at replica 1"
    while keeping retransmissions of different batches, and the same slot
    re-proposed in a later view, separately deferrable.  Timers key on
    their full label.  Crash/recover transitions and opaque events are
    never deferred.
    """
    kind = label[0]
    if kind == "deliver":
        return (label[2], label[3], label[4], label[5], label[6])
    if kind == "timer":
        return label
    return None


def hunt(config: ModelCheckConfig, walks: int = 500, walk_seed: int = 1,
         fault_bias: float = 0.5, defer_p: float = 0.0, ordered: bool = False,
         max_steps: int = 400) -> HuntResult:
    """Randomized schedule exploration: seeded walks instead of DFS.

    Exhaustive exploration under the global timer gate can never reach
    the schedules where a view change races in-flight deliveries — the
    gate only lets timers fire at delivery quiescence.  Lifting the gate
    entirely (``timer_gate="eager"``) makes the space far too large to
    exhaust, so bug hunting uses the other classic levers:

    * per-walk random **deferral sets** (delay-bounded scheduling): with
      probability *defer_p* an event class (see :func:`_defer_key`) is
      declared *slow* for the whole walk and withheld while anything
      else is enabled.  Recovery bugs need a handful of specific
      messages to stay in flight across a view change; a uniform walk
      almost never keeps them undelivered long enough, a sticky deferral
      set routinely does;
    * with ``ordered=True`` each walk fires the *earliest* eligible
      event, so the schedule is the realistic timestamp order perturbed
      only by the deferral set — all randomness goes into *which* events
      are late, none into unrealistic shuffling of the rest;
    * with ``ordered=False`` events are sampled uniformly, preferring a
      timer/crash transition with probability *fault_bias* whenever one
      is enabled (bugs in recovery logic live where timeouts preempt
      deliveries).

    Each walk fires events on one live cluster — no replay cost — and
    evaluates the safety invariants after every event.  The persistent-
    set reduction is disabled inside walks (a withheld delivery would pin
    the reduction's focus on its receiver forever).  Walk *i* draws from
    ``Random(1_000_003 * (walk_seed + i))``, so the violating walk alone
    is reproducible by rerunning with ``walk_seed = walk_seed + i`` and
    ``walks=1``; a found trace stays replayable with
    :func:`replay_trace`.
    """
    result = HuntResult(config=config)
    full = replace(config, persistent_sets=False)
    for walk_index in range(walks):
        rng = random.Random(1_000_003 * (walk_seed + walk_index))
        cluster, scheduler = build_cluster(config)
        slot_key = _slot_key_fn(cluster)
        trace: List[Tuple[int, Tuple]] = []
        slow: Dict[Tuple, bool] = {}
        result.walks += 1

        def _is_slow(label: Tuple) -> bool:
            if defer_p <= 0.0:
                return False
            key = _defer_key(label)
            if key is None:
                return False
            flag = slow.get(key)
            if flag is None:
                flag = rng.random() < defer_p
                slow[key] = flag
            return flag

        for _step in range(max_steps):
            enabled = _enabled(scheduler.choices(), cluster, full)
            if not enabled:
                break
            if all(pool.is_done() for pool in cluster.pools):
                break
            if max(replica.view for replica in cluster.replicas) > config.view_bound:
                break  # timeout churn: this walk is a view tower, abandon it
            eligible = [entry for entry in enabled
                        if not _is_slow(entry[2])] or enabled
            if ordered:
                seq, _time, label = eligible[0]
            else:
                faults = [entry for entry in eligible
                          if entry[2][0] in ("timer", "crash", "recover")]
                pool = faults if faults and rng.random() < fault_bias else eligible
                seq, _time, label = pool[rng.randrange(len(pool))]
            trace.append((seq, label))
            scheduler.fire(seq)
            result.steps += 1
            violations = check_replica_state(_honest(cluster), slot_key)
            if violations:
                result.violating_walk = walk_index
                result.counterexample = Counterexample(
                    kind="invariant", config=config, trace=trace,
                    violations=violations)
                return result
    return result


def shrink_trace(config: ModelCheckConfig,
                 trace: Sequence[Tuple[int, Tuple]]) -> List[Tuple[int, Tuple]]:
    """Greedy delta-debugging of a violating trace to a local minimum.

    Event sequence numbers are assigned at *scheduling* time, so dropping
    a fired event never renumbers the others — it only removes the events
    its callback would have scheduled.  A candidate removal is kept when
    the remaining sequence numbers are all still schedulable in order and
    the final state still violates an invariant.  Iterates to a fixpoint:
    the result replays via :func:`replay_trace` and no single event can
    be removed from it.
    """
    current = [seq for seq, _label in trace]

    def _still_violates(seqs: List[int]) -> bool:
        cluster, scheduler = build_cluster(config)
        for seq in seqs:
            if all(s != seq for s, _t, _l in scheduler.choices()):
                return False
            scheduler.fire(seq)
        return bool(check_replica_state(_honest(cluster),
                                        _slot_key_fn(cluster)))

    shrunk = True
    while shrunk:
        shrunk = False
        index = len(current) - 1
        while index >= 0:
            candidate = current[:index] + current[index + 1:]
            if _still_violates(candidate):
                current = candidate
                shrunk = True
            index -= 1
    return trace_with_labels(config, current)


# ---------------------------------------------------------------- tracing
def trace_with_labels(config: ModelCheckConfig,
                      trace: Sequence[int]) -> List[Tuple[int, Tuple]]:
    """Replay *trace* once more, recording each chosen event's label."""
    cluster, scheduler = build_cluster(config)
    entries: List[Tuple[int, Tuple]] = []
    for seq in trace:
        label = next((lab for s, _t, lab in scheduler.choices() if s == seq),
                     ("unknown",))
        entries.append((seq, label))
        scheduler.fire(seq)
    return entries


def _jsonable(value):
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return value


def counterexample_to_json(counterexample: Counterexample) -> Dict[str, object]:
    """The replayable JSON form of one counterexample."""
    return {
        "schema": TRACE_SCHEMA,
        "kind": counterexample.kind,
        "config": asdict(counterexample.config),
        "trace": [{"seq": seq, "label": _jsonable(label)}
                  for seq, label in counterexample.trace],
        "violations": [{"kind": violation.kind, "detail": violation.detail}
                       for violation in counterexample.violations],
    }


def write_counterexample(counterexample: Counterexample, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(counterexample_to_json(counterexample), handle, indent=2)
        handle.write("\n")


def load_trace(path: str) -> Tuple[ModelCheckConfig, List[Dict[str, object]]]:
    """Load a serialized counterexample: (config, trace entries)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"unsupported trace schema {payload.get('schema')!r}")
    config_fields = dict(payload["config"])
    config = ModelCheckConfig(**config_fields)
    return config, list(payload["trace"])


class TraceMismatch(ValueError):
    """A replayed event's label differs from the recorded one."""


def replay_trace(config: ModelCheckConfig, entries: Sequence[Dict[str, object]],
                 ) -> Tuple[Cluster, List[AuditViolation]]:
    """Re-execute a recorded trace, validating each step's label.

    Returns the final cluster and the invariant violations it exhibits
    (the recorded ones, if the trace is genuine and the underlying bug is
    still present).
    """
    cluster, scheduler = build_cluster(config)
    for index, entry in enumerate(entries):
        seq = entry["seq"]
        live = next((lab for s, _t, lab in scheduler.choices() if s == seq),
                    None)
        if live is None:
            raise TraceMismatch(
                f"step {index}: event seq {seq} is not schedulable here")
        recorded = entry.get("label")
        if recorded is not None and _jsonable(live) != recorded:
            raise TraceMismatch(
                f"step {index}: recorded label {recorded!r} but the live "
                f"event is {_jsonable(live)!r}")
        scheduler.fire(seq)
    violations = check_replica_state(_honest(cluster), _slot_key_fn(cluster))
    return cluster, violations


# ----------------------------------------------------------------- cells
#: The exhaustive CI cells: PoE and PBFT, each with a crash choice point
#: (forcing at least one view change on every completing ordering) and
#: with an equivocating-then-crashing primary (both choice-point kinds in
#: one run).  Zyzzyva and SBFT ride behind the ``--all-protocols`` flag
#: of examples/model_check.py.
MODEL_CHECK_CELLS: Dict[str, ModelCheckConfig] = {
    # Fault-free baseline: one batch, every interleaving of the happy path.
    "poe-nofault": ModelCheckConfig(
        protocol="poe-mac", num_batches=1, client_outstanding=1),
    # Primary may crash at any point relative to the protocol messages;
    # schedules that stay in view 0 and schedules that force a view change
    # are both inside the bound.
    "poe-crash-interleaved": ModelCheckConfig(
        protocol="poe-mac", crash_replica=0, num_batches=1,
        client_outstanding=1, view_bound=1),
    # Primary down from the start: every schedule must recover through at
    # least one view change before the two batches can quiesce.
    "poe-crash-vc": ModelCheckConfig(
        protocol="poe-mac", crash_replica=0, crash_at_start=True,
        num_batches=2, client_outstanding=1, view_bound=1),
    "pbft-crash-vc": ModelCheckConfig(
        protocol="pbft", crash_replica=0, crash_at_start=True,
        num_batches=2, client_outstanding=1, view_bound=1),
    # Equivocating primary plus a crashed backup: the three live replicas
    # are exactly nf, so any split vote forces the view change to sort out
    # the conflicting proposals.
    "poe-equivocate-vc": ModelCheckConfig(
        protocol="poe-mac", byzantine_behavior="equivocate",
        byzantine_replica=0, crash_replica=3, crash_at_start=True,
        num_batches=1, client_outstanding=1, view_bound=1),
    "pbft-equivocate-vc": ModelCheckConfig(
        protocol="pbft", byzantine_behavior="equivocate",
        byzantine_replica=0, crash_replica=3, crash_at_start=True,
        num_batches=1, client_outstanding=1, view_bound=1),
}

EXTRA_CELLS: Dict[str, ModelCheckConfig] = {
    "zyzzyva-crash-vc": ModelCheckConfig(
        protocol="zyzzyva", crash_replica=0, crash_at_start=True,
        num_batches=2, client_outstanding=1, view_bound=1),
    "sbft-crash-vc": ModelCheckConfig(
        protocol="sbft", crash_replica=0, crash_at_start=True,
        num_batches=2, client_outstanding=1, view_bound=1),
}
