"""repro: a reproduction of "Proof-of-Execution: Reaching Consensus through
Fault-Tolerant Speculation" (Gupta, Hellings, Rahnama, Sadoghi — EDBT 2021).

The package implements the PoE consensus protocol together with every
substrate the paper's evaluation depends on: a cryptographic toolkit
(MACs, digital signatures, threshold signatures), a deterministic
discrete-event network simulator, a rollback-capable ledger, a YCSB-style
workload generator, the four baseline protocols (PBFT, Zyzzyva, SBFT,
HotStuff) and an evaluation fabric that reproduces the paper's figures.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(protocol="poe", num_replicas=4,
                                             num_batches=50))
    print(result.row())
"""

from repro.core import PoeClientPool, PoeReplica
from repro.crypto import Authenticator, CryptoCostModel, SchemeKind, make_authenticators
from repro.fabric import (
    Cluster,
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    run_experiment,
    run_protocol_comparison,
    run_upper_bound,
    run_view_change_timeline,
)
from repro.net import FaultSchedule, NetworkConditions, SimNetwork, Simulator
from repro.protocols import (
    HotStuffReplica,
    NodeConfig,
    PbftReplica,
    SbftReplica,
    ZyzzyvaReplica,
)
from repro.workload import ClientPool, YcsbConfig, YcsbWorkload

__version__ = "1.0.0"

__all__ = [
    "PoeReplica",
    "PoeClientPool",
    "PbftReplica",
    "ZyzzyvaReplica",
    "SbftReplica",
    "HotStuffReplica",
    "NodeConfig",
    "Authenticator",
    "CryptoCostModel",
    "SchemeKind",
    "make_authenticators",
    "Simulator",
    "SimNetwork",
    "NetworkConditions",
    "FaultSchedule",
    "Cluster",
    "ClusterConfig",
    "ExperimentConfig",
    "RunResult",
    "run_experiment",
    "run_protocol_comparison",
    "run_upper_bound",
    "run_view_change_timeline",
    "ClientPool",
    "YcsbConfig",
    "YcsbWorkload",
    "__version__",
]
