"""The PoE replica state machine.

Implements the normal-case algorithm of the paper (Figure 3) in both its
threshold-signature and MAC instantiations, speculative execution with
rollback, and the view-change algorithm (Figure 5).

Normal case (threshold-signature mode, Section II-B):

1. the primary broadcasts ``PROPOSE(<T>_c, v, k)``;
2. each replica supports the first ``k``-th proposal of view ``v`` it
   receives by sending a signature share to the primary;
3. the primary aggregates ``nf`` shares into a threshold signature and
   broadcasts it in a ``CERTIFY`` message;
4. replicas that receive a valid certificate *view-commit*, speculatively
   execute the batch in sequence order, and send ``INFORM`` to the client.

MAC mode (Appendix A) replaces steps 2-3 with an all-to-all ``SUPPORT``
broadcast: a replica view-commits once it has ``nf`` matching supports.

View-change (Section II-C): replicas that suspect the primary broadcast
``VC-REQUEST`` messages carrying their executed-slot certificates; the
next primary combines ``nf`` of them into ``NV-PROPOSE``; replicas adopt
the longest consecutive prefix, rolling back any speculative execution
beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.messages import (
    CertifiedEntry,
    PoeCertify,
    PoeCommitVote,
    PoeNewView,
    PoePropose,
    PoeSupport,
    PoeViewChangeRequest,
)
from repro.core.view_change import (
    longest_consecutive_prefix,
    proposal_digest,
    validate_view_change_request,
)
from repro.crypto.authenticator import Authenticator, SchemeKind
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.threshold import ThresholdError
from repro.protocols.base import NodeConfig, ProtocolInfo
from repro.protocols.quorum import VoteSet
from repro.protocols.recovery import ViewChangeRecovery
from repro.protocols.replica_base import BatchingReplica
from repro.workload.transactions import RequestBatch


@dataclass(slots=True)
class _SlotState:
    """Per (view, sequence) consensus bookkeeping.

    ``support_votes`` / ``commit_votes`` are aggregated
    :class:`~repro.protocols.quorum.VoteSet` bitsets (constructed by
    :meth:`PoeReplica._slot` with the deployment's index map) rather than
    per-slot ``set`` objects: in MAC mode every replica counts the n²
    SUPPORT flood, and the bitset makes each counted vote integer work.
    """

    batch: Optional[RequestBatch] = None
    proposal_digest: bytes = b""
    supported: bool = False
    shares: Dict[int, object] = field(default_factory=dict)
    support_votes: VoteSet = None
    certified: bool = False
    commit_votes: VoteSet = None
    commit_vote_sent: bool = False


class PoeReplica(ViewChangeRecovery, BatchingReplica):
    """A PoE replica (primary or backup, depending on the view)."""

    PROTOCOL_INFO = ProtocolInfo(
        name="PoE",
        phases=3,
        messages="O(3n)",
        resilience="f",
        requirements="signature agnostic",
    )

    MESSAGE_HANDLERS = {
        PoePropose: "handle_propose",
        PoeSupport: "handle_support",
        PoeCertify: "handle_certify",
        PoeCommitVote: "handle_commit_vote",
        PoeViewChangeRequest: "handle_view_change_message",
        PoeNewView: "handle_new_view_message",
    }

    #: Deployments at or below this size default to MAC authentication,
    #: following the paper's guidance that "when few replicas are
    #: participating in consensus (up to 16), a single phase of all-to-all
    #: communication is inexpensive and using MACs can make computations
    #: cheap" (ingredient I3).
    MAC_SCHEME_MAX_REPLICAS = 16

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
        scheme: Optional[SchemeKind] = None,
        speculative: bool = True,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model, initial_table)
        if scheme is None:
            scheme = (SchemeKind.MACS if config.n <= self.MAC_SCHEME_MAX_REPLICAS
                      else SchemeKind.THRESHOLD)
        self.scheme = scheme
        # Plain bool for the per-SUPPORT scheme branch: `scheme is
        # SchemeKind.THRESHOLD` costs a global + enum-attribute load per
        # delivered vote.
        self._is_threshold = scheme is SchemeKind.THRESHOLD
        #: Ablation switch: ``False`` re-introduces a PBFT-style commit phase
        #: after view-commit instead of executing speculatively.
        self.speculative = speculative
        #: Keyed by ``(view << 32) | sequence`` (see :meth:`_slot`).
        self._slots: Dict[int, _SlotState] = {}
        self._accepted_proposal: Dict[Tuple[int, int], bytes] = {}
        self._certified_log: Dict[int, CertifiedEntry] = {}
        self.init_view_change()
        # Install the fused MAC SUPPORT handler unless a subclass or a
        # monkeypatch overrides any of the methods it collapses (compared
        # against the originals captured at import time, so patching
        # PoeReplica itself is detected too — see the fused docstring).
        cls = type(self)
        if (not self._is_threshold
                and (cls.handle_support, cls._handle_mac_support,
                     cls._check_mac_commit) == _SUPPORT_PATH_ORIGINALS):
            self._dispatch[PoeSupport] = self._handle_support_mac_fast

    # ------------------------------------------------------------------ slots
    def _slot(self, view: int, sequence: int) -> _SlotState:
        # get-then-insert instead of setdefault: the lookup runs once per
        # delivered vote, and setdefault would construct a throwaway
        # _SlotState (plus its vote sets) on every hit.  Keys are packed
        # ints — hashing a small int is cheaper than hashing a fresh tuple
        # on the n² vote flood.
        key = (view << 32) | sequence
        slot = self._slots.get(key)
        if slot is None:
            index_map = self._vote_index
            slot = self._slots[key] = _SlotState(
                support_votes=VoteSet(index_map), commit_votes=VoteSet(index_map))
        return slot

    # -------------------------------------------------------------- proposing
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        """Primary: broadcast PROPOSE and record its own support."""
        digest_h = proposal_digest(sequence, self.view, batch.digest())
        self.charge(CryptoOp.HASH)
        slot = self._slot(self.view, sequence)
        slot.batch = batch
        slot.proposal_digest = digest_h
        self._accepted_proposal[(self.view, sequence)] = digest_h
        proposal = PoePropose(
            view=self.view, sequence=sequence, batch=batch,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        )
        self.broadcast(proposal)
        # Optimisation from the paper (Section II-E): the primary generates
        # one support itself, so it only needs nf - 1 shares from others.
        if self.scheme is SchemeKind.THRESHOLD:
            self.charge(CryptoOp.THRESHOLD_SHARE)
            share = self.auth.threshold_share(digest_h)
            slot.shares[share.index] = share
        else:
            slot.support_votes.add(self.node_id)
        slot.supported = True

    # -- PROPOSE -----------------------------------------------------------------
    def handle_propose(self, sender: str, message: PoePropose, now_ms: float) -> None:
        """Backup: support the first k-th proposal of the current view."""
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if self.view_change_in_progress:
            return
        if message.view != self.view or sender != self.primary_id:
            return
        key = (message.view, message.sequence)
        if key in self._accepted_proposal:
            return  # Already supported a k-th proposal in this view.
        digest_h = proposal_digest(message.sequence, message.view,
                                   message.batch.digest())
        self.charge(CryptoOp.HASH)
        self._accepted_proposal[key] = digest_h
        slot = self._slot(message.view, message.sequence)
        slot.batch = message.batch
        slot.proposal_digest = digest_h
        slot.supported = True
        if message.batch.reply_to:
            self._reply_targets.setdefault(message.batch.batch_id, message.batch.reply_to)
        if self.scheme is SchemeKind.THRESHOLD:
            self.charge(CryptoOp.THRESHOLD_SHARE)
            share = self.auth.threshold_share(digest_h)
            support = PoeSupport(
                view=message.view, sequence=message.sequence,
                proposal_digest=digest_h, share=share, replica_id=self.node_id,
            )
            self.send(self.primary_id, support)
        else:
            self.charge(CryptoOp.MAC_SIGN, self._fanout)
            support = PoeSupport(
                view=message.view, sequence=message.sequence,
                proposal_digest=digest_h, replica_id=self.node_id,
            )
            self.broadcast(support)
            slot.support_votes.add(self.node_id)
            # The primary's PROPOSE doubles as its SUPPORT for the slot, so
            # backups count it without waiting for an extra message.
            slot.support_votes.add(sender)
            self._check_mac_commit(message.view, message.sequence, slot, now_ms)

    # -- SUPPORT -----------------------------------------------------------------
    def handle_support(self, sender: str, message: PoeSupport, now_ms: float) -> None:
        view = message.view
        if view > self.view:
            self.defer_message(view, sender, message)
            return
        if view != self.view:
            return
        slot = self._slot(view, message.sequence)
        if self._is_threshold:
            self._handle_threshold_support(sender, message, slot, now_ms)
        else:
            self._handle_mac_support(sender, message, slot, now_ms)

    def _handle_support_mac_fast(self, sender: str, message: PoeSupport,
                                 now_ms: float) -> None:
        """Fused MAC-mode SUPPORT path: one frame per delivered vote.

        Behaviourally identical to ``handle_support`` →
        ``_handle_mac_support`` → quorum check; installed into the
        dispatch table at construction only when none of those methods is
        overridden (tests monkeypatch ``_handle_mac_support`` to
        demonstrate the spoofed-vote bug — the guard keeps that working).
        """
        view = message.view
        if view != self.view:
            if view > self.view:
                self.defer_message(view, sender, message)
            return
        key = (view << 32) | message.sequence
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slot(view, message.sequence)
        self._pending_cpu_ms += self._mac_verify_ms  # charge(MAC_VERIFY)
        if slot.certified:
            # Late vote after quorum: the proof was frozen at certification
            # and nothing reads the vote set afterwards — recording the
            # voter would be dead work on ~(n - nf)/n of the flood.
            return
        if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
            return
        # Transport-level sender, never the claimed message.replica_id.
        slot.support_votes.add(sender)
        if (not slot.supported or slot.batch is None
                or slot.support_votes.count < self._nf_quorum):
            return
        slot.certified = True
        proof = frozenset(slot.support_votes)
        self._view_commit(view, message.sequence, slot, proof, now_ms)

    def _handle_threshold_support(self, sender: str, message: PoeSupport,
                                  slot: _SlotState, now_ms: float) -> None:
        """Primary: collect shares and broadcast the certificate at nf."""
        if not self.is_primary() or slot.certified or message.share is None:
            return
        if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
            return
        # Shares are not individually verified on the hot path: aggregation
        # validates the combined signature once, and a corrupt share shows
        # up there (RESILIENTDB defers share verification the same way).
        if not self.auth.threshold_verify_share(message.share, slot.proposal_digest):
            return
        slot.shares[message.share.index] = message.share
        if len(slot.shares) < self._nf_quorum:
            return
        self.charge(CryptoOp.THRESHOLD_AGGREGATE)
        try:
            certificate = self.auth.threshold_aggregate(slot.shares.values())
        except ThresholdError:
            return
        slot.certified = True
        certify = PoeCertify(
            view=message.view, sequence=message.sequence,
            proposal_digest=slot.proposal_digest, certificate=certificate,
        )
        self.broadcast(certify)
        self._view_commit(message.view, message.sequence, slot, certificate, now_ms)

    def _handle_mac_support(self, sender: str, message: PoeSupport,
                            slot: _SlotState, now_ms: float) -> None:
        """MAC mode: every replica counts matching SUPPORT broadcasts."""
        self._pending_cpu_ms += self._mac_verify_ms  # charge(MAC_VERIFY)
        if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
            return
        # Vote identity is the transport-level sender, never the claimed
        # ``message.replica_id``: a MAC authenticates the link, so a Byzantine
        # replica can lie about who it is inside the payload but cannot forge
        # the channel it sends on.  Counting the claimed id would let one
        # faulty replica vote once per forged identity.
        slot.support_votes.add(sender)
        # Inline quorum check (same rule as _check_mac_commit, which stays
        # for the PROPOSE path): most supports arrive on already-certified
        # slots, and this is the n²-per-slot hot path.
        if (slot.certified or not slot.supported or slot.batch is None
                or slot.support_votes.count < self._nf_quorum):
            return
        slot.certified = True
        proof = frozenset(slot.support_votes)
        self._view_commit(message.view, message.sequence, slot, proof, now_ms)

    def _check_mac_commit(self, view: int, sequence: int, slot: _SlotState,
                          now_ms: float) -> None:
        if slot.certified or not slot.supported or slot.batch is None:
            return
        if slot.support_votes.count < self._nf_quorum:
            return
        slot.certified = True
        proof = frozenset(slot.support_votes)
        self._view_commit(view, sequence, slot, proof, now_ms)

    # -- CERTIFY -----------------------------------------------------------------
    def handle_certify(self, sender: str, message: PoeCertify, now_ms: float) -> None:
        """Backup: view-commit on a valid certificate for a supported slot."""
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view or sender != self.primary_id:
            return
        slot = self._slot(message.view, message.sequence)
        if slot.certified or not slot.supported or slot.batch is None:
            return
        if message.proposal_digest != slot.proposal_digest:
            return
        self.charge(CryptoOp.THRESHOLD_VERIFY)
        if message.certificate is None or not self.auth.threshold_verify(
                message.certificate, slot.proposal_digest):
            return
        slot.certified = True
        self._view_commit(message.view, message.sequence, slot,
                          message.certificate, now_ms)

    def _view_commit(self, view: int, sequence: int, slot: _SlotState,
                     proof: object, now_ms: float) -> None:
        """Log VCommit and schedule speculative execution (Figure 3, L18-23)."""
        self._certified_log[sequence] = CertifiedEntry(
            sequence=sequence, view=view, proposal_digest=slot.proposal_digest,
            batch=slot.batch, certificate=proof,
        )
        if not self.speculative:
            # Ablation of ingredient I1: wait for an extra commit phase
            # before executing, exactly like PBFT's commit round.
            self._cast_commit_vote(view, sequence, slot, now_ms)
            return
        self.commit_slot(sequence=sequence, view=view, batch=slot.batch,
                         proof=proof, now_ms=now_ms, speculative=True)

    # -- non-speculative ablation --------------------------------------------------
    def _cast_commit_vote(self, view: int, sequence: int, slot: _SlotState,
                          now_ms: float) -> None:
        if not slot.commit_vote_sent:
            slot.commit_vote_sent = True
            self.charge(CryptoOp.MAC_SIGN, self._fanout)
            self.broadcast(PoeCommitVote(
                view=view, sequence=sequence,
                proposal_digest=slot.proposal_digest, replica_id=self.node_id,
            ))
            slot.commit_votes.add(self.node_id)
        self._check_non_speculative_commit(view, sequence, slot, now_ms)

    def handle_commit_vote(self, sender: str, message: PoeCommitVote,
                           now_ms: float) -> None:
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view:
            return
        self.charge(CryptoOp.MAC_VERIFY)
        slot = self._slot(message.view, message.sequence)
        if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
            return
        # Transport-level sender, not the spoofable message.replica_id.
        slot.commit_votes.add(sender)
        self._check_non_speculative_commit(message.view, message.sequence, slot, now_ms)

    def _check_non_speculative_commit(self, view: int, sequence: int,
                                      slot: _SlotState, now_ms: float) -> None:
        if self.speculative or not slot.certified or slot.batch is None:
            return
        if sequence in self._committed or sequence <= self.last_executed_sequence:
            return
        if slot.commit_votes.count < self._nf_quorum:
            return
        self.commit_slot(sequence=sequence, view=view, batch=slot.batch,
                         proof=self._certified_log.get(sequence),
                         now_ms=now_ms, speculative=False)

    # ------------------------------------------------------------- checkpoints
    def on_stable_checkpoint(self, sequence: int, now_ms: float) -> None:
        """Prune per-slot consensus state the stable checkpoint supersedes."""
        super().on_stable_checkpoint(sequence, now_ms)
        for key in [k for k in self._slots if (k & 0xFFFFFFFF) <= sequence]:
            del self._slots[key]
        for key in [k for k in self._accepted_proposal if k[1] <= sequence]:
            del self._accepted_proposal[key]
        for seq in [s for s in self._certified_log if s <= sequence]:
            del self._certified_log[seq]

    # ------------------------------------------------------------------ epochs
    def on_epoch_activated(self, entry, evicted, now_ms: float) -> None:
        """Purge evicted voters from every not-yet-certified slot quorum."""
        super().on_epoch_activated(entry, evicted, now_ms)
        if not evicted:
            return
        for slot in self._slots.values():
            if slot.certified:
                continue
            for rid in evicted:
                slot.support_votes.discard(rid)
                slot.commit_votes.discard(rid)

    # ------------------------------------------------------------- view change
    # The generic machinery (join rule, retry back-off, NEW-VIEW quorum,
    # view-entry epilogue) lives in ViewChangeRecovery; the hooks below
    # supply PoE's payloads (paper, Figure 5).

    def view_change_quorum(self) -> int:
        """The new primary combines ``nf`` valid VC-REQUESTs (Figure 5, L9).

        ``nf`` of the *active epoch* — the cache is refreshed whenever a
        reconfiguration activates.
        """
        return self._nf_quorum

    def build_view_change_request(self, view: int) -> PoeViewChangeRequest:
        executed = tuple(
            self._certified_log[seq]
            for seq in sorted(self._certified_log)
            if seq > self.checkpoints.stable_sequence
            and seq <= self.last_executed_sequence
        )
        return PoeViewChangeRequest(
            view=view,
            replica_id=self.node_id,
            stable_checkpoint=self.checkpoints.stable_sequence,
            executed=executed,
            size_bytes=self.config.proposal_size_bytes(
                sum(len(entry.batch) for entry in executed)
            ),
        )

    def validate_view_change_request_message(self, request: PoeViewChangeRequest,
                                             view: int) -> bool:
        return validate_view_change_request(
            request, self.auth, expected_view=view,
            verify_certificates=self.scheme is SchemeKind.THRESHOLD)

    def make_new_view(self, new_view: int, requests) -> PoeNewView:
        return PoeNewView(new_view=new_view, requests=requests)

    def adopt_new_view(self, proposal: PoeNewView, requests, now_ms: float) -> int:
        """Adopt the new view: execute/roll back per the NV-PROPOSE (Figure 5, L11-16)."""
        prefix, kmax = longest_consecutive_prefix(
            requests, f=self._f_plus_1 - 1,
            trust_certificates=self.scheme is SchemeKind.THRESHOLD)
        # Roll back to the last slot where this replica's execution agrees
        # with the adopted prefix: a forged or equivocated history may have
        # put a *different* certified batch at a slot this replica already
        # executed, and keeping it would fork the ledgers.  The rollback
        # never crosses the stable checkpoint — divergence below it is
        # durable locally and is repaired by the checkpoint layer's
        # state-digest comparison instead.
        rollback_target = kmax
        for sequence in sorted(prefix):
            if sequence > self.last_executed_sequence:
                break
            mine = self.executor.executed(sequence)
            if mine is not None and (mine.batch.digest()
                                     != prefix[sequence].batch.digest()):
                rollback_target = max(sequence - 1,
                                      self.checkpoints.stable_sequence)
                break
        # Roll back speculative execution beyond the adopted prefix.
        self.rollback_speculation(min(kmax, rollback_target), now_ms)
        # Drop pending (view-committed but not yet executed) slots that the
        # adopted prefix does not cover, *before* executing it: once the
        # prefix fills the gap in front of a stale speculative slot,
        # in-order execution would otherwise drain the stale slot right
        # behind it and diverge from the rest of the cluster.  Slots the
        # prefix does cover are re-adopted from the NV-PROPOSE entries.
        for sequence in [s for s in self._committed if s > kmax or s in prefix]:
            del self._committed[sequence]
        # Execute adopted entries this replica has not executed yet.
        for sequence in sorted(prefix):
            if sequence <= self.last_executed_sequence:
                continue
            entry = prefix[sequence]
            self._certified_log[sequence] = entry
            self.commit_slot(sequence=sequence, view=entry.view, batch=entry.batch,
                             proof=entry.certificate, now_ms=now_ms, speculative=False)
        return kmax

    def on_rolled_back(self, record) -> None:
        self._certified_log.pop(record.sequence, None)


#: The un-overridden SUPPORT-path methods, captured at import time; the
#: constructor only installs the fused MAC handler when the class still
#: carries exactly these (see PoeReplica.__init__).
_SUPPORT_PATH_ORIGINALS = (
    PoeReplica.handle_support,
    PoeReplica._handle_mac_support,
    PoeReplica._check_mac_commit,
)
