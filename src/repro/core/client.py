"""PoE client: a transaction is executed after nf identical INFORM messages.

The paper's client sends its signed request to the primary and waits for
identical INFORM messages from ``nf`` distinct replicas (Figure 3,
Client-role), which guarantees that at least ``nf - f >= f + 1``
non-faulty replicas executed the transaction and, by speculative
non-divergence, that every non-faulty replica eventually will.  If a
client receives no timely response it broadcasts the request to all
replicas, which forward it to the primary and arm the failure-detection
timers.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import NodeConfig
from repro.workload.clients import BatchSource, ClientPool


class PoeClientPool(ClientPool):
    """Client pool configured with PoE's completion rule (nf matching replies)."""

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=config.nf,
            target_outstanding=target_outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
            completion_quorum_fn=config.nf_of,
        )
