"""Proof-of-Execution (PoE): the paper's primary contribution.

PoE reaches consensus in three linear phases by executing transactions
*speculatively* once they are view-committed, and makes that speculation
safe through rollback during view-changes:

* :mod:`repro.core.messages` -- PROPOSE, SUPPORT, CERTIFY, INFORM,
  VC-REQUEST and NV-PROPOSE message types (paper, Figures 3 and 5).
* :mod:`repro.core.replica` -- the PoE replica state machine, covering the
  threshold-signature and MAC instantiations of the normal case.
* :mod:`repro.core.view_change` -- validation and new-view computation
  helpers used by the view-change algorithm.
* :mod:`repro.core.client` -- the PoE client(-pool), which considers a
  transaction executed after ``nf`` identical INFORM messages.
"""

from repro.core.messages import (
    PoePropose,
    PoeSupport,
    PoeCertify,
    PoeCommitVote,
    PoeViewChangeRequest,
    PoeNewView,
    CertifiedEntry,
)
from repro.core.replica import PoeReplica
from repro.core.client import PoeClientPool
from repro.core.view_change import (
    longest_consecutive_prefix,
    select_new_view_state,
    validate_view_change_request,
)

__all__ = [
    "PoePropose",
    "PoeSupport",
    "PoeCertify",
    "PoeCommitVote",
    "PoeViewChangeRequest",
    "PoeNewView",
    "CertifiedEntry",
    "PoeReplica",
    "PoeClientPool",
    "longest_consecutive_prefix",
    "select_new_view_state",
    "validate_view_change_request",
]
