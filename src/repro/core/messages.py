"""PoE protocol messages (paper, Figures 3 and 5).

The INFORM message of the paper is represented by the shared
:class:`~repro.protocols.client_messages.ClientReplyMessage` envelope with
``speculative=True``, since every protocol in this repository informs
clients through the same envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.threshold import SignatureShare, ThresholdSignature
from repro.protocols.base import Message
from repro.workload.transactions import RequestBatch


@dataclass(slots=True)
class PoePropose(Message):
    """PROPOSE(<T>_c, v, k): the primary proposes *batch* as slot *sequence*."""

    view: int = 0
    sequence: int = 0
    batch: RequestBatch = None


@dataclass(slots=True)
class PoeSupport(Message):
    """SUPPORT(s<h>_i, v, k): a replica supports the primary's proposal.

    In threshold mode the message carries the replica's signature share
    and is sent to the primary only; in MAC mode it carries the proposal
    digest and is broadcast to every replica (paper, Appendix A).
    """

    view: int = 0
    sequence: int = 0
    proposal_digest: bytes = b""
    share: Optional[SignatureShare] = None
    replica_id: str = ""


@dataclass(slots=True)
class PoeCertify(Message):
    """CERTIFY(<h>, v, k): the primary's aggregated support certificate."""

    view: int = 0
    sequence: int = 0
    proposal_digest: bytes = b""
    certificate: Optional[ThresholdSignature] = None


@dataclass(slots=True)
class PoeCommitVote(Message):
    """COMMIT(v, k, d): ablation-only vote used when speculation is disabled.

    The paper's PoE never sends this message: replicas execute as soon as
    they view-commit (ingredient I1).  The ``speculative=False`` ablation
    re-introduces a PBFT-style commit phase so the benefit of speculative
    execution can be measured in isolation.
    """

    view: int = 0
    sequence: int = 0
    proposal_digest: bytes = b""
    replica_id: str = ""


@dataclass(frozen=True)
class CertifiedEntry:
    """One executed slot reported in a view-change request.

    Corresponds to the paper's ``(CERTIFY(<h>, w, k), <T>_c)`` pairs in
    the set ``E`` of a VC-REQUEST (Figure 5, Line 4).
    """

    sequence: int
    view: int
    proposal_digest: bytes
    batch: RequestBatch
    certificate: Any = None


@dataclass
class PoeViewChangeRequest(Message):
    """VC-REQUEST(v, E): a replica requesting replacement of view *view*'s primary."""

    view: int = 0
    replica_id: str = ""
    stable_checkpoint: int = -1
    executed: Tuple[CertifiedEntry, ...] = ()


@dataclass
class PoeNewView(Message):
    """NV-PROPOSE(v+1, m_1..m_nf): the new primary's new-view proposal."""

    new_view: int = 0
    requests: Tuple[PoeViewChangeRequest, ...] = ()
