"""View-change helpers: request validation and new-view state selection.

The view-change algorithm (paper, Section II-C) has three steps: detect
the failure, exchange VC-REQUEST messages summarising executed
transactions, and have the new primary propose a new view from ``nf``
valid requests.  Replicas receiving the NV-PROPOSE pick the longest
consecutive sequence of executed transactions among the included
requests, execute what they miss, and roll back anything they executed
beyond it.  These pure functions implement the validation and selection
logic so they can be unit- and property-tested independently of the
replica state machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.hashing import digest

if TYPE_CHECKING:  # imported lazily: protocols import this module at load time
    from repro.core.messages import CertifiedEntry, PoeNewView, PoeViewChangeRequest


def proposal_digest(sequence: int, view: int, batch_digest: bytes) -> bytes:
    """The digest ``h = D(k || v || <T>_c)`` signed by SUPPORT messages."""
    return digest("poe-proposal", sequence, view, batch_digest)


def validate_view_change_request(
    request: PoeViewChangeRequest,
    auth: Authenticator,
    expected_view: int,
    verify_certificates: bool = True,
) -> bool:
    """Check one VC-REQUEST (paper, Figure 5, nv-propose preconditions).

    A request is valid when it targets the expected view and its executed
    entries form a consecutive sequence starting right after the sender's
    stable checkpoint, each carrying a certificate for the right digest.
    Certificates are threshold signatures in threshold mode; in MAC mode
    they are supporter sets whose authenticity cannot be re-checked by a
    third party, so ``verify_certificates=False`` skips the cryptographic
    check (the quorum-intersection argument still applies).
    """
    if request.view != expected_view:
        return False
    expected_sequence = request.stable_checkpoint + 1
    for entry in request.executed:
        if entry.sequence != expected_sequence:
            return False
        expected_sequence += 1
        expected_digest = proposal_digest(entry.sequence, entry.view,
                                          entry.batch.digest())
        if entry.proposal_digest != expected_digest:
            return False
        if verify_certificates and entry.certificate is not None:
            if not auth.threshold_verify(entry.certificate, expected_digest):
                return False
    return True


def longest_consecutive_prefix(
    requests: Sequence[PoeViewChangeRequest],
) -> Tuple[Dict[int, CertifiedEntry], int]:
    """Select the new-view execution state from a set of VC-REQUESTs.

    Returns the union of executed entries restricted to the longest
    consecutive prefix (the paper's ``E'``) and ``kmax``, the sequence
    number of its last transaction (-1 if nothing was executed anywhere).

    The selection walks sequence numbers upward from the smallest stable
    checkpoint: a sequence number is part of ``E'`` while at least one
    request reports an entry for it (requests are consecutive by
    validation, so the union is consecutive as well).

    ``kmax`` is additionally anchored at the highest *stable checkpoint*
    reported by any request: a stable checkpoint proves a quorum made that
    state durable, so the new view must never start (or roll back to)
    below it — even when the requests carrying executed entries all come
    from replicas whose checkpoints lag behind.
    """
    max_checkpoint = max((r.stable_checkpoint for r in requests), default=-1)
    entries: Dict[int, CertifiedEntry] = {}
    for request in requests:
        for entry in request.executed:
            entries.setdefault(entry.sequence, entry)
    # Walk the consecutive run upward from the anchor.  Entries at or below
    # the anchor are already durable system-wide and cannot extend kmax
    # (rolling back to them would cross the checkpoint), but they stay in
    # the returned prefix so lagging replicas can execute them directly
    # instead of waiting for a state transfer.
    kmax = max_checkpoint
    while kmax + 1 in entries:
        kmax += 1
    prefix = {seq: entry for seq, entry in entries.items() if seq <= kmax}
    return prefix, kmax


def select_new_view_state(
    new_view: PoeNewView,
) -> Tuple[Dict[int, CertifiedEntry], int]:
    """Convenience wrapper applying :func:`longest_consecutive_prefix` to a NV-PROPOSE."""
    return longest_consecutive_prefix(new_view.requests)


def reconcile_speculative_histories(
    requests: Sequence[object],
    f: int,
) -> Tuple[Dict[int, object], int]:
    """Select the new-view history from purely speculative VC requests (Zyzzyva).

    Unlike PoE and SBFT, Zyzzyva's executed entries carry no per-slot
    certificate — execution is purely speculative — so the new view cannot
    adopt any single replica's history at face value.  Reconciliation
    follows Zyzzyva's view-change rule instead:

    * the adopted history is **anchored** at the highest durable point any
      request proves: a stable checkpoint or the sequence number of a
      commit certificate (a client-distributed certificate backed by
      ``2f + 1`` matching speculative responses);
    * **at or below** the anchor, slots are durable system-wide; for each
      the best-supported entry (most requests reporting the same batch,
      ties broken on the smallest batch digest) is adopted so lagging
      replicas can execute it directly;
    * **above** the anchor, a speculative entry is adopted only when at
      least ``f + 1`` requests report the same batch for that slot — any
      fast-path-completed request was executed by every honest replica,
      so it appears in at least ``f + 1`` of any ``2f + 1`` requests and
      is never lost; a slot where no entry reaches ``f + 1`` support ends
      the adopted prefix.

    Each request must expose ``stable_checkpoint``, an optional
    ``commit_certificate`` (with a ``sequence`` attribute) and ``executed``
    entries with ``sequence`` and ``batch``.  Returns the adopted prefix
    and ``kmax``, its last sequence number.
    """
    anchor = -1
    for request in requests:
        anchor = max(anchor, request.stable_checkpoint)
        certificate = getattr(request, "commit_certificate", None)
        if certificate is not None:
            anchor = max(anchor, certificate.sequence)
    support: Dict[int, Dict[bytes, List[object]]] = {}
    for request in requests:
        for entry in request.executed:
            by_digest = support.setdefault(entry.sequence, {})
            by_digest.setdefault(entry.batch.digest(), []).append(entry)

    def best_entry(sequence: int, minimum: int):
        candidates = support.get(sequence)
        if not candidates:
            return None
        digest_key, entries = min(candidates.items(),
                                  key=lambda item: (-len(item[1]), item[0]))
        if len(entries) < minimum:
            return None
        return entries[0]

    prefix: Dict[int, object] = {}
    for sequence in sorted(s for s in support if s <= anchor):
        entry = best_entry(sequence, 1)
        if entry is not None:
            prefix[sequence] = entry
    kmax = anchor
    while True:
        entry = best_entry(kmax + 1, f + 1)
        if entry is None:
            break
        kmax += 1
        prefix[kmax] = entry
    return prefix, kmax
