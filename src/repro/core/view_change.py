"""View-change helpers: request validation and new-view state selection.

The view-change algorithm (paper, Section II-C) has three steps: detect
the failure, exchange VC-REQUEST messages summarising executed
transactions, and have the new primary propose a new view from ``nf``
valid requests.  Replicas receiving the NV-PROPOSE pick the longest
consecutive sequence of executed transactions among the included
requests, execute what they miss, and roll back anything they executed
beyond it.  These pure functions implement the validation and selection
logic so they can be unit- and property-tested independently of the
replica state machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.hashing import digest

if TYPE_CHECKING:  # imported lazily: protocols import this module at load time
    from repro.core.messages import CertifiedEntry, PoeNewView, PoeViewChangeRequest


def proposal_digest(sequence: int, view: int, batch_digest: bytes) -> bytes:
    """The digest ``h = D(k || v || <T>_c)`` signed by SUPPORT messages."""
    return digest("poe-proposal", sequence, view, batch_digest)


def validate_view_change_request(
    request: PoeViewChangeRequest,
    auth: Authenticator,
    expected_view: int,
    verify_certificates: bool = True,
) -> bool:
    """Check one VC-REQUEST (paper, Figure 5, nv-propose preconditions).

    A request is valid when it targets the expected view and its executed
    entries form a consecutive sequence starting right after the sender's
    stable checkpoint, each carrying a certificate for the right digest.
    Certificates are threshold signatures in threshold mode; in MAC mode
    they are supporter sets whose authenticity cannot be re-checked by a
    third party, so ``verify_certificates=False`` skips the cryptographic
    check (the quorum-intersection argument still applies).

    In threshold mode a missing certificate is a *rejection*, not a skip:
    an executed entry only ever enters the certified log together with the
    certificate that view-committed it, so a certificate-less entry is
    necessarily fabricated (a Byzantine replica forging history for slots
    it never certified) and admitting it would let forged batches into the
    new-view prefix selection.
    """
    if request.view != expected_view:
        return False
    expected_sequence = request.stable_checkpoint + 1
    for entry in request.executed:
        if entry.sequence != expected_sequence:
            return False
        expected_sequence += 1
        expected_digest = proposal_digest(entry.sequence, entry.view,
                                          entry.batch.digest())
        if entry.proposal_digest != expected_digest:
            return False
        if verify_certificates:
            if entry.certificate is None:
                return False
            if not auth.threshold_verify(entry.certificate, expected_digest):
                return False
    return True


def longest_consecutive_prefix(
    requests: Sequence[PoeViewChangeRequest],
    f: int = 0,
    trust_certificates: bool = False,
) -> Tuple[Dict[int, CertifiedEntry], int]:
    """Select the new-view execution state from a set of VC-REQUESTs.

    Returns the union of executed entries restricted to the longest
    consecutive prefix (the paper's ``E'``) and ``kmax``, the sequence
    number of its last transaction (-1 if nothing was executed anywhere).

    The selection walks sequence numbers upward from the highest stable
    checkpoint: a sequence number is part of ``E'`` while at least one
    request reports an entry for it (requests are consecutive by
    validation, so the union is consecutive as well).  When requests
    disagree about a slot, the best-supported entry wins (most requests
    reporting the same batch; with *trust_certificates*, an entry carrying
    a verified certificate beats any uncertified plurality; ties break on
    the smallest batch digest) — a fast-path-completed batch was executed
    by ``nf`` replicas, so it out-supports any single forged history.

    ``kmax`` is additionally anchored at the highest *stable checkpoint*
    reported by any request: a stable checkpoint proves a quorum made that
    state durable, so the new view must never start (or roll back to)
    below it — even when the requests carrying executed entries all come
    from replicas whose checkpoints lag behind.  Entries at or below that
    anchor stay in the returned prefix so lagging replicas can execute
    them directly, but only when a verified certificate (threshold mode)
    or ``f + 1`` matching requests back them: the durable region is
    exactly where a Byzantine replica forging history for slots it never
    held could otherwise rewrite settled state, so bare single-request
    claims there are left to checkpoint state transfer instead
    (*f* = 0 keeps the permissive pre-certificate behaviour for callers
    that have no fault bound to enforce).
    """
    max_checkpoint = max((r.stable_checkpoint for r in requests), default=-1)
    support: Dict[int, Dict[bytes, List[CertifiedEntry]]] = {}
    certified: Dict[int, Dict[bytes, bool]] = {}
    for request in requests:
        for entry in request.executed:
            batch_digest = entry.batch.digest()
            by_digest = support.setdefault(entry.sequence, {})
            by_digest.setdefault(batch_digest, []).append(entry)
            if trust_certificates and entry.certificate is not None:
                certified.setdefault(entry.sequence, {})[batch_digest] = True

    prefix: Dict[int, CertifiedEntry] = {}
    for sequence in sorted(s for s in support if s <= max_checkpoint):
        entry = _best_supported_entry(support, certified, sequence, f + 1)
        if entry is not None:
            prefix[sequence] = entry
    kmax = max_checkpoint
    while True:
        # Above the anchor a lone honest request may legitimately be the
        # only witness of the speculative tail, so an *uncontested* entry
        # needs just one supporter.  A contested slot — two digests
        # competing — is different: before the first checkpoint stabilises
        # the anchor is -1 and every slot sits up here, so a single forged
        # history tying a lone honest witness would come down to the
        # digest tiebreak.  Disagreement therefore demands a verified
        # certificate or f + 1 matching requests; slots nobody can prove
        # are left to client retransmission and state transfer.
        candidates = support.get(kmax + 1)
        contested = candidates is not None and len(candidates) > 1
        minimum = (f + 1) if contested and not certified.get(kmax + 1) else 1
        entry = _best_supported_entry(support, certified, kmax + 1, minimum)
        if entry is None:
            break
        kmax += 1
        prefix[kmax] = entry
    return prefix, kmax


def _best_supported_entry(
    support: Dict[int, Dict[bytes, List[object]]],
    certified: Dict[int, Dict[bytes, bool]],
    sequence: int,
    minimum: int,
) -> Optional[object]:
    """The quorum-selection core shared by both prefix selectors.

    Certified digests form the candidate pool when any exist (certificates
    beat plurality); otherwise the best-supported digest wins and must
    reach *minimum* matching requests.  Ties break on the smallest digest
    so every replica selects identically.  Among the winning digest's
    entries, one carrying a per-slot commit certificate is preferred so
    adopters can store the certificate alongside the re-executed slot.
    """
    candidates = support.get(sequence)
    if not candidates:
        return None
    certified_digests = certified.get(sequence, {})
    pool = {d: entries for d, entries in candidates.items()
            if d in certified_digests} or candidates
    digest_key, entries = min(pool.items(),
                              key=lambda item: (-len(item[1]), item[0]))
    if digest_key not in certified_digests and len(entries) < minimum:
        return None
    for entry in entries:
        if getattr(entry, "commit_certificate", None) is not None:
            return entry
    return entries[0]


def select_new_view_state(
    new_view: PoeNewView,
) -> Tuple[Dict[int, CertifiedEntry], int]:
    """Convenience wrapper applying :func:`longest_consecutive_prefix` to a NV-PROPOSE."""
    return longest_consecutive_prefix(new_view.requests)


class SpeculativeAnchor(NamedTuple):
    """The durable point a set of Zyzzyva VC requests proves.

    * ``anchor`` — the highest of every reported stable checkpoint and
      every *corroborated* commit-certificate sequence (see below);
    * ``checkpoint`` — the highest reported *stable checkpoint* (a state
      digest and a serveable state-transfer snapshot exist exactly at
      checkpoint boundaries, unlike a commit-certificate anchor);
    * ``checkpoint_digest`` — the state digest at ``checkpoint``, but only
      when ``f + 1`` requests agree on it (one Byzantine request must not
      be able to claim an arbitrary digest for the quorum's durable
      state); ``None`` otherwise;
    * ``witness`` — the ``replica_id`` of a request proving the anchor, a
      peer a lagging replica can request a state transfer from.
    """

    anchor: int
    checkpoint: int
    checkpoint_digest: Optional[bytes]
    witness: Optional[str]


def corroborated_certificates(
    requests: Sequence[object],
    f: int,
) -> Dict[int, Tuple[str, bytes]]:
    """Commit certificates carried by at least ``f + 1`` distinct requests.

    MAC mode cannot re-verify a certificate's responder authenticators, so
    a certificate carried by a *single* request is an unverifiable claim —
    one Byzantine replica could fabricate it, and letting it override
    support counting (or raise the anchor) would hand the forger exactly
    the power the certificates exist to remove.  A **genuine** certificate
    clears the bar naturally: the client broadcasts it to everyone and the
    ``2f + 1`` responders validated and stored it, so any ``2f + 1``
    view-change requests include at least ``f + 1`` honest carriers.
    Carriers are counted per *request*, not per occurrence — a request
    shipping the same certificate at request level and on its entry must
    not corroborate itself.  Returns ``sequence -> (batch_id,
    result_digest)`` for the certificates that qualify.
    """
    carriers: Dict[Tuple[int, str, bytes], int] = {}
    for request in requests:
        carried: set = set()
        certificate = getattr(request, "commit_certificate", None)
        if certificate is not None:
            carried.add((certificate.sequence, certificate.batch_id,
                         certificate.result_digest))
        for entry in request.executed:
            entry_cert = getattr(entry, "commit_certificate", None)
            if entry_cert is not None:
                carried.add((entry_cert.sequence, entry_cert.batch_id,
                             entry_cert.result_digest))
        for key in carried:
            carriers[key] = carriers.get(key, 0) + 1
    corroborated: Dict[int, Tuple[str, bytes]] = {}
    for (sequence, batch_id, result_digest), count in sorted(carriers.items()):
        if count >= f + 1:
            corroborated.setdefault(sequence, (batch_id, result_digest))
    return corroborated


def speculative_anchor(
    requests: Sequence[object],
    f: int,
) -> SpeculativeAnchor:
    """Compute the :class:`SpeculativeAnchor` of a set of VC requests."""
    anchor = -1
    witness: Optional[str] = None
    checkpoint_digests: Dict[Tuple[int, bytes], int] = {}
    best_checkpoint = -1
    for request in requests:
        stable = request.stable_checkpoint
        if stable > anchor:
            anchor = stable
            witness = getattr(request, "replica_id", None) or witness
        best_checkpoint = max(best_checkpoint, stable)
        digest_claim = getattr(request, "checkpoint_digest", b"")
        if stable >= 0 and digest_claim:
            key = (stable, digest_claim)
            checkpoint_digests[key] = checkpoint_digests.get(key, 0) + 1
    # Certificate-based anchors need f+1 carriers: a single request's
    # certificate is an unverifiable claim that would otherwise let one
    # forger re-base the new view past a permanent gap.
    certified = corroborated_certificates(requests, f)
    for sequence in certified:
        if sequence > anchor:
            anchor = sequence
            for request in requests:
                certificate = getattr(request, "commit_certificate", None)
                if certificate is not None and certificate.sequence == sequence:
                    witness = getattr(request, "replica_id", None) or witness
                    break
            else:
                for request in requests:
                    if any(getattr(entry, "commit_certificate", None) is not None
                           and entry.sequence == sequence
                           for entry in request.executed):
                        witness = getattr(request, "replica_id",
                                          None) or witness
                        break
    checkpoint_digest: Optional[bytes] = None
    if best_checkpoint >= 0:
        for (stable, digest_claim), count in sorted(checkpoint_digests.items()):
            if stable == best_checkpoint and count >= f + 1:
                checkpoint_digest = digest_claim
                break
    return SpeculativeAnchor(anchor, best_checkpoint, checkpoint_digest, witness)


def reconcile_speculative_histories(
    requests: Sequence[object],
    f: int,
) -> Tuple[Dict[int, object], int]:
    """Select the new-view history from speculative VC requests (Zyzzyva).

    Zyzzyva's execution is speculative, so the new view cannot adopt any
    single replica's history at face value.  Reconciliation follows the
    view-change rule, strengthened with per-slot commit certificates:

    * the adopted history is **anchored** at the highest durable point any
      request proves: a stable checkpoint or the sequence number of a
      commit certificate (a client-distributed certificate backed by
      ``2f + 1`` matching speculative responses — carried both per slot
      and as the request-level anchor certificate);
    * a slot's entry is adoptable when it carries a **corroborated commit
      certificate** (the same certificate shipped by at least ``f + 1``
      requests — see :func:`corroborated_certificates`; certified entries
      beat any plurality, above or below the anchor) or when at least
      ``f + 1`` requests report the same batch for the slot: any
      fast-path-completed request was executed by every honest replica,
      so it appears in at least ``f + 1`` of any ``2f + 1`` requests and
      is never lost;
    * slots **at or below** the anchor with no adoptable entry are left to
      checkpoint state transfer: they are durable system-wide, and
      adopting a bare plurality there would let one forged history rewrite
      slots the quorum already settled (the Hellings & Rahnama corner);
      a slot **above** the anchor with no adoptable entry ends the prefix.

    Each request must expose ``stable_checkpoint``, an optional
    ``commit_certificate`` (with a ``sequence`` attribute) and ``executed``
    entries with ``sequence``, ``batch`` and an optional per-entry
    ``commit_certificate``.  Returns the adopted prefix and ``kmax``, its
    last sequence number.
    """
    anchor = speculative_anchor(requests, f).anchor
    certificates = corroborated_certificates(requests, f)
    support: Dict[int, Dict[bytes, List[object]]] = {}
    certified: Dict[int, Dict[bytes, bool]] = {}
    for request in requests:
        for entry in request.executed:
            batch_digest = entry.batch.digest()
            by_digest = support.setdefault(entry.sequence, {})
            by_digest.setdefault(batch_digest, []).append(entry)
            corroborated = certificates.get(entry.sequence)
            if corroborated is not None and \
                    corroborated[0] == entry.batch.batch_id:
                certified.setdefault(entry.sequence, {})[batch_digest] = True

    prefix: Dict[int, object] = {}
    for sequence in sorted(s for s in support if s <= anchor):
        entry = _best_supported_entry(support, certified, sequence, f + 1)
        if entry is not None:
            prefix[sequence] = entry
    kmax = anchor
    while True:
        entry = _best_supported_entry(support, certified, kmax + 1, f + 1)
        if entry is None:
            break
        kmax += 1
        prefix[kmax] = entry
    return prefix, kmax
