"""Shared view-change recovery subsystem for primary-backup protocols.

Every primary-backup protocol in this repository recovers from a faulty
primary the same way (paper, Section II-C): replicas that suspect the
primary broadcast a VIEW-CHANGE request, any replica joins once ``f + 1``
requests prove a non-faulty replica detected the failure, the primary of
the next view combines a quorum of requests into a NEW-VIEW message, and
replicas adopt the state it certifies — executing what they missed and
rolling back speculation it does not cover.  A retry timer with
exponential back-off moves past a chain of faulty primaries.

Until this module existed the machinery lived twice (PoE in
``repro.core.replica``, PBFT in ``repro.protocols.pbft``) and the two
baselines that *needed* it most — SBFT and Zyzzyva, whose matrix cells
were documented as expected-stall/expected-unsafe — had none.
:class:`ViewChangeRecovery` is the extraction: a mixin over
:class:`~repro.protocols.replica_base.BatchingReplica` that owns the
generic vote bookkeeping, the join rule, the new-view quorum, the retry
back-off and the speculative-rollback audit trail, parameterised by a
small set of protocol hooks:

``view_change_quorum``
    how many valid requests the next primary needs (``nf`` for PoE,
    ``2f + 1`` for PBFT/SBFT/Zyzzyva);
``build_view_change_request`` / ``validate_view_change_request_message``
    the protocol's request payload (certified entries for PoE/SBFT,
    committed entries for PBFT, speculative histories plus the highest
    commit certificate for Zyzzyva) and its admission check;
``make_new_view`` / ``validate_new_view``
    the NEW-VIEW envelope and the receiver-side re-validation;
``adopt_new_view``
    the protocol-specific state selection — it runs *before* the view
    advances and returns ``kmax``, the last sequence number of the
    adopted prefix.

The mixin performs the shared epilogue (advance the view, reset the
back-off streak, re-base ``next_sequence``, re-propose pending client
requests, replay deferred new-view-era messages) so a protocol only
writes the part of recovery that is actually protocol-specific.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.crypto.cost import CryptoOp
from repro.ledger.execution import ExecutedBatch
from repro.protocols.base import Message
from repro.protocols.epoch import RECONFIG_PHASE


class ViewChangeRecovery:
    """Mixin implementing the protocol-agnostic view-change state machine.

    Use by listing it *before* ``BatchingReplica`` in the base-class list
    and calling :meth:`init_view_change` at the end of ``__init__``.  Map
    the protocol's VIEW-CHANGE and NEW-VIEW message types to
    ``handle_view_change_message`` / ``handle_new_view_message`` in
    ``MESSAGE_HANDLERS``.
    """

    #: Consecutive failed view changes double the retry timer up to a factor
    #: of ``2 ** VC_BACKOFF_CAP`` over the base ``2 * request_timeout_ms``.
    VC_BACKOFF_CAP = 5

    #: Name of the retry timer armed by :meth:`initiate_view_change`.
    VIEW_CHANGE_TIMER = "view-change"

    def init_view_change(self) -> None:
        """Initialise the recovery state; call once from ``__init__``."""
        self._vc_votes: Dict[int, Set[str]] = {}
        self._vc_requests: Dict[int, Dict[str, Message]] = {}
        self._entered_views: Set[int] = {0}
        self._vc_failed_attempts = 0
        self.view_changes_completed = 0
        self.rolled_back_batches = 0
        #: Audit trail: one ``(rollback_target, stable_checkpoint)`` pair per
        #: view-change rollback, checked by the safety auditor against the
        #: invariant that rollbacks never cross a stable checkpoint.
        self.rollback_log: List[Tuple[int, int]] = []

    # ------------------------------------------------------------ protocol hooks
    def view_change_quorum(self) -> int:
        """Valid requests the next primary needs before proposing a NEW-VIEW.

        Reads the epoch-refreshed ``f + 1`` cache rather than the boot
        configuration: after a reconfiguration activates, view-change
        quorums are counted against the epoch the view belongs to.
        """
        return 2 * self._f_plus_1 - 1

    def build_view_change_request(self, view: int) -> Message:
        """Build this replica's VIEW-CHANGE request for replacing *view*."""
        raise NotImplementedError

    def validate_view_change_request_message(self, request: Message,
                                             view: int) -> bool:
        """Admission check for one received VIEW-CHANGE request."""
        return True

    def make_new_view(self, new_view: int, requests: Tuple[Message, ...]) -> Message:
        """Build the NEW-VIEW message from a quorum of *requests*."""
        raise NotImplementedError

    def accept_new_view(self, proposal: Message,
                        admissible: Tuple[Message, ...]) -> bool:
        """Receiver-side acceptance rule for a NEW-VIEW message.

        *admissible* is the subset of the proposal's requests that passed
        :meth:`validate_view_change_request_message` — computed once and
        shared with :meth:`adopt_new_view`, so protocols do not re-verify
        (and re-charge) per-slot certificates a second time.
        """
        return len(admissible) >= self.view_change_quorum()

    def adopt_new_view(self, proposal: Message,
                       requests: Tuple[Message, ...], now_ms: float) -> int:
        """Adopt the state a NEW-VIEW certifies; return the adopted ``kmax``.

        *requests* holds only the admissible view-change requests — a
        Byzantine leader may pad the proposal with forged extras, and
        their entries must never reach prefix selection.  Runs while
        ``self.view`` is still the old view, so protocol code can
        distinguish old-view bookkeeping from the view being entered.
        """
        raise NotImplementedError

    def on_view_entered(self, view: int, now_ms: float) -> None:
        """Hook invoked right after the view advanced (timers, role rotation)."""

    def on_rolled_back(self, record: ExecutedBatch) -> None:
        """Hook invoked per batch reverted by :meth:`rollback_speculation`."""

    # ---------------------------------------------------------------- triggers
    def on_progress_timeout(self, batch_id: str, now_ms: float) -> None:
        """A forwarded request was not executed in time: suspect the primary."""
        self.initiate_view_change(now_ms)

    def initiate_view_change(self, now_ms: float) -> None:
        """Halt the normal case and broadcast a VIEW-CHANGE request."""
        if self.view_change_in_progress:
            return
        self.view_change_in_progress = True
        request = self.build_view_change_request(self.view)
        self.charge(CryptoOp.SIGN)
        self.broadcast(request)
        self.record_view_change_vote(self.view, self.node_id, request, now_ms)
        # Exponential back-off: if the next primary is also faulty, move on.
        # The delay doubles per consecutive failed view change (capped) so a
        # run of faulty primaries does not retry at a flat cadence.
        delay = self.config.request_timeout_ms * 2 * (
            2 ** min(self._vc_failed_attempts, self.VC_BACKOFF_CAP))
        self.set_timer(self.VIEW_CHANGE_TIMER, delay, payload=self.view + 1)

    # ------------------------------------------------------------ vote counting
    def handle_view_change_message(self, sender: str, message: Message,
                                   now_ms: float) -> None:
        self.charge(CryptoOp.VERIFY)
        if message.view < self.view:
            return
        # Transport-level sender, not the spoofable message.replica_id: one
        # Byzantine replica must not count as f + 1 view-change voters.
        self.record_view_change_vote(message.view, sender, message, now_ms)

    def record_view_change_vote(self, view: int, replica_id: str,
                                request: Message, now_ms: float) -> None:
        votes = self._vc_votes.setdefault(view, set())
        votes.add(replica_id)
        requests = self._vc_requests.setdefault(view, {})
        if self.validate_view_change_request_message(request, view):
            requests[replica_id] = request
        # Join rule: f + 1 view-change requests prove a non-faulty replica
        # detected a failure (paper, Figure 5, Line 8).
        if (not self.view_change_in_progress and view == self.view
                and len(votes) >= self._f_plus_1):
            self.initiate_view_change(now_ms)
        self._maybe_propose_new_view(view, now_ms)

    def _maybe_propose_new_view(self, view: int, now_ms: float) -> None:
        """Next primary: broadcast NEW-VIEW once a quorum of requests arrived."""
        new_view = view + 1
        if self.primary_for_view(new_view) != self.node_id:
            return
        if new_view in self._entered_views:
            return
        requests = self._vc_requests.get(view, {})
        quorum = self.view_change_quorum()
        if len(requests) < quorum:
            return
        chosen = tuple(requests[r] for r in sorted(requests)[:quorum])
        proposal = self.make_new_view(new_view, chosen)
        self.charge(CryptoOp.SIGN)
        self.broadcast(proposal)
        # The chosen requests were validated at vote admission.
        self._enter_new_view(proposal, chosen, now_ms)

    def handle_new_view_message(self, sender: str, message: Message,
                                now_ms: float) -> None:
        if message.new_view <= self.view or message.new_view in self._entered_views:
            return
        if self.primary_for_view(message.new_view) != sender:
            return
        self.charge(CryptoOp.VERIFY, max(1, len(message.requests)))
        # One admissible request per claimed replica: the quorum rule and
        # every f+1 threshold downstream (certificate corroboration,
        # checkpoint-digest agreement, support counting) assume *distinct*
        # requests, so a Byzantine new primary must not be able to stuff
        # the proposal with copies of one forged request.
        admissible_list = []
        claimed_ids = set()
        for request in message.requests:
            claimed = getattr(request, "replica_id", None)
            if claimed in claimed_ids:
                continue
            if self.validate_view_change_request_message(
                    request, message.new_view - 1):
                claimed_ids.add(claimed)
                admissible_list.append(request)
        admissible = tuple(admissible_list)
        if not self.accept_new_view(message, admissible):
            # An invalid new-view proposal is treated as a failure of the
            # new primary: move on to the next view.
            self.initiate_view_change(now_ms)
            return
        self._enter_new_view(message, admissible, now_ms)

    # ------------------------------------------------------------- view entry
    def _prune_view_change_state(self) -> None:
        """Drop vote/request/dedup state for views the replica moved past.

        Votes and requests are keyed by the view being *replaced*; once
        this replica runs a later view, no quorum for an older one can
        still form that it would act on.  Without the prune, every
        completed or abandoned view change leaks its request pool for the
        rest of the run (flushed out by the soak recipe).
        """
        view = self.view
        for stale in [v for v in self._vc_votes if v < view]:
            del self._vc_votes[stale]
        for stale in [v for v in self._vc_requests if v < view]:
            del self._vc_requests[stale]
        # NEW-VIEW dedup for views <= self.view is already handled by the
        # `new_view <= self.view` guard, so only future entries matter.
        self._entered_views = {v for v in self._entered_views if v >= view}

    def _enter_new_view(self, proposal: Message,
                        requests: Tuple[Message, ...], now_ms: float) -> None:
        kmax = self.adopt_new_view(proposal, requests, now_ms)
        self.view = proposal.new_view
        self._entered_views.add(proposal.new_view)
        self.view_change_in_progress = False
        self.view_changes_completed += 1
        self._vc_failed_attempts = 0
        self._prune_view_change_state()
        self.cancel_timer(self.VIEW_CHANGE_TIMER)
        self.next_sequence = max(self.next_sequence, kmax + 1)
        if self.is_primary():
            self.next_sequence = kmax + 1
            self.maybe_propose(now_ms)
        self.on_view_entered(proposal.new_view, now_ms)
        # Replicas that were dark when the checkpoint votes went out (the
        # very replicas whose silence forced this view change) get the
        # transfer baseline re-established along with the new view.
        self.readvertise_stable_checkpoint()
        self.refresh_pending_requests(now_ms)
        self.replay_deferred(now_ms)

    def on_transfer_view_adopted(self, view: int, now_ms: float) -> None:
        """A state transfer advanced the view: align the recovery state.

        The transferred checkpoint proves the system entered *view*, so a
        pending retry timer for an older target must not fire a stale
        view change, and the view counts as entered for NEW-VIEW dedup.
        """
        self._entered_views.add(view)
        self.cancel_timer(self.VIEW_CHANGE_TIMER)

    def on_epoch_activated(self, entry, evicted, now_ms: float) -> None:
        """An epoch activated mid-recovery: no quorum may mix epochs.

        Pending view-change votes and requests from replicas the new
        epoch evicted are purged — a view change straddling the boundary
        completes with the new epoch's quorum counted over the new
        epoch's membership only, never with a stale evicted vote topping
        up the count.
        """
        super().on_epoch_activated(entry, evicted, now_ms)
        if not evicted:
            return
        for votes in self._vc_votes.values():
            for rid in evicted:
                votes.discard(rid)
        for requests in self._vc_requests.values():
            for rid in evicted:
                requests.pop(rid, None)

    # ---------------------------------------------------------------- rollback
    def rollback_speculation(self, kmax: int, now_ms: float) -> List[ExecutedBatch]:
        """Roll speculative execution back to *kmax*, keeping the audit trail.

        Clears reply/dedup bookkeeping for every reverted batch so clients
        can get the batch re-proposed in the new view, and gives the
        protocol a per-record hook for its own log cleanup.
        """
        if self.last_executed_sequence <= kmax:
            return []
        self.rollback_log.append((kmax, self.checkpoints.stable_sequence))
        reverted = self.executor.rollback_to(kmax)
        self.rolled_back_batches += len(reverted)
        for record in reverted:
            self._replied.pop(record.batch.batch_id, None)
            # A rolled-back batch must be acceptable again when the client
            # retransmits it in the new view.
            self._seen_batch_ids.discard(record.batch.batch_id)
            self._batch_sequence.pop(record.batch.batch_id, None)
            self.on_rolled_back(record)
            if (record.batch.control_phase == RECONFIG_PHASE
                    and self._pending_epochs):
                # A speculatively executed reconfiguration that did not
                # survive the view change must not activate; the shared
                # registry entry stays (it is idempotent and the record
                # re-registers identically when re-ordered).
                pending = self._pending_epochs
                for epoch in [e for e, entry in pending.items()
                              if entry.committed_at == record.sequence]:
                    del pending[epoch]
                self._epoch_gate = (
                    min(e.activation_sequence for e in pending.values())
                    if pending else None)
        return reverted

    # ------------------------------------------------------------------ timers
    def handle_view_change_timer(self, name: str, payload, now_ms: float) -> bool:
        """Process the retry timer; returns ``True`` when *name* was ours."""
        if name != self.VIEW_CHANGE_TIMER:
            return False
        # The new primary did not produce a valid NEW-VIEW in time.
        target_view = payload if isinstance(payload, int) else self.view + 1
        if target_view > self.view and self.view_change_in_progress:
            self.view_change_in_progress = False
            if not self._progress_timers \
                    and not self.has_unserved_forwarded_requests():
                # Stand down instead of escalating: everything this
                # replica suspected the primary over has since been served
                # (executed locally, or learned executed through a state
                # transfer), so there is no failure left to prove.  A lone
                # suspecter that keeps escalating drifts its view away
                # from the quorum and wedges itself out of the protocol;
                # if the primary really is faulty, client retransmissions
                # re-arm the progress timers and re-open the case.
                self._vc_failed_attempts = 0
                return True
            self.view = target_view
            self._entered_views.add(target_view)
            self._vc_failed_attempts += 1
            self._prune_view_change_state()
            self.initiate_view_change(now_ms)
        return True

    def on_protocol_timer(self, name: str, payload, now_ms: float) -> None:
        self.handle_view_change_timer(name, payload, now_ms)
