"""Consensus-committed membership reconfiguration (epochs).

A deployment starts in epoch 0 with the membership listed in its
:class:`~repro.protocols.base.NodeConfig`.  A :class:`ReconfigRecord` —
add never-before-seen replicas, remove replicas, and thereby resize ``n``
and ``f`` — is ordered through the normal batch path like any other
consensus slot, so every honest replica agrees on *where* in the sequence
the membership changes.  The record does not take effect at its commit
sequence: it activates at the next checkpoint boundary at or after it
(:func:`activation_boundary`), so the epoch switch coincides with a
stable-state anchor and every honest replica flips quorum arithmetic at
the same sequence number.

Safety hinges on two rules this module owns:

* **Admissibility** (:func:`reconfig_record_valid`): a record must chain
  directly onto the latest known epoch, keep ``n >= 4``, and keep enough
  continuity — at least ``2 f_old + 1`` members of the old epoch survive
  into the new one — that the surviving honest replicas of the old epoch
  can always certify the hand-off.  A Byzantine proposer *can* get an
  unsafe record ordered; every honest replica refuses it at execution
  (it commits as a no-op and is journaled), and the auditor re-validates
  every activated epoch from genesis, so a replica that activated an
  inadmissible epoch is flagged.
* **Quorum at the time** (:func:`epoch_transition_valid` plus the
  auditor's checkpoint-vote re-validation): votes for a sequence number
  are only countable against the membership of the epoch that sequence
  belongs to — an evicted replica's vote must never certify a commit
  after its removal epoch activates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.workload.transactions import RequestBatch

#: ``RequestBatch.control_phase`` marker for reconfiguration records.
RECONFIG_PHASE = "reconfig"

#: Smallest membership any epoch may shrink to (n >= 3f + 1 with f >= 1).
MIN_MEMBERSHIP = 4


@dataclass(frozen=True)
class ReconfigRecord(RequestBatch):
    """A membership change ordered through the normal batch path.

    Carries no transactions — the payload *is* the membership delta.  The
    ``batch_id`` commits to the full content (epoch number, adds and
    removes, in order), so an equivocating primary proposing two
    different deltas under one id is visible as a digest mismatch like
    any other equivocation.
    """

    new_epoch: int = 0
    add: Tuple[str, ...] = ()
    remove: Tuple[str, ...] = ()

    control_phase = RECONFIG_PHASE


def make_reconfig_record(new_epoch: int, add: Sequence[str] = (),
                         remove: Sequence[str] = (),
                         created_at_ms: float = 0.0) -> ReconfigRecord:
    """Build a content-committing reconfiguration record."""
    add = tuple(add)
    remove = tuple(remove)
    batch_id = f"reconfig:{new_epoch}:+{','.join(add)}:-{','.join(remove)}"
    return ReconfigRecord(batch_id=batch_id, transactions=(),
                          created_at_ms=created_at_ms, logical_size=1,
                          new_epoch=new_epoch, add=add, remove=remove)


def activation_boundary(sequence: int, checkpoint_interval: int) -> int:
    """The checkpoint boundary at or after *sequence* where an epoch activates.

    Boundaries are the sequences ``b`` with ``(b + 1) % interval == 0``
    (the same rule ``maybe_checkpoint`` uses).  A record committed *at* a
    boundary activates at that boundary: the boundary's own checkpoint
    votes still count under the old epoch, and every sequence after it
    belongs to the new one.
    """
    if checkpoint_interval <= 0:
        return sequence
    return sequence + (checkpoint_interval - 1 - (sequence % checkpoint_interval))


def apply_reconfig(membership: Sequence[str], add: Iterable[str],
                   remove: Iterable[str]) -> Tuple[str, ...]:
    """The new membership: old order with removals dropped, adds appended.

    Keeping the surviving members' relative order (and appending joiners)
    preserves primary-rotation continuity across the epoch switch.
    """
    removed = set(remove)
    kept = [rid for rid in membership if rid not in removed]
    kept.extend(add)
    return tuple(kept)


def reconfig_record_valid(record: ReconfigRecord, current_epoch: int,
                          membership: Sequence[str]) -> Tuple[bool, str]:
    """Is *record* admissible on top of (*current_epoch*, *membership*)?

    Returns ``(ok, reason)`` — *reason* names the violated rule when the
    record must be refused.  The quorum-continuity rule is the one a
    colluding proposer attacks: a change that drops honest replicas below
    quorum (fewer than ``2 f_old + 1`` old members surviving) could strand
    the hand-off, so it is refused outright.
    """
    if record.new_epoch != current_epoch + 1:
        return False, (f"epoch must chain: expected {current_epoch + 1}, "
                       f"got {record.new_epoch}")
    members = set(membership)
    adds = set(record.add)
    removes = set(record.remove)
    if len(adds) != len(record.add) or len(removes) != len(record.remove):
        return False, "duplicate ids in add/remove"
    if adds & removes:
        return False, "add and remove overlap"
    if adds & members:
        return False, "added replica already a member"
    if not removes <= members:
        return False, "removed replica not a member"
    new_members = apply_reconfig(membership, record.add, record.remove)
    if len(new_members) < MIN_MEMBERSHIP:
        return False, (f"new membership {len(new_members)} below minimum "
                       f"{MIN_MEMBERSHIP}")
    f_old = (len(membership) - 1) // 3
    survivors = len(members - removes)
    if survivors < 2 * f_old + 1:
        return False, (f"quorum continuity broken: {survivors} survivors of "
                       f"epoch {current_epoch}, need {2 * f_old + 1}")
    return True, ""


@dataclass(frozen=True)
class EpochEntry:
    """One activated (or pending) epoch in a replica's epoch log.

    ``committed_at`` is the sequence the reconfiguration record executed
    at (``-1`` for genesis); ``activation_sequence`` is the checkpoint
    boundary at which the epoch's quorum arithmetic takes effect — every
    sequence strictly greater belongs to this epoch.
    """

    epoch: int
    activation_sequence: int
    members: Tuple[str, ...]
    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    committed_at: int = -1

    def as_wire(self) -> Tuple:
        """Plain-tuple form for state-transfer payloads."""
        return (self.epoch, self.activation_sequence, self.members,
                self.added, self.removed, self.committed_at)

    @classmethod
    def from_wire(cls, wire: Sequence) -> "EpochEntry":
        epoch, activation, members, added, removed, committed = wire
        return cls(epoch=int(epoch), activation_sequence=int(activation),
                   members=tuple(members), added=tuple(added),
                   removed=tuple(removed), committed_at=int(committed))


def genesis_entry(membership: Sequence[str]) -> EpochEntry:
    """Epoch 0: the boot membership, active from the first sequence."""
    return EpochEntry(epoch=0, activation_sequence=-1,
                      members=tuple(membership))


def epoch_transition_valid(prev: EpochEntry, entry: EpochEntry) -> Tuple[bool, str]:
    """Re-validate one epoch-log transition (auditor-side, from genesis).

    Mirrors :func:`reconfig_record_valid` but checks an *activated* entry:
    the epoch chain, the membership delta arithmetic, the minimum size,
    the quorum-continuity rule, and that activation happened at or after
    the record's commit sequence.
    """
    if entry.epoch != prev.epoch + 1:
        return False, f"epoch chain broken: {prev.epoch} -> {entry.epoch}"
    record = ReconfigRecord(batch_id="", transactions=(), logical_size=1,
                            new_epoch=entry.epoch, add=entry.added,
                            remove=entry.removed)
    ok, reason = reconfig_record_valid(record, prev.epoch, prev.members)
    if not ok:
        return False, reason
    expected = apply_reconfig(prev.members, entry.added, entry.removed)
    if tuple(entry.members) != expected:
        return False, "membership does not match the declared delta"
    if entry.activation_sequence < entry.committed_at:
        return False, (f"activated at {entry.activation_sequence} before "
                       f"commit at {entry.committed_at}")
    if entry.activation_sequence <= prev.activation_sequence:
        return False, "activation sequences must increase"
    return True, ""


def validate_epoch_log(log: Sequence[EpochEntry]) -> List[str]:
    """All transition violations in *log*, genesis first (empty == valid)."""
    problems: List[str] = []
    if not log:
        return ["empty epoch log"]
    first = log[0]
    if first.epoch != 0:
        problems.append(f"log must start at epoch 0, starts at {first.epoch}")
        return problems
    for prev, entry in zip(log, log[1:]):
        ok, reason = epoch_transition_valid(prev, entry)
        if not ok:
            problems.append(f"epoch {entry.epoch}: {reason}")
    return problems
