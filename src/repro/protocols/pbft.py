"""PBFT baseline (Castro & Liskov), as implemented in RESILIENTDB.

The paper compares PoE against a PBFT implementation "based on the
BFTSmart framework with the added benefits of pipelining and
multi-threading of RESILIENTDB" (Section IV-A).  PBFT needs three phases:
a linear PRE-PREPARE followed by two all-to-all phases (PREPARE and
COMMIT); replicas authenticate with MACs and clients wait for ``f + 1``
matching replies.  The quadratic message complexity — and the matching
quadratic MAC signing/verification cost — is what PoE's three linear
phases avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.view_change import longest_consecutive_prefix
from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.hashing import digest
from repro.protocols.base import Message, NodeConfig, ProtocolInfo
from repro.protocols.quorum import VoteSet
from repro.protocols.recovery import ViewChangeRecovery
from repro.protocols.replica_base import BatchingReplica
from repro.workload.clients import BatchSource, ClientPool
from repro.workload.transactions import RequestBatch


@dataclass(slots=True)
class PbftPrePrepare(Message):
    """PRE-PREPARE(v, k, batch) broadcast by the primary."""

    view: int = 0
    sequence: int = 0
    batch: RequestBatch = None


@dataclass(slots=True)
class PbftPrepare(Message):
    """PREPARE(v, k, d) broadcast by every replica."""

    view: int = 0
    sequence: int = 0
    batch_digest: bytes = b""
    replica_id: str = ""


@dataclass(slots=True)
class PbftCommit(Message):
    """COMMIT(v, k, d) broadcast by every prepared replica."""

    view: int = 0
    sequence: int = 0
    batch_digest: bytes = b""
    replica_id: str = ""


@dataclass(frozen=True)
class PbftExecutedEntry:
    """One executed slot carried in a view-change message."""

    sequence: int
    view: int
    batch_digest: bytes
    batch: RequestBatch
    committers: Tuple[str, ...] = ()


@dataclass
class PbftViewChange(Message):
    """VIEW-CHANGE(v, C): a replica asking to replace the primary of view v."""

    view: int = 0
    replica_id: str = ""
    stable_checkpoint: int = -1
    executed: Tuple[PbftExecutedEntry, ...] = ()


@dataclass
class PbftNewView(Message):
    """NEW-VIEW(v+1, V): the next primary's new-view message."""

    new_view: int = 0
    requests: Tuple[PbftViewChange, ...] = ()


@dataclass(slots=True)
class _PbftSlot:
    """Per (view, sequence) consensus bookkeeping.

    The PREPARE/COMMIT phases are all-to-all: at n replicas each slot
    absorbs ~2n² vote deliveries, so the vote sets are aggregated
    :class:`~repro.protocols.quorum.VoteSet` bitsets built by
    :meth:`PbftReplica._slot` with the deployment's index map.
    """

    batch: Optional[RequestBatch] = None
    batch_digest: bytes = b""
    prepare_votes: VoteSet = None
    commit_votes: VoteSet = None
    prepared: bool = False
    committed: bool = False
    commit_sent: bool = False


class PbftReplica(ViewChangeRecovery, BatchingReplica):
    """A PBFT replica with out-of-order pre-prepares and MAC authentication."""

    PROTOCOL_INFO = ProtocolInfo(
        name="PBFT",
        phases=3,
        messages="O(n + 2n^2)",
        resilience="f",
        requirements="",
    )

    MESSAGE_HANDLERS = {
        PbftPrePrepare: "handle_preprepare",
        PbftPrepare: "handle_prepare",
        PbftCommit: "handle_commit",
        PbftViewChange: "handle_view_change_message",
        PbftNewView: "handle_new_view_message",
    }

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model, initial_table)
        #: Keyed by ``(view << 32) | sequence`` (see :meth:`_slot`).
        self._slots: Dict[int, _PbftSlot] = {}
        self._accepted_preprepare: Dict[Tuple[int, int], bytes] = {}
        self._executed_log: Dict[int, PbftExecutedEntry] = {}
        self._quorum_size = 2 * config.f + 1
        self.init_view_change()

    # ------------------------------------------------------------------ helpers
    def _slot(self, view: int, sequence: int) -> _PbftSlot:
        # get-then-insert: setdefault would construct a throwaway slot
        # (plus two vote sets) on every one of the ~2n² votes per slot.
        # Keys are packed ints — cheaper to hash than a fresh tuple.
        key = (view << 32) | sequence
        slot = self._slots.get(key)
        if slot is None:
            index_map = self._vote_index
            slot = self._slots[key] = _PbftSlot(
                prepare_votes=VoteSet(index_map), commit_votes=VoteSet(index_map))
        return slot

    def _quorum(self) -> int:
        return self._quorum_size

    # ---------------------------------------------------------------- proposing
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        """Primary: broadcast PRE-PREPARE and cast its own PREPARE vote."""
        batch_digest = digest("pbft", self.view, sequence, batch.digest())
        self.charge(CryptoOp.HASH)
        self.charge(CryptoOp.MAC_SIGN, self._fanout)
        slot = self._slot(self.view, sequence)
        slot.batch = batch
        slot.batch_digest = batch_digest
        self._accepted_preprepare[(self.view, sequence)] = batch_digest
        self.broadcast(PbftPrePrepare(
            view=self.view, sequence=sequence, batch=batch,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        ))
        self._cast_prepare(self.view, sequence, slot, now_ms)

    # ---------------------------------------------------------------- messages
    def handle_preprepare(self, sender: str, message: PbftPrePrepare,
                          now_ms: float) -> None:
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if self.view_change_in_progress:
            return
        if message.view != self.view or sender != self.primary_id:
            return
        key = (message.view, message.sequence)
        if key in self._accepted_preprepare:
            return
        self.charge(CryptoOp.MAC_VERIFY)
        self.charge(CryptoOp.HASH)
        batch_digest = digest("pbft", message.view, message.sequence,
                              message.batch.digest())
        self._accepted_preprepare[key] = batch_digest
        slot = self._slot(message.view, message.sequence)
        slot.batch = message.batch
        slot.batch_digest = batch_digest
        if message.batch.reply_to:
            self._reply_targets.setdefault(message.batch.batch_id,
                                           message.batch.reply_to)
        self._cast_prepare(message.view, message.sequence, slot, now_ms)

    def _cast_prepare(self, view: int, sequence: int, slot: _PbftSlot,
                      now_ms: float) -> None:
        self.charge(CryptoOp.MAC_SIGN, self._fanout)
        self.broadcast(PbftPrepare(
            view=view, sequence=sequence, batch_digest=slot.batch_digest,
            replica_id=self.node_id,
        ))
        slot.prepare_votes.add(self.node_id)
        self._check_prepared(view, sequence, slot, now_ms)

    def handle_prepare(self, sender: str, message: PbftPrepare, now_ms: float) -> None:
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view:
            return
        self._pending_cpu_ms += self._mac_verify_ms  # charge(MAC_VERIFY)
        # Inline slot hit path (the vote flood always hits an existing slot).
        slot = self._slots.get((message.view << 32) | message.sequence)
        if slot is None:
            slot = self._slot(message.view, message.sequence)
        if slot.prepared:
            # Late vote after the prepare quorum: nothing reads the prepare
            # set once the slot is prepared — skip the dead bookkeeping on
            # this half of the ~2n²-per-slot vote flood.
            return
        if slot.batch_digest and message.batch_digest != slot.batch_digest:
            return
        # Vote identity is the transport-level sender: the claimed
        # ``message.replica_id`` is spoofable, and counting it would let one
        # Byzantine replica cast a PREPARE vote per forged identity.
        slot.prepare_votes.add(sender)
        if slot.batch is None or slot.prepare_votes.count < self._quorum_size:
            return
        self._check_prepared(message.view, message.sequence, slot, now_ms)

    def _check_prepared(self, view: int, sequence: int, slot: _PbftSlot,
                        now_ms: float) -> None:
        if slot.prepared or slot.batch is None:
            return
        if slot.prepare_votes.count < self._quorum_size:
            return
        slot.prepared = True
        self.charge(CryptoOp.MAC_SIGN, self._fanout)
        self.broadcast(PbftCommit(
            view=view, sequence=sequence, batch_digest=slot.batch_digest,
            replica_id=self.node_id,
        ))
        slot.commit_sent = True
        slot.commit_votes.add(self.node_id)
        self._check_committed(view, sequence, slot, now_ms)

    def handle_commit(self, sender: str, message: PbftCommit, now_ms: float) -> None:
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view:
            return
        self._pending_cpu_ms += self._mac_verify_ms  # charge(MAC_VERIFY)
        # Inline slot hit path (the vote flood always hits an existing slot).
        slot = self._slots.get((message.view << 32) | message.sequence)
        if slot is None:
            slot = self._slot(message.view, message.sequence)
        if slot.committed:
            # Late vote after the commit quorum: the committers snapshot
            # was taken at commit time, so recording the voter is dead work.
            return
        if slot.batch_digest and message.batch_digest != slot.batch_digest:
            return
        # Transport-level sender, not the spoofable message.replica_id.
        # Commit votes accumulate even before the slot prepares locally.
        slot.commit_votes.add(sender)
        if (not slot.prepared or slot.batch is None
                or slot.commit_votes.count < self._quorum_size):
            return
        self._check_committed(message.view, message.sequence, slot, now_ms)

    def _check_committed(self, view: int, sequence: int, slot: _PbftSlot,
                         now_ms: float) -> None:
        if slot.committed or not slot.prepared or slot.batch is None:
            return
        if slot.commit_votes.count < self._quorum_size:
            return
        slot.committed = True
        committers = tuple(sorted(slot.commit_votes))
        self._executed_log[sequence] = PbftExecutedEntry(
            sequence=sequence, view=view, batch_digest=slot.batch_digest,
            batch=slot.batch, committers=committers,
        )
        self.commit_slot(sequence=sequence, view=view, batch=slot.batch,
                         proof=committers, now_ms=now_ms, speculative=False)

    # ----------------------------------------------------------------- epochs
    def on_epoch_activated(self, entry, evicted, now_ms: float) -> None:
        super().on_epoch_activated(entry, evicted, now_ms)
        self._quorum_size = self.config.quorum_of(entry.epoch)
        if not evicted:
            return
        for slot in self._slots.values():
            for replica_id in evicted:
                if not slot.prepared:
                    slot.prepare_votes.discard(replica_id)
                if not slot.committed:
                    slot.commit_votes.discard(replica_id)

    # ------------------------------------------------------------- view change
    # Generic machinery in ViewChangeRecovery; PBFT supplies its payloads.

    def view_change_quorum(self) -> int:
        return self._quorum()

    def build_view_change_request(self, view: int) -> PbftViewChange:
        executed = tuple(
            self._executed_log[seq]
            for seq in sorted(self._executed_log)
            if seq > self.checkpoints.stable_sequence
            and seq <= self.last_executed_sequence
        )
        return PbftViewChange(
            view=view, replica_id=self.node_id,
            stable_checkpoint=self.checkpoints.stable_sequence,
            executed=executed,
            size_bytes=self.config.proposal_size_bytes(
                sum(len(entry.batch) for entry in executed)
            ),
        )

    def make_new_view(self, new_view: int, requests) -> PbftNewView:
        return PbftNewView(new_view=new_view, requests=requests)

    def validate_view_change_request_message(self, request: PbftViewChange,
                                             view: int) -> bool:
        """Structural admission for one VIEW-CHANGE request.

        Honest requests carry a consecutive run of executed entries
        starting right after the sender's stable checkpoint, each with the
        digest the PRE-PREPARE bound to the slot.  Without this check a
        forged request could park arbitrary garbage in the per-view
        request pool; the digest recomputation also forces a forger to at
        least fabricate *self-consistent* entries, which support-ranked
        selection then outvotes.
        """
        if request.view != view:
            return False
        expected_sequence = request.stable_checkpoint + 1
        for entry in request.executed:
            if entry.sequence != expected_sequence:
                return False
            expected_sequence += 1
            if entry.batch is None:
                return False
            if entry.batch_digest != digest("pbft", entry.view, entry.sequence,
                                            entry.batch.digest()):
                return False
        return True

    def adopt_new_view(self, proposal: PbftNewView, requests, now_ms: float) -> int:
        # Support-ranked selection (shared with PoE): below the durable
        # anchor — the highest stable checkpoint any request proves — a
        # slot needs f + 1 matching requests, because honest requests only
        # carry entries above their *own* stable checkpoint and a lone
        # forged request claiming stable_checkpoint = -1 would otherwise
        # be the unique witness for every settled sub-anchor slot
        # (first-writer-wins union, the PR-5 residual).  Sub-anchor slots
        # nobody corroborates are left to checkpoint state transfer.
        prefix, kmax = longest_consecutive_prefix(requests, f=self._f_plus_1 - 1)
        kmax = max(kmax, self.last_executed_sequence)
        for sequence in sorted(prefix):
            if sequence <= self.last_executed_sequence:
                continue
            entry = prefix[sequence]
            self._executed_log[sequence] = entry
            self.commit_slot(sequence=sequence, view=entry.view, batch=entry.batch,
                             proof=entry.committers, now_ms=now_ms)
        return kmax

    # ------------------------------------------------------------- checkpoints
    def on_stable_checkpoint(self, stable: int, now_ms: float) -> None:
        """Prune per-slot consensus state the stable checkpoint supersedes."""
        super().on_stable_checkpoint(stable, now_ms)
        slots = self._slots
        # Packed keys: sequence lives in the low 32 bits (see _slot).
        for key in [k for k in slots if (k & 0xFFFFFFFF) <= stable]:
            del slots[key]
        accepted = self._accepted_preprepare
        for key in [k for k in accepted if k[1] <= stable]:
            del accepted[key]
        executed = self._executed_log
        for sequence in [s for s in executed if s <= stable]:
            del executed[sequence]


class PbftClientPool(ClientPool):
    """PBFT client pool: a request completes after ``f + 1`` matching replies."""

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=config.f + 1,
            target_outstanding=target_outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
            completion_quorum_fn=lambda epoch: config.f_of(epoch) + 1,
        )
