"""Chained HotStuff baseline: rotating leaders, sequential consensus.

HotStuff linearises PBFT by splitting each phase into two through
threshold signatures and rotates the leader every round; chaining folds
the phases of consecutive rounds together so each round needs one
proposal broadcast and one (linear) vote phase.  A block proposed in
round ``i`` is executed once the chain reaches round ``i + 3`` (the
paper: "a replica executes the request for the i-th round once it
receives a threshold signature from the primary of the (i+3)-th round").

The crucial performance property the paper leans on is that rotating
leaders make consensus *sequential*: the leader of round ``i + 1`` cannot
propose before it has the quorum certificate for round ``i``, so requests
cannot be processed out-of-order and throughput is bounded by message
delay rather than bandwidth (Figures 9 and 11).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.hashing import digest
from repro.crypto.threshold import ThresholdError
from repro.protocols.base import Message, NodeConfig, ProtocolInfo
from repro.protocols.client_messages import ClientRequestMessage
from repro.protocols.replica_base import BatchingReplica
from repro.workload.transactions import RequestBatch


@dataclass
class QuorumCertificate:
    """A quorum certificate over one round's block."""

    round_number: int = -1
    block_digest: bytes = b""
    signature: object = None


@dataclass
class HotStuffProposal(Message):
    """The round leader's block proposal, justified by the previous QC."""

    round_number: int = 0
    batch: Optional[RequestBatch] = None
    block_digest: bytes = b""
    justify: Optional[QuorumCertificate] = None
    leader_id: str = ""


@dataclass
class HotStuffVote(Message):
    """A replica's vote (signature share) sent to the next round's leader."""

    round_number: int = 0
    block_digest: bytes = b""
    share: object = None
    replica_id: str = ""


@dataclass
class HotStuffFetchRequest(Message):
    """Chain sync: ask peers for a certified round's missing proposal.

    A replica that learns a round's signed quorum certificate without ever
    receiving the proposal it certifies (an omitting or equivocating
    leader) used to stall until checkpoint state transfer carried it past
    the gap.  The fetch-missing protocol recovers the block itself: any
    peer holding the proposal ships it back, and the requester verifies
    the content against the QC digest it already trusts.

    With an empty ``block_digest`` the request is a *query*: "did round
    ``round_number`` certify anything?"  A replica that settles a round
    blind — it never saw the round's proposal, so it cannot know whether
    a signed QC exists — asks the membership; peers holding the proposal
    *and* its signed certificate ship both, and the threshold signature
    makes the answer third-party verifiable.  Without the query, the one
    proposal carrying a round's QC being lost would strand the round
    forever (signed QCs appear in exactly one justify on the wire).
    """

    round_number: int = 0
    block_digest: bytes = b""
    replica_id: str = ""


@dataclass
class HotStuffFetchResponse(Message):
    """A stored proposal (and its signed QC, for queries) shipped to a
    replica that missed it."""

    proposal: Optional[HotStuffProposal] = None
    certificate: Optional[QuorumCertificate] = None


@dataclass(slots=True)
class _RoundState:
    """Bookkeeping for one round at its (next) leader."""

    block_digest: bytes = b""
    batch: Optional[RequestBatch] = None
    votes: Dict[int, object] = field(default_factory=dict)
    qc_formed: bool = False


class HotStuffReplica(BatchingReplica):
    """A chained-HotStuff replica with round-robin leaders."""

    PROTOCOL_INFO = ProtocolInfo(
        name="HotStuff",
        phases=8,
        messages="O(8n)",
        resilience="f",
        requirements="Sequential Consensuses",
    )

    MESSAGE_HANDLERS = {
        HotStuffProposal: "handle_proposal",
        HotStuffVote: "handle_vote",
        HotStuffFetchRequest: "handle_fetch_request",
        HotStuffFetchResponse: "handle_fetch_response",
    }

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
        pacemaker_timeout_ms: float = 250.0,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model, initial_table)
        self.pacemaker_timeout_ms = pacemaker_timeout_ms
        self.current_round = 0
        self.high_qc = QuorumCertificate(round_number=-1,
                                         block_digest=digest("hotstuff-genesis"))
        self._rounds: Dict[int, _RoundState] = {}
        self._proposals: Dict[int, HotStuffProposal] = {}
        self._voted_rounds: Set[int] = set()
        self._pending_batches: Deque[RequestBatch] = deque()
        self._queued_batch_ids: Set[str] = set()
        self._next_execute_sequence = 0
        #: Rounds certified by a *signed* quorum certificate, mapped to the
        #: certified block digest.  Only these rounds may execute; pacemaker
        #: timeout QCs are unsigned and certify nothing.
        self._qc_digests: Dict[int, bytes] = {}
        #: Highest round already settled (executed or skipped) by
        #: :meth:`_commit_upto`; rounds are settled strictly in order.
        self._committed_round = -1
        #: Signed quorum certificates by round, kept so fetch *queries*
        #: ("did this round certify anything?") can be answered with
        #: third-party-verifiable evidence.  Pruned with the rest of the
        #: per-round bookkeeping.
        self._qc_certificates: Dict[int, QuorumCertificate] = {}
        #: Round -> digest it was already asked for (``b""`` = blind
        #: query); one fetch broadcast per gap, upgradeable from a blind
        #: query to a targeted fetch once the QC digest is known.  State
        #: transfer remains the fallback when no peer still holds the
        #: block.
        self._fetch_requested: Dict[int, bytes] = {}
        #: Round below which per-round bookkeeping was pruned (everything
        #: below the stable checkpoint's round is durable and settled).
        self._pruned_below_round = -1
        #: Audit trail mirroring the view-change protocols' rollback log:
        #: one (target_sequence, stable_checkpoint) pair per chain resync.
        self.rollback_log: List[Tuple[int, int]] = []
        self.rounds_started = 0
        self.pacemaker_timeouts = 0
        self.proposals_fetched = 0
        self.chain_resyncs = 0

    # ------------------------------------------------------------------ leaders
    def leader_of(self, round_number: int) -> str:
        config = self.config
        if not config.reconfigured:
            return config.replica_ids[round_number % config.n]
        members = config.membership(self.epoch)
        return members[round_number % len(members)]

    def is_leader_of(self, round_number: int) -> bool:
        return self.leader_of(round_number) == self.node_id

    def _round(self, round_number: int) -> _RoundState:
        # get-then-insert: setdefault would construct a throwaway
        # _RoundState on every vote/proposal for an existing round.
        state = self._rounds.get(round_number)
        if state is None:
            state = self._rounds[round_number] = _RoundState()
        return state

    # -------------------------------------------------------------- client path
    def handle_client_request(self, sender: str, message: ClientRequestMessage,
                              now_ms: float) -> None:
        """Every replica queues requests; the round leader proposes them."""
        batch = message.batch
        reply_to = message.reply_to or sender
        self._reply_targets[batch.batch_id] = reply_to
        self.charge(CryptoOp.VERIFY)
        earlier_reply = self._replied.get(batch.batch_id)
        if earlier_reply is not None:
            self.send(reply_to, earlier_reply)
            return
        if batch.batch_id not in self._queued_batch_ids:
            self._queued_batch_ids.add(batch.batch_id)
            self._pending_batches.append(batch)
        elif (message.retransmission
              and batch.batch_id not in self._replied
              and all(b.batch_id != batch.batch_id for b in self._pending_batches)):
            # The batch was consumed by a round that never got certified
            # (failed leader, equivocating proposer): a client retransmission
            # makes it proposable again.  A later double-proposal is benign —
            # execution dedupes on ``_replied``.
            self._pending_batches.append(batch)
        # If the chain is paused and it is our turn, kick it off.
        if self.is_leader_of(self.current_round):
            self._maybe_lead_round(self.current_round, now_ms)
        self._arm_pacemaker(now_ms)

    # BatchingReplica's primary-driven proposal path is unused: leaders
    # propose from their pending queue when their round comes up.
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        raise NotImplementedError("HotStuff leaders propose per round, not per batch")

    def maybe_propose(self, now_ms: float) -> None:  # overrides the base hook
        """No-op: proposing is driven by quorum certificates, not a queue."""

    # ---------------------------------------------------------------- proposing
    def _maybe_lead_round(self, round_number: int, now_ms: float) -> None:
        """Propose the block for *round_number* if this replica leads it."""
        if not self.is_leader_of(round_number):
            return
        if round_number in self._proposals:
            return
        if round_number != self.high_qc.round_number + 1:
            return
        batch = self._next_batch_to_propose()
        if batch is None and not self._unexecuted_rounds_pending():
            return  # Nothing to order and nothing in the pipeline to flush.
        block_digest = digest("hotstuff-block", round_number,
                              batch.digest() if batch is not None else b"empty",
                              self.high_qc.block_digest)
        self.charge(CryptoOp.HASH)
        proposal = HotStuffProposal(
            round_number=round_number, batch=batch, block_digest=block_digest,
            justify=self.high_qc, leader_id=self.node_id,
            size_bytes=self.config.proposal_size_bytes(len(batch) if batch else 0),
        )
        self.rounds_started += 1
        self.broadcast(proposal, include_self=True)

    def _next_batch_to_propose(self) -> Optional[RequestBatch]:
        while self._pending_batches:
            batch = self._pending_batches.popleft()
            if batch.batch_id in self._replied:
                continue
            return batch
        return None

    def _unexecuted_rounds_pending(self) -> bool:
        """Are there proposed-but-unexecuted real blocks that need flushing?"""
        return any(
            proposal.batch is not None
            and proposal.batch.batch_id not in self._replied
            for proposal in self._proposals.values()
        )

    # ---------------------------------------------------------------- messages
    def handle_proposal(self, sender: str, message: HotStuffProposal,
                        now_ms: float) -> None:
        round_number = message.round_number
        # Leadership is checked against the transport-level sender: the
        # ``leader_id`` field is a spoofable payload claim.
        if sender != self.leader_of(round_number):
            return
        if round_number in self._proposals:
            return
        justify = message.justify
        if justify is None or round_number != justify.round_number + 1:
            return
        if justify.round_number >= 0:
            self.charge(CryptoOp.THRESHOLD_VERIFY)
            if justify.signature is not None:
                if not self.auth.threshold_verify(justify.signature,
                                                  justify.block_digest):
                    return
                # A verified signed QC certifies its round's block: record it
                # so the commit rule can tell certified rounds from rounds
                # the pacemaker skipped with an unsigned timeout QC.
                self._qc_digests[justify.round_number] = justify.block_digest
                self._qc_certificates[justify.round_number] = justify
                self._check_late_certificate(justify.round_number,
                                             justify.block_digest, now_ms)
        self._proposals[round_number] = message
        if message.batch is not None:
            self._queued_batch_ids.add(message.batch.batch_id)
            if message.batch.reply_to:
                self._reply_targets.setdefault(message.batch.batch_id,
                                               message.batch.reply_to)
            # Another leader already proposed this batch: drop our local copy.
            self._pending_batches = deque(
                b for b in self._pending_batches
                if b.batch_id != message.batch.batch_id
            )
        if justify.round_number > self.high_qc.round_number or (
                justify.round_number == self.high_qc.round_number
                and self.high_qc.signature is None
                and justify.signature is not None):
            # Same-round upgrade: a signed QC supersedes the unsigned
            # timeout QC the local pacemaker fabricated for that round.
            self.high_qc = justify
        self.current_round = max(self.current_round, round_number)
        # Vote: send a share over the block digest to the next round's leader.
        if round_number not in self._voted_rounds:
            self._voted_rounds.add(round_number)
            self.charge(CryptoOp.THRESHOLD_SHARE)
            share = self.auth.threshold_share(message.block_digest)
            vote = HotStuffVote(
                round_number=round_number, block_digest=message.block_digest,
                share=share, replica_id=self.node_id,
            )
            next_leader = self.leader_of(round_number + 1)
            if next_leader == self.node_id:
                self.handle_vote(self.node_id, vote, now_ms)
            else:
                self.send(next_leader, vote)
        # Chained commit rule: the block three rounds back is now final.
        self._commit_upto(round_number - 3, now_ms)
        self._arm_pacemaker(now_ms)

    def handle_vote(self, sender: str, message: HotStuffVote, now_ms: float) -> None:
        round_number = message.round_number
        if not self.is_leader_of(round_number + 1):
            return
        state = self._round(round_number)
        if state.qc_formed or message.share is None:
            return
        # Share verification is deferred to aggregation (see PoeReplica).
        if not self.auth.threshold_verify_share(message.share, message.block_digest):
            return
        state.block_digest = message.block_digest
        state.votes[message.share.index] = message.share
        if len(state.votes) < self._nf_quorum:
            return
        self.charge(CryptoOp.THRESHOLD_AGGREGATE)
        try:
            signature = self.auth.threshold_aggregate(state.votes.values())
        except ThresholdError:
            return
        state.qc_formed = True
        self.charge(CryptoOp.THRESHOLD_VERIFY)
        if not self.auth.threshold_verify(signature, message.block_digest):
            # The shares did not all sign the same block (an equivocating
            # leader split the voters): no QC exists for this round.  Leave
            # it to the pacemaker; proposing with a garbage QC would only be
            # rejected by every correct replica.
            return
        qc = QuorumCertificate(round_number=round_number,
                               block_digest=message.block_digest,
                               signature=signature)
        self._qc_digests[round_number] = message.block_digest
        self._qc_certificates[round_number] = qc
        if qc.round_number > self.high_qc.round_number or (
                qc.round_number == self.high_qc.round_number
                and self.high_qc.signature is None):
            # The pacemaker beat the aggregation to this round: replace
            # its unsigned placeholder so the next proposal this replica
            # leads chains to the certified block, not a fictitious one.
            self.high_qc = qc
        self.current_round = max(self.current_round, round_number + 1)
        self._maybe_lead_round(round_number + 1, now_ms)

    # ---------------------------------------------------------------- execution
    def _commit_upto(self, round_number: int, now_ms: float) -> None:
        """Settle rounds in order up to *round_number*, executing the
        certified ones.

        A round executes only when a *signed* quorum certificate for its
        exact block is known (``_qc_digests``) and the block's content is
        held locally.  Rounds without a signed QC by the time the chain is
        three rounds past them were skipped by the pacemaker (or poisoned by
        an equivocating leader) and settle without executing — their batches
        return via client retransmission.  A round whose QC is known but
        whose content this replica missed is a hard gap: the fetch-missing
        protocol asks the peers for the certified block (verified against
        the QC digest on arrival), with checkpoint-driven state transfer
        remaining the fallback when no peer still holds it.

        Settling a round as skipped is provisional, not final: if the one
        proposal carrying the round's QC arrives late (after the round was
        settled as skipped), :meth:`_check_late_certificate` rolls the
        chain back to just before that round, fetches the missing block and
        re-executes — unless the rollback would cross a stable checkpoint,
        in which case the divergence surfaces in the replica's checkpoint
        digests and the same-height state repair takes over.  A round
        settled *blind* (no proposal ever seen) also broadcasts a fetch
        query, because the replica cannot know whether a signed QC exists:
        peers answer with the proposal and the signed QC itself, and the
        verified answer funnels into the same late-certificate resync.
        """
        settle = self._committed_round + 1
        while settle <= round_number:
            certified_digest = self._qc_digests.get(settle)
            if certified_digest is None:
                # Settling without a signed QC is sound only if no signed
                # QC exists for the round *anywhere* — and this replica
                # cannot know that.  Holding the proposal does not help:
                # the QC is normally relayed in exactly one justify on the
                # wire, and if the next leader's pacemaker fired before
                # its vote aggregation completed, that justify carries an
                # unsigned timeout QC while the signed QC it aggregated
                # moments later exists only in its local state.  Query the
                # membership either way; a verified answer triggers the
                # late-certificate resync.
                self._request_missing_proposal(settle, b"")
                self._committed_round = settle
                settle += 1
                continue
            proposal = self._proposals.get(settle)
            if proposal is None or proposal.block_digest != certified_digest:
                # Certified content this replica never received: fetch it
                # from the peers and stall the settle walk until it lands.
                self._request_missing_proposal(settle, certified_digest)
                break
            self._committed_round = settle
            settle += 1
            if proposal.batch is None or proposal.batch.batch_id in self._replied:
                continue
            sequence = self._next_execute_sequence
            self._next_execute_sequence += 1
            self.commit_slot(sequence=sequence, view=proposal.round_number,
                             batch=proposal.batch, proof=proposal.justify,
                             now_ms=now_ms, speculative=False)

    # ------------------------------------------------------------- chain sync
    def _request_missing_proposal(self, round_number: int,
                                  block_digest: bytes) -> None:
        """Broadcast one fetch for a missing round (``b""`` = blind query).

        One broadcast per round, except that a blind query upgrades to a
        targeted fetch once the certified digest becomes known.
        """
        asked = self._fetch_requested.get(round_number)
        if asked is not None and (asked == block_digest or asked != b""):
            return
        self._fetch_requested[round_number] = block_digest
        self.broadcast(HotStuffFetchRequest(
            round_number=round_number, block_digest=block_digest,
            replica_id=self.node_id,
        ))

    def handle_fetch_request(self, sender: str, message: HotStuffFetchRequest,
                             now_ms: float) -> None:
        """Serve a stored proposal (with its signed QC, for queries)."""
        proposal = self._proposals.get(message.round_number)
        if proposal is None:
            return
        if not message.block_digest:
            # Query: only answer with third-party-verifiable evidence that
            # the round certified this exact block.
            certificate = self._qc_certificates.get(message.round_number)
            if certificate is None or certificate.signature is None \
                    or proposal.block_digest != certificate.block_digest:
                return
            self.send(sender, HotStuffFetchResponse(
                proposal=proposal, certificate=certificate,
                size_bytes=proposal.size_bytes))
            return
        if proposal.block_digest != message.block_digest:
            return
        self.send(sender, HotStuffFetchResponse(
            proposal=proposal, size_bytes=proposal.size_bytes))

    def handle_fetch_response(self, sender: str, message: HotStuffFetchResponse,
                              now_ms: float) -> None:
        """Adopt a fetched proposal after verifying it against the QC.

        The signed quorum certificate this replica already holds pins the
        certified block digest; the response's content is re-hashed
        (batch digest chained to the justify parent) and must reproduce
        exactly that digest, so a forged or tampered block cannot be
        slipped into the gap — not even by the peer that served it.
        """
        proposal = message.proposal
        if proposal is None:
            return
        round_number = proposal.round_number
        certified_digest = self._qc_digests.get(round_number)
        if certified_digest is None and message.certificate is not None:
            # A query answer: the carried signed QC is the evidence this
            # replica lacked.  Verify the threshold signature before
            # trusting the digest it certifies.
            certificate = message.certificate
            if certificate.round_number != round_number:
                return
            if certificate.signature is None:
                return
            self.charge(CryptoOp.THRESHOLD_VERIFY)
            if not self.auth.threshold_verify(certificate.signature,
                                              certificate.block_digest):
                return
            self._qc_digests[round_number] = certificate.block_digest
            self._qc_certificates[round_number] = certificate
            certified_digest = certificate.block_digest
            self._check_late_certificate(round_number, certified_digest, now_ms)
        if certified_digest is None or proposal.block_digest != certified_digest:
            return
        justify = proposal.justify
        if justify is None:
            return
        content_digest = digest(
            "hotstuff-block", round_number,
            proposal.batch.digest() if proposal.batch is not None else b"empty",
            justify.block_digest)
        self.charge(CryptoOp.HASH)
        if content_digest != certified_digest:
            return
        existing = self._proposals.get(round_number)
        if existing is not None and existing.block_digest == certified_digest:
            return
        # The fetched justify may certify a round this replica never saw a
        # signed QC for (consecutive missed rounds): process it like a
        # live proposal's justify so the settle walk can recover it too.
        # Already-known digests skip the (modelled-expensive) re-verify.
        if justify.round_number >= 0 and justify.signature is not None \
                and self._qc_digests.get(justify.round_number) \
                != justify.block_digest:
            self.charge(CryptoOp.THRESHOLD_VERIFY)
            if self.auth.threshold_verify(justify.signature,
                                          justify.block_digest):
                self._qc_digests[justify.round_number] = justify.block_digest
                self._qc_certificates[justify.round_number] = justify
                self._check_late_certificate(justify.round_number,
                                             justify.block_digest, now_ms)
        self._proposals[round_number] = proposal
        self.proposals_fetched += 1
        batch = proposal.batch
        if batch is not None:
            self._queued_batch_ids.add(batch.batch_id)
            if batch.reply_to:
                self._reply_targets.setdefault(batch.batch_id, batch.reply_to)
            self._pending_batches = deque(
                b for b in self._pending_batches
                if b.batch_id != batch.batch_id
            )
        self._commit_upto(self.current_round - 3, now_ms)
        self._arm_pacemaker(now_ms)

    def _check_late_certificate(self, round_number: int, block_digest: bytes,
                                now_ms: float) -> None:
        """A signed QC arrived for a round already settled as skipped.

        The certified block is part of the canonical chain, so settling
        past it without executing forked this replica off the agreed
        history (the settled-as-skipped window).  Roll the local chain
        back to just before the round, re-open the settle walk and fetch
        the missing block; if the rollback would cross a stable checkpoint
        the fork is already durable locally and is left to the same-height
        state repair instead.
        """
        if round_number > self._committed_round:
            return
        if round_number < self._pruned_below_round:
            return
        proposal = self._proposals.get(round_number)
        if proposal is not None and proposal.block_digest == block_digest \
                and (proposal.batch is None
                     or proposal.batch.batch_id in self._replied):
            return  # the round did execute; nothing was missed
        # The rollback floor is the stable checkpoint *and* any installed
        # checkpoint-sync block: a transferred snapshot has no undo
        # information and the slots beneath it are not locally
        # re-executable, so truncating across it would strand the store on
        # an unreachable base.  Divergence below either floor belongs to
        # the same-height state repair.
        floor = self.checkpoints.stable_sequence
        target_sequence = -1
        for block in reversed(self.blockchain.blocks()):
            if block.payload == "checkpoint-sync" and block.sequence > floor:
                floor = block.sequence
            if block.view < round_number:
                target_sequence = block.sequence
                break
        if target_sequence < floor:
            return
        self.rollback_log.append((target_sequence,
                                  self.checkpoints.stable_sequence))
        reverted = self.executor.rollback_to(target_sequence)
        for record in reverted:
            self._replied.pop(record.batch.batch_id, None)
        self.chain_resyncs += 1
        self._committed_round = round_number - 1
        self._next_execute_sequence = target_sequence + 1
        self._commit_upto(self.current_round - 3, now_ms)

    # ----------------------------------------------------------------- epochs
    def on_epoch_activated(self, entry, evicted, now_ms: float) -> None:
        super().on_epoch_activated(entry, evicted, now_ms)
        if not evicted:
            return
        # Purge evicted replicas' vote shares from rounds whose QC has not
        # formed yet (share index = membership position + 1; no threshold
        # re-keying, so the share itself would still aggregate).
        config = self.config
        dead = {config.replica_index(rid) + 1 for rid in evicted
                if rid in config.replica_index_map}
        for state in self._rounds.values():
            if state.qc_formed:
                continue
            for index in dead:
                state.votes.pop(index, None)

    # ------------------------------------------------------------- checkpoints
    def on_stable_checkpoint(self, sequence: int, now_ms: float) -> None:
        """Prune per-round bookkeeping below the stable checkpoint's round.

        ``_proposals``, ``_rounds``, ``_voted_rounds``, ``_qc_digests`` and
        the fetch dedup set used to grow for the lifetime of the run; every
        round that produced a block at or below a stable checkpoint is
        durable system-wide and can never be rolled back, re-voted or
        fetched from this replica again, so the journals are bounded by the
        checkpoint interval instead.
        """
        super().on_stable_checkpoint(sequence, now_ms)
        block = self.blockchain.block_at(sequence)
        if block is None:
            return
        stable_round = block.view
        if stable_round <= self._pruned_below_round:
            return
        self._pruned_below_round = stable_round
        for round_number in [r for r in self._proposals if r < stable_round]:
            del self._proposals[round_number]
        for round_number in [r for r in self._rounds if r < stable_round]:
            del self._rounds[round_number]
        for round_number in [r for r in self._qc_digests if r < stable_round]:
            del self._qc_digests[round_number]
        for round_number in [r for r in self._qc_certificates
                             if r < stable_round]:
            del self._qc_certificates[round_number]
        self._voted_rounds = {r for r in self._voted_rounds
                              if r >= stable_round}
        self._fetch_requested = {r: d for r, d in self._fetch_requested.items()
                                 if r >= stable_round}

    # ------------------------------------------------------------ state transfer
    def transfer_view(self, sequence: int) -> int:
        # Ship the committed round of the block at the transferred sequence,
        # so the receiver can re-base its round watermark (the base class
        # ships ``self.view``, which HotStuff does not maintain).
        block = self.blockchain.block_at(sequence)
        return block.view if block is not None else self.view

    def handle_state_transfer_response(self, sender: str, message,
                                       now_ms: float) -> None:
        before = self.last_executed_sequence
        super().handle_state_transfer_response(sender, message, now_ms)
        if self.last_executed_sequence > before:
            # Re-base the local execution counter and the round watermark on
            # the transferred prefix; rounds at or below it are settled.
            self._next_execute_sequence = self.last_executed_sequence + 1
            self._committed_round = max(self._committed_round, message.view)
            self._commit_upto(self.current_round - 3, now_ms)

    # ---------------------------------------------------------------- pacemaker
    def _arm_pacemaker(self, now_ms: float) -> None:
        """(Re-)arm the round timer while there is work the chain should make."""
        if self._pending_batches or self._unexecuted_rounds_pending():
            self.set_timer("pacemaker", self.pacemaker_timeout_ms,
                           payload=self.current_round)

    def on_protocol_timer(self, name: str, payload, now_ms: float) -> None:
        if name != "pacemaker":
            return
        if not self._pending_batches and not self._unexecuted_rounds_pending():
            return
        # The expected leader did not produce a proposal: skip its round.
        stalled_round = self.high_qc.round_number + 1
        self.pacemaker_timeouts += 1
        self.current_round = max(self.current_round, stalled_round + 1)
        # Pretend the stalled round produced an empty block so the chain can
        # continue: advance the high QC without a block.  The next leader
        # proposes justified by the previous QC.
        self.high_qc = QuorumCertificate(
            round_number=stalled_round,
            block_digest=digest("hotstuff-timeout", stalled_round,
                                self.high_qc.block_digest),
            signature=None,
        )
        self._maybe_lead_round(stalled_round + 1, now_ms)
        self._arm_pacemaker(now_ms)
