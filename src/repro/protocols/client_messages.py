"""Client-facing message envelopes shared by every protocol.

All five protocols interact with clients the same way at the envelope
level: a client (or client pool) submits a :class:`ClientRequestMessage`
carrying a batch of transactions, and replicas eventually answer with
:class:`ClientReplyMessage` (the paper's INFORM / REPLY / SPEC-RESPONSE
messages).  Protocol-specific data (speculative histories, aggregate
proofs) rides in the ``extra`` field, so the generic client pool can count
matching replies while protocol-specific clients can inspect the details.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import Message
from repro.workload.transactions import RequestBatch


@dataclass(slots=True)
class ClientRequestMessage(Message):
    """A client submitting a batch of transactions for ordering.

    Attributes:
        batch: the transactions to order and execute.
        reply_to: identifier the replicas should answer to.
        retransmission: ``True`` when the client re-sends after a timeout
            (replicas then forward the request to the primary and start a
            view-change timer, per Section II-B of the paper).
    """

    batch: RequestBatch = None
    reply_to: str = ""
    retransmission: bool = False


@dataclass(slots=True)
class ClientReplyMessage(Message):
    """A replica informing a client of an execution result.

    Attributes:
        batch_id: identifier of the client batch this reply answers.
        view: view in which the batch was executed.
        sequence: consensus sequence number assigned to the batch.
        result_digest: digest of the execution results; clients compare
            digests from distinct replicas to establish matching replies.
        replica_id: the responding replica.
        speculative: ``True`` for replies sent before the batch is durable
            system-wide (PoE INFORM, Zyzzyva SPEC-RESPONSE).
        extra: protocol-specific payload (e.g. Zyzzyva history digest,
            SBFT execution proof).
    """

    batch_id: str = ""
    view: int = 0
    sequence: int = 0
    result_digest: bytes = b""
    replica_id: str = ""
    speculative: bool = False
    extra: Any = None

    def matching_key(self) -> tuple:
        """Key under which replies are considered 'identical' by clients."""
        return (self.batch_id, self.view, self.sequence, self.result_digest)
