"""Protocol framework and the four baseline BFT protocols.

PoE itself (the paper's contribution) lives in :mod:`repro.core`; this
package contains the sans-IO framework shared by every protocol and the
baselines the paper evaluates against: PBFT, Zyzzyva, SBFT and HotStuff.
"""

from repro.protocols.base import (
    Action,
    Broadcast,
    CancelTimer,
    ClientNode,
    Message,
    NodeConfig,
    ProtocolInfo,
    ProtocolNode,
    Send,
    SetTimer,
    StepOutput,
)
from repro.protocols.batching import Batcher
from repro.protocols.checkpoint import CheckpointMessage, CheckpointTracker
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.protocols.replica_base import BatchingReplica, CommittedSlot
from repro.protocols.pbft import PbftClientPool, PbftReplica
from repro.protocols.zyzzyva import ZyzzyvaClientPool, ZyzzyvaReplica
from repro.protocols.sbft import SbftClientPool, SbftReplica
from repro.protocols.hotstuff import HotStuffReplica

__all__ = [
    "Action",
    "Broadcast",
    "CancelTimer",
    "ClientNode",
    "Message",
    "NodeConfig",
    "ProtocolInfo",
    "ProtocolNode",
    "Send",
    "SetTimer",
    "StepOutput",
    "Batcher",
    "CheckpointMessage",
    "CheckpointTracker",
    "ClientReplyMessage",
    "ClientRequestMessage",
    "BatchingReplica",
    "CommittedSlot",
    "PbftClientPool",
    "PbftReplica",
    "ZyzzyvaClientPool",
    "ZyzzyvaReplica",
    "SbftClientPool",
    "SbftReplica",
    "HotStuffReplica",
]
