"""Zyzzyva baseline: single-phase speculative BFT with client-driven commit.

Zyzzyva's fast path has the absolute minimal cost: the primary orders a
request, every replica executes it immediately and answers the client,
and the *client* completes only when it has matching speculative replies
from **all** ``n`` replicas (Section IV-A of the paper).  If even one
replica fails or is slow, the client times out; with at least ``2f + 1``
matching replies it distributes a commit certificate and waits for
``2f + 1`` acknowledgements (the second phase); with fewer it must
retransmit.  This reliance on clients and on all replicas answering is
exactly what collapses Zyzzyva's throughput under a single backup
failure (Figures 9(a), 9(e), 9(i)).

Recovery from a faulty primary is *client-triggered*: a client that
collects conflicting speculative responses for the same (view, sequence)
slot holds evidence that the primary equivocated its ORDER-REQs and
broadcasts a proof of misbehaviour; replicas receiving it — or timing
out on a forwarded request — start the shared view-change engine
(:class:`~repro.protocols.recovery.ViewChangeRecovery`).  Because
execution is purely speculative, view-change requests carry unverifiable
speculative histories plus the highest *commit certificate* the replica
acknowledged; the new view reconciles them from the highest commit
certificate upward (``reconcile_speculative_histories``), rolling
divergent speculation back to the last agreement point.  This is the
recovery path whose absence made the fault matrix mark Zyzzyva
expected-unsafe under equivocation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.core.view_change import (
    reconcile_speculative_histories,
    speculative_anchor,
)
from repro.ledger.execution import modelled_result_digest
from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.hashing import digest
from repro.protocols.base import Message, NodeConfig, ProtocolInfo
from repro.protocols.checkpoint import StateTransferRequest
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.recovery import ViewChangeRecovery
from repro.protocols.replica_base import BatchingReplica, CommittedSlot
from repro.workload.clients import BatchSource, ClientPool, _PendingBatch
from repro.workload.transactions import RequestBatch


@dataclass
class ZyzzyvaOrderRequest(Message):
    """ORDER-REQ(v, k, batch, h_k): the primary's speculative ordering."""

    view: int = 0
    sequence: int = 0
    batch: RequestBatch = None
    history_digest: bytes = b""


@dataclass
class ZyzzyvaCommitCertificate(Message):
    """COMMIT(c, CC): a client forwarding its 2f+1 matching-reply certificate."""

    batch_id: str = ""
    view: int = 0
    sequence: int = 0
    result_digest: bytes = b""
    responders: Tuple[str, ...] = ()
    client_id: str = ""


@dataclass
class ZyzzyvaLocalCommit(Message):
    """LOCAL-COMMIT(v, d): a replica acknowledging a commit certificate."""

    batch_id: str = ""
    view: int = 0
    sequence: int = 0
    replica_id: str = ""


@dataclass
class ZyzzyvaProofOfMisbehaviour(Message):
    """POM(v, <OR, OR'>): client evidence that the primary equivocated.

    In Zyzzyva the proof carries two ORDER-REQs signed by the primary for
    the same sequence number with different histories.  This MAC-mode
    reproduction cannot re-verify the primary's per-link authenticators,
    so the evidence is the pair of conflicting speculative responses the
    client observed, as ``(view, sequence, batch_id, result_digest)``
    tuples.  A replica accepting a forged proof can at worst start a view
    change — a liveness nuisance, never a safety violation — mirroring
    how MAC-mode PoE skips certificate verification and leans on quorum
    intersection instead.
    """

    view: int = 0
    evidence: Tuple[Tuple[int, int, str, bytes], ...] = ()
    client_id: str = ""


@dataclass(frozen=True)
class ZyzzyvaHistoryEntry:
    """One speculatively executed slot carried in a view-change request.

    ``commit_certificate`` is the per-slot client commit certificate this
    replica acknowledged for the slot, when it holds one: certified
    entries beat support plurality in history reconciliation, which is
    what stops a Byzantine replica's forged history from biasing the
    sub-anchor choice.
    """

    sequence: int
    view: int
    batch: RequestBatch
    history_digest: bytes
    commit_certificate: Optional[ZyzzyvaCommitCertificate] = None


@dataclass
class ZyzzyvaViewChange(Message):
    """VIEW-CHANGE(v, CC, O): a replica's speculative history and best certificate.

    ``checkpoint_digest`` is the quorum-vouched state digest at the
    reported stable checkpoint: with ``f + 1`` requests agreeing on it,
    the new view can detect (and repair) a replica whose same-height state
    contradicts the durable prefix — not just replicas that are behind.
    """

    view: int = 0
    replica_id: str = ""
    stable_checkpoint: int = -1
    checkpoint_digest: bytes = b""
    commit_certificate: Optional[ZyzzyvaCommitCertificate] = None
    executed: Tuple[ZyzzyvaHistoryEntry, ...] = ()


@dataclass
class ZyzzyvaNewView(Message):
    """NEW-VIEW(v+1, V): the next primary's view-change summary."""

    new_view: int = 0
    requests: Tuple[ZyzzyvaViewChange, ...] = ()


class ZyzzyvaReplica(ViewChangeRecovery, BatchingReplica):
    """A Zyzzyva replica: execute speculatively straight from the ordering."""

    # Figure 1 reproduces the paper's table, which characterises *published*
    # Zyzzyva ("reliable clients and unsafe"); this implementation adds the
    # recovery path the paper's comparison says it lacks.
    PROTOCOL_INFO = ProtocolInfo(
        name="Zyzzyva",
        phases=1,
        messages="O(n)",
        resilience="0",
        requirements="reliable clients and unsafe",
    )

    MESSAGE_HANDLERS = {
        ZyzzyvaOrderRequest: "handle_order_request",
        ZyzzyvaCommitCertificate: "handle_commit_certificate",
        ZyzzyvaProofOfMisbehaviour: "handle_proof_of_misbehaviour",
        ZyzzyvaViewChange: "handle_view_change_message",
        ZyzzyvaNewView: "handle_new_view_message",
    }

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model, initial_table)
        self._history_digest = digest("zyzzyva-history", "genesis")
        self._accepted: Dict[Tuple[int, int], bytes] = {}
        #: Speculative history journal: the payload of view-change requests.
        self._spec_history: Dict[int, ZyzzyvaHistoryEntry] = {}
        #: Validated client commit certificates, by sequence; the highest one
        #: anchors history reconciliation in a view change.
        self._commit_certs: Dict[int, ZyzzyvaCommitCertificate] = {}
        self.local_commits_sent = 0
        self.proofs_of_misbehaviour_accepted = 0
        self.init_view_change()

    # ---------------------------------------------------------------- proposing
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        """Primary: extend the speculative history and broadcast the ordering."""
        self._history_digest = digest("zyzzyva-history", self._history_digest,
                                      sequence, batch.digest())
        self.charge(CryptoOp.HASH)
        self.charge(CryptoOp.MAC_SIGN, self._fanout)
        message = ZyzzyvaOrderRequest(
            view=self.view, sequence=sequence, batch=batch,
            history_digest=self._history_digest,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        )
        self._accepted[(self.view, sequence)] = self._history_digest
        self.broadcast(message)
        # The primary executes speculatively as well.
        self.commit_slot(sequence=sequence, view=self.view, batch=batch,
                         proof=self._history_digest, now_ms=now_ms, speculative=True)

    # ---------------------------------------------------------------- messages
    def handle_order_request(self, sender: str, message: ZyzzyvaOrderRequest,
                             now_ms: float) -> None:
        if message.view > self.view:
            # The new primary's first orderings can overtake the NEW-VIEW
            # message on the wire; buffer them until this replica catches up.
            self.defer_message(message.view, sender, message)
            return
        if self.view_change_in_progress:
            return
        if message.view != self.view or sender != self.primary_id:
            return
        key = (message.view, message.sequence)
        if key in self._accepted:
            return
        self.charge(CryptoOp.MAC_VERIFY)
        self.charge(CryptoOp.HASH)
        self._accepted[key] = message.history_digest
        if message.batch.reply_to:
            self._reply_targets.setdefault(message.batch.batch_id,
                                           message.batch.reply_to)
        self.commit_slot(sequence=message.sequence, view=message.view,
                         batch=message.batch, proof=message.history_digest,
                         now_ms=now_ms, speculative=True)

    def handle_commit_certificate(self, sender: str,
                                  message: ZyzzyvaCommitCertificate,
                                  now_ms: float) -> None:
        """Second phase: acknowledge a client's 2f+1 commit certificate.

        The certificate is client input and is validated before it earns a
        LOCAL-COMMIT: it must name ``2f + 1`` distinct *real* replicas as
        responders and match the result this replica's own speculative
        history produced at that slot — a forged certificate (fake
        responder ids, or a digest the replica never computed) is dropped.
        A certificate from an *older* view stays acceptable as long as the
        certified slot survived into the current history (the execution
        match enforces that): a view change between the client collecting
        its ``2f + 1`` responses and distributing the certificate must not
        strand the batch — the client cannot re-issue the certificate
        under the new view, so rejecting it outright would loop the
        request forever.  Future views are still rejected.
        """
        self.charge(CryptoOp.MAC_VERIFY, max(1, len(message.responders)))
        if message.view > self.view or self.view_change_in_progress:
            return
        members, quorum = self._certificate_rules(message.sequence)
        responders = set(message.responders)
        if not responders.issubset(members):
            return
        if len(responders) < quorum:
            return
        executed = self.executor.executed(message.sequence)
        if executed is not None:
            if executed.batch.batch_id != message.batch_id:
                return
            if executed.result_digest != message.result_digest:
                return
            # Only a certificate checked against this replica's own
            # execution result is journaled as view-change anchor
            # evidence; the installed-prefix path below acknowledges
            # without journaling.
            self._commit_certs[message.sequence] = message
        else:
            # No per-slot execution record: either the slot was jumped
            # over by a (digest-validated) checkpoint state transfer, or
            # its record was pruned below a stable checkpoint.  In both
            # cases the slot is part of a durable, quorum-vouched prefix,
            # so if the transferred execution map confirms the certified
            # (batch, slot) binding, durability is exactly what a
            # LOCAL-COMMIT attests — and withholding the ack would strand
            # the client's batch behind a slot no live replica can ever
            # re-check (the responders that could have are crashed or
            # rolled back).
            if message.sequence > self.last_executed_sequence:
                return
            known = self._batch_sequence.get(message.batch_id)
            if known is None or known[0] != message.sequence:
                return
        self.charge(CryptoOp.MAC_SIGN)
        self.local_commits_sent += 1
        self.send(message.client_id or sender, ZyzzyvaLocalCommit(
            batch_id=message.batch_id, view=message.view,
            sequence=message.sequence, replica_id=self.node_id,
        ))

    def handle_proof_of_misbehaviour(self, sender: str,
                                     message: ZyzzyvaProofOfMisbehaviour,
                                     now_ms: float) -> None:
        """A client proved the primary equivocated: replace it.

        The evidence must contain two responses for the same
        (view, sequence) slot of the *current* view that disagree on the
        ordered batch or its result — exactly what an honest primary can
        never produce.
        """
        self.charge(CryptoOp.VERIFY)
        if message.view != self.view or len(message.evidence) < 2:
            return
        first, second = message.evidence[0], message.evidence[1]
        if first[0] != self.view or second[0] != self.view:
            return
        if first[:2] != second[:2] or first[2:] == second[2:]:
            return
        self.proofs_of_misbehaviour_accepted += 1
        self.initiate_view_change(now_ms)

    def send_replies(self, slot: CommittedSlot, record, now_ms: float) -> None:
        """Replies carry the speculative history digest (SPEC-RESPONSE)."""
        batch = slot.batch
        targets = self.reply_targets_for(batch)
        reply = ClientReplyMessage(
            batch_id=batch.batch_id,
            view=slot.view,
            sequence=slot.sequence,
            result_digest=record.result_digest,
            replica_id=self.node_id,
            speculative=True,
            extra=self._accepted.get((slot.view, slot.sequence), b""),
            size_bytes=self.config.reply_size_bytes(len(batch)),
        )
        self._replied[batch.batch_id] = reply
        self.charge(CryptoOp.MAC_SIGN, max(1, len(targets)))
        for target in targets:
            self.send(target, reply)
        self.stop_progress_timer(batch.batch_id)

    # ----------------------------------------------------------- history journal
    def after_execution(self, slot: CommittedSlot, record, now_ms: float) -> None:
        """Journal the executed slot for view-change requests."""
        self._spec_history[slot.sequence] = ZyzzyvaHistoryEntry(
            sequence=slot.sequence, view=slot.view, batch=slot.batch,
            history_digest=self._accepted.get((slot.view, slot.sequence), b""),
        )

    def on_stable_checkpoint(self, sequence: int, now_ms: float) -> None:
        """Durable slots need no speculative journal entries any more."""
        super().on_stable_checkpoint(sequence, now_ms)
        for seq in [s for s in self._spec_history if s <= sequence]:
            del self._spec_history[seq]
        best = max(self._commit_certs, default=None)
        for seq in [s for s in self._commit_certs
                    if s <= sequence and s != best]:
            del self._commit_certs[seq]
        for key in [k for k in self._accepted if k[1] <= sequence]:
            del self._accepted[key]

    # ------------------------------------------------------------- view change
    # Generic machinery in ViewChangeRecovery.  Zyzzyva's requests carry an
    # unverifiable speculative history plus the highest client commit
    # certificate; reconciliation anchors on the certificates and adopts
    # speculative entries with f+1 matching support (see
    # reconcile_speculative_histories).

    def build_view_change_request(self, view: int) -> ZyzzyvaViewChange:
        stable = self.checkpoints.stable_sequence
        executed = tuple(
            dataclasses.replace(self._spec_history[seq],
                                commit_certificate=self._commit_certs.get(seq))
            for seq in sorted(self._spec_history)
            if seq > stable and seq <= self.last_executed_sequence
        )
        best_cc = max(self._commit_certs, default=None)
        return ZyzzyvaViewChange(
            view=view, replica_id=self.node_id,
            stable_checkpoint=stable,
            checkpoint_digest=self.checkpoints.stable_digest(stable) or b"",
            commit_certificate=(self._commit_certs[best_cc]
                                if best_cc is not None else None),
            executed=executed,
            size_bytes=self.config.proposal_size_bytes(
                sum(len(entry.batch) for entry in executed)
            ),
        )

    def validate_view_change_request_message(self, request: ZyzzyvaViewChange,
                                             view: int) -> bool:
        """Admit a VIEW-CHANGE: consecutive history, verified certificates.

        Speculative entries carry no proofs this MAC-mode protocol could
        re-check cryptographically (reconciliation defends against lying
        senders with its certified-or-``f+1``-support rule instead), but
        every carried commit certificate — the request-level anchor and
        the per-slot entry certificates — is re-verified on admission:
        real responder identities, a full ``2f + 1`` responder set, slot
        alignment, and (in cost-modelled deployments, where it is
        re-derivable) the result digest the certified responders must have
        produced.
        """
        if request.view != view:
            return False
        expected_sequence = request.stable_checkpoint + 1
        for entry in request.executed:
            if entry.sequence != expected_sequence:
                return False
            expected_sequence += 1
            certificate = entry.commit_certificate
            if certificate is not None and not self._certificate_admissible(
                    certificate, sequence=entry.sequence, batch=entry.batch):
                return False
        certificate = request.commit_certificate
        if certificate is not None and not self._certificate_admissible(
                certificate):
            return False
        return True

    def _certificate_rules(self, sequence: int):
        """(members, 2f+1) of the epoch governing *sequence*'s slot.

        A certificate for a slot committed before a reconfiguration is
        judged against the membership and quorum that governed the slot
        when it was ordered, not the current epoch's.
        """
        config = self.config
        if not config.reconfigured:
            return set(config.replica_ids), 2 * config.f + 1
        epoch = config.epoch_of_sequence(sequence)
        return set(config.membership(epoch)), config.quorum_of(epoch)

    def _certificate_admissible(self, certificate: ZyzzyvaCommitCertificate,
                                sequence: Optional[int] = None,
                                batch: Optional[RequestBatch] = None) -> bool:
        """Re-verify a commit certificate carried by a view-change request."""
        members, quorum = self._certificate_rules(certificate.sequence)
        responders = set(certificate.responders)
        if not responders.issubset(members):
            return False
        if len(responders) < quorum:
            return False
        if sequence is not None and certificate.sequence != sequence:
            return False
        if batch is not None:
            if certificate.batch_id != batch.batch_id:
                return False
            if not self.config.execute_operations:
                # Cost-modelled execution has deterministic results: the
                # digest 2f+1 responders vouched for is re-derivable, so a
                # fabricated certificate over a forged batch must also
                # fabricate this digest consistently — which binds it to
                # the batch it claims to certify.
                if certificate.result_digest != modelled_result_digest(
                        certificate.sequence, batch):
                    return False
        # MAC mode cannot re-verify the responders' authenticators, but at
        # most one genuine certificate can exist per slot (two would need
        # intersecting honest responders answering conflicting batches), so
        # a carried certificate that contradicts what this replica *knows*
        # about the slot — the certificate it acknowledged itself, or a
        # batch this replica executed below its stable checkpoint, where
        # the state is durable — is necessarily forged.
        own_certificate = self._commit_certs.get(certificate.sequence)
        if (own_certificate is not None
                and (own_certificate.batch_id != certificate.batch_id
                     or own_certificate.result_digest
                     != certificate.result_digest)):
            return False
        if certificate.sequence <= self.checkpoints.stable_sequence:
            executed = self.executor.executed(certificate.sequence)
            if (executed is not None
                    and executed.batch.batch_id != certificate.batch_id):
                return False
        return True

    def make_new_view(self, new_view: int, requests) -> ZyzzyvaNewView:
        return ZyzzyvaNewView(new_view=new_view, requests=requests)

    def adopt_new_view(self, proposal: ZyzzyvaNewView, requests,
                       now_ms: float) -> int:
        """Reconcile speculative histories and converge on the adopted one.

        Unlike PoE, where certified entries are unique per slot, a replica
        here may have executed a *different* batch than the adopted one at
        the same slot (that is exactly what an equivocating primary
        causes), so adoption rolls back to the last slot where this
        replica's history agrees with the adopted prefix before executing
        the remainder.  Two repairs the adopted prefix cannot express run
        through the checkpoint layer instead: a replica *behind* the
        anchor requests a state transfer from the anchor's witness, and a
        replica whose journaled state digest at the anchor *contradicts*
        the ``f + 1``-backed anchor digest — same height, wrong batch —
        starts a same-height divergence repair.
        """
        prefix, kmax = reconcile_speculative_histories(requests,
                                                       self._f_plus_1 - 1)
        anchor_info = speculative_anchor(requests, self._f_plus_1 - 1)
        # Find the first adopted slot this replica executed differently.
        rollback_target = min(kmax, self.last_executed_sequence)
        for sequence in sorted(prefix):
            if sequence > self.last_executed_sequence:
                break
            mine = self.executor.executed(sequence)
            if mine is not None and (mine.batch.digest()
                                     != prefix[sequence].batch.digest()):
                # Never roll back past the stable checkpoint: divergence
                # below it is durable either way, and the checkpoint
                # layer's state-digest repair owns that case.
                rollback_target = max(sequence - 1,
                                      self.checkpoints.stable_sequence)
                break
        self.rollback_speculation(rollback_target, now_ms)
        # Evict pending uncovered slots before executing the prefix (the
        # same stale-slot hazard PoE's view change guards against).
        for sequence in [s for s in self._committed if s > kmax or s in prefix]:
            del self._committed[sequence]
        for sequence in sorted(prefix):
            if sequence <= self.last_executed_sequence:
                continue
            entry = prefix[sequence]
            self._accepted[(entry.view, entry.sequence)] = entry.history_digest
            if entry.commit_certificate is not None:
                self._commit_certs.setdefault(sequence, entry.commit_certificate)
            self.commit_slot(sequence=sequence, view=entry.view, batch=entry.batch,
                             proof=entry.history_digest, now_ms=now_ms,
                             speculative=False)
        checkpoint = anchor_info.checkpoint
        checkpoint_digest = anchor_info.checkpoint_digest
        if checkpoint_digest is not None and checkpoint >= 0:
            # f + 1 requests agree on the durable state digest at the
            # highest stable checkpoint: treat it like a checkpoint vote
            # quorum (crucial for a replica too dark to have heard the
            # votes themselves).
            self._mark_checkpoint_digest_verified(checkpoint,
                                                  checkpoint_digest, now_ms)
            own_digest = self._own_checkpoint_digests.get(checkpoint)
            if self.last_executed_sequence >= checkpoint:
                if own_digest is not None and own_digest != checkpoint_digest:
                    self._begin_divergence_repair(checkpoint, now_ms)
            elif anchor_info.witness is not None \
                    and anchor_info.witness != self.node_id:
                # Broadcast rather than unicast to the witness: the link to
                # any single peer may be dark, and every up-to-date honest
                # replica can serve the checkpoint state.
                self.broadcast(StateTransferRequest(
                    sequence=checkpoint, replica_id=self.node_id))
        # History reconciliation: every replica re-bases the speculative
        # history chain at the same deterministic value, so the new
        # primary's ORDER-REQs extend a chain all replicas share.
        self._history_digest = digest("zyzzyva-history", "new-view",
                                      proposal.new_view, kmax)
        return kmax

    def on_rolled_back(self, record) -> None:
        self._spec_history.pop(record.sequence, None)
        self._commit_certs.pop(record.sequence, None)


class ZyzzyvaClientPool(ClientPool):
    """Zyzzyva client: waits for all ``n`` replicas, falls back to commit certs.

    The fast path completes a batch only when **every** replica answered
    with an identical speculative response.  On timeout the client checks
    whether it holds at least ``2f + 1`` matching responses; if so it
    broadcasts a commit certificate and completes once ``2f + 1`` replicas
    acknowledge it; otherwise it retransmits the request.

    The client is also Zyzzyva's equivocation detector: it records every
    speculative response per (view, sequence) slot — including responses
    for batches it never submitted, which is how a forged ordering at its
    own slot becomes visible — and, when a slot shows two conflicting
    responses, broadcasts a proof of misbehaviour that makes the replicas
    replace the primary.
    """

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=config.n,
            target_outstanding=target_outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
            completion_quorum_fn=config.n_of,
        )
        self._commit_phase: Dict[str, Set[str]] = {}
        self._commit_reply: Dict[str, ClientReplyMessage] = {}
        #: batch_id -> reply key a commit certificate was already built
        #: from, so a certificate round that passes a full timeout without
        #: 2f+1 local commits is recognised as failed instead of looped.
        self._cert_attempted: Dict[str, Tuple] = {}
        #: (view, sequence) -> (batch_id, result_digest) -> distinct senders.
        self._slot_observations: Dict[Tuple[int, int],
                                      Dict[Tuple[str, bytes], Set[str]]] = {}
        #: Views a proof of misbehaviour was already broadcast for.
        self._pom_views: Set[int] = set()
        self.commit_certificates_sent = 0
        self.proofs_of_misbehaviour_sent = 0

    def _slot_quorum(self, sequence: int) -> int:
        """The ``2f + 1`` of the epoch that governs *sequence*'s slot."""
        config = self.config
        if not config.reconfigured:
            return 2 * config.f + 1
        return config.quorum_of(config.epoch_of_sequence(sequence))

    def on_message(self, sender: str, message, now_ms: float) -> None:
        if isinstance(message, ClientReplyMessage) and message.speculative:
            observations = self._slot_observations.setdefault(
                (message.view, message.sequence), {})
            observations.setdefault(
                (message.batch_id, message.result_digest), set()).add(sender)
            if len(observations) > 1:
                # The conflict itself is the proof: report it immediately
                # rather than waiting for one of our requests to time out.
                self._maybe_send_proof_of_misbehaviour(now_ms)
        view_before = self.current_view
        super().on_message(sender, message, now_ms)
        if self.current_view > view_before:
            # Only current-view slots can ever yield POM evidence: drop
            # observations stranded in superseded views so the journal is
            # bounded by in-flight work, not the length of the run.
            for slot in [s for s in self._slot_observations
                         if s[0] < self.current_view]:
                del self._slot_observations[slot]

    def _complete(self, reply: ClientReplyMessage, pending, now_ms: float) -> None:
        # A completed slot needs no equivocation evidence any more.
        self._slot_observations.pop((reply.view, reply.sequence), None)
        self._cert_attempted.pop(reply.batch_id, None)
        super()._complete(reply, pending, now_ms)

    def _conflicting_slot_evidence(
            self, view: int) -> Optional[Tuple[Tuple[int, int, str, bytes], ...]]:
        """Two conflicting responses for one slot of *view*, if observed."""
        for (slot_view, sequence), observations in sorted(
                self._slot_observations.items()):
            if slot_view != view or len(observations) < 2:
                continue
            keys = sorted(observations)[:2]
            return tuple((slot_view, sequence, batch_id, result_digest)
                         for batch_id, result_digest in keys)
        return None

    def _maybe_send_proof_of_misbehaviour(self, now_ms: float) -> None:
        view = self.current_view
        if view in self._pom_views:
            return
        evidence = self._conflicting_slot_evidence(view)
        if evidence is None:
            return
        self._pom_views.add(view)
        self.proofs_of_misbehaviour_sent += 1
        self.broadcast(ZyzzyvaProofOfMisbehaviour(
            view=view, evidence=evidence, client_id=self.node_id,
        ))

    def on_request_timeout(self, pending: _PendingBatch, now_ms: float) -> None:
        self._maybe_send_proof_of_misbehaviour(now_ms)
        batch_id = pending.batch.batch_id
        # Most voters wins; on a tie, the higher view.  Evidence is never
        # discarded: a pre-view-change response set can stay the only
        # reachable 2f+1 when one of its responders has since crashed, and
        # replicas accept older-view certificates for slots that survived
        # the change — while evidence for a slot that did NOT survive is
        # overtaken on this ordering as soon as retransmission gets the
        # batch re-ordered and the new view's responses accumulate.
        best_key, best_voters = None, ()
        for key, voters in pending.replies.items():
            if (len(voters), key[1]) > (len(best_voters),
                                        best_key[1] if best_key else -1):
                best_key, best_voters = key, voters
        if best_key is not None and len(best_voters) >= self._slot_quorum(
                best_key[2]):
            if self._cert_attempted.get(batch_id) == best_key:
                # The previous certificate round built from this same
                # evidence passed a full timeout without 2f+1 local
                # commits — either the certified slot was rolled back, or
                # an acknowledger is still catching up.  Alternate with a
                # retransmission: it gets a dead slot re-ordered (whose
                # fresh responses then overtake this evidence) and keeps
                # progress timers running on the replicas, while the
                # certificate stays retryable for the catching-up case.
                del self._cert_attempted[batch_id]
                super().on_request_timeout(pending, now_ms)
                return
            # Second phase: distribute the commit certificate.
            self._cert_attempted[batch_id] = best_key
            _, view, sequence, result_digest = best_key
            self.commit_certificates_sent += 1
            self._commit_phase.setdefault(batch_id, set())
            self._commit_reply[batch_id] = ClientReplyMessage(
                batch_id=batch_id, view=view, sequence=sequence,
                result_digest=result_digest, replica_id="",
            )
            self.broadcast(ZyzzyvaCommitCertificate(
                batch_id=batch_id, view=view, sequence=sequence,
                result_digest=result_digest, responders=tuple(sorted(best_voters)),
                client_id=self.node_id,
            ))
            self.set_timer(f"request:{batch_id}", self.timeout_ms, payload=batch_id)
        else:
            super().on_request_timeout(pending, now_ms)

    def on_other_message(self, sender: str, message, now_ms: float) -> None:
        if not isinstance(message, ZyzzyvaLocalCommit):
            return
        acks = self._commit_phase.get(message.batch_id)
        pending = self._pending.get(message.batch_id)
        if acks is None or pending is None:
            return
        # Transport-level sender, not the spoofable message.replica_id: one
        # Byzantine replica must not acknowledge a commit certificate 2f+1
        # times under forged identities.
        acks.add(sender)
        if len(acks) >= self._slot_quorum(message.sequence):
            reply = self._commit_reply.get(message.batch_id)
            if reply is not None:
                self._complete(reply, pending, now_ms)
