"""Zyzzyva baseline: single-phase speculative BFT with client-driven commit.

Zyzzyva's fast path has the absolute minimal cost: the primary orders a
request, every replica executes it immediately and answers the client,
and the *client* completes only when it has matching speculative replies
from **all** ``n`` replicas (Section IV-A of the paper).  If even one
replica fails or is slow, the client times out; with at least ``2f + 1``
matching replies it distributes a commit certificate and waits for
``2f + 1`` acknowledgements (the second phase); with fewer it must
retransmit.  This reliance on clients and on all replicas answering is
exactly what collapses Zyzzyva's throughput under a single backup
failure (Figures 9(a), 9(e), 9(i)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.hashing import digest
from repro.protocols.base import Message, NodeConfig, ProtocolInfo
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.replica_base import BatchingReplica, CommittedSlot
from repro.workload.clients import BatchSource, ClientPool, _PendingBatch
from repro.workload.transactions import RequestBatch


@dataclass
class ZyzzyvaOrderRequest(Message):
    """ORDER-REQ(v, k, batch, h_k): the primary's speculative ordering."""

    view: int = 0
    sequence: int = 0
    batch: RequestBatch = None
    history_digest: bytes = b""


@dataclass
class ZyzzyvaCommitCertificate(Message):
    """COMMIT(c, CC): a client forwarding its 2f+1 matching-reply certificate."""

    batch_id: str = ""
    view: int = 0
    sequence: int = 0
    result_digest: bytes = b""
    responders: Tuple[str, ...] = ()
    client_id: str = ""


@dataclass
class ZyzzyvaLocalCommit(Message):
    """LOCAL-COMMIT(v, d): a replica acknowledging a commit certificate."""

    batch_id: str = ""
    view: int = 0
    sequence: int = 0
    replica_id: str = ""


class ZyzzyvaReplica(BatchingReplica):
    """A Zyzzyva replica: execute speculatively straight from the ordering."""

    PROTOCOL_INFO = ProtocolInfo(
        name="Zyzzyva",
        phases=1,
        messages="O(n)",
        resilience="0",
        requirements="reliable clients and unsafe",
    )

    MESSAGE_HANDLERS = {
        ZyzzyvaOrderRequest: "handle_order_request",
        ZyzzyvaCommitCertificate: "handle_commit_certificate",
    }

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model, initial_table)
        self._history_digest = digest("zyzzyva-history", "genesis")
        self._accepted: Dict[Tuple[int, int], bytes] = {}
        self.local_commits_sent = 0

    # ---------------------------------------------------------------- proposing
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        """Primary: extend the speculative history and broadcast the ordering."""
        self._history_digest = digest("zyzzyva-history", self._history_digest,
                                      sequence, batch.digest())
        self.charge(CryptoOp.HASH)
        self.charge(CryptoOp.MAC_SIGN, self.config.n - 1)
        message = ZyzzyvaOrderRequest(
            view=self.view, sequence=sequence, batch=batch,
            history_digest=self._history_digest,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        )
        self._accepted[(self.view, sequence)] = self._history_digest
        self.broadcast(message)
        # The primary executes speculatively as well.
        self.commit_slot(sequence=sequence, view=self.view, batch=batch,
                         proof=self._history_digest, now_ms=now_ms, speculative=True)

    # ---------------------------------------------------------------- messages
    def handle_order_request(self, sender: str, message: ZyzzyvaOrderRequest,
                             now_ms: float) -> None:
        if message.view != self.view or sender != self.primary_id:
            return
        key = (message.view, message.sequence)
        if key in self._accepted:
            return
        self.charge(CryptoOp.MAC_VERIFY)
        self.charge(CryptoOp.HASH)
        self._accepted[key] = message.history_digest
        if message.batch.reply_to:
            self._reply_targets.setdefault(message.batch.batch_id,
                                           message.batch.reply_to)
        self.commit_slot(sequence=message.sequence, view=message.view,
                         batch=message.batch, proof=message.history_digest,
                         now_ms=now_ms, speculative=True)

    def handle_commit_certificate(self, sender: str,
                                  message: ZyzzyvaCommitCertificate,
                                  now_ms: float) -> None:
        """Second phase: acknowledge a client's 2f+1 commit certificate."""
        self.charge(CryptoOp.MAC_VERIFY, max(1, len(message.responders)))
        if len(set(message.responders)) < 2 * self.config.f + 1:
            return
        self.charge(CryptoOp.MAC_SIGN)
        self.local_commits_sent += 1
        self.send(message.client_id or sender, ZyzzyvaLocalCommit(
            batch_id=message.batch_id, view=message.view,
            sequence=message.sequence, replica_id=self.node_id,
        ))

    def send_replies(self, slot: CommittedSlot, record, now_ms: float) -> None:
        """Replies carry the speculative history digest (SPEC-RESPONSE)."""
        batch = slot.batch
        targets = self.reply_targets_for(batch)
        reply = ClientReplyMessage(
            batch_id=batch.batch_id,
            view=slot.view,
            sequence=slot.sequence,
            result_digest=record.result_digest,
            replica_id=self.node_id,
            speculative=True,
            extra=self._accepted.get((slot.view, slot.sequence), b""),
            size_bytes=self.config.reply_size_bytes(len(batch)),
        )
        self._replied[batch.batch_id] = reply
        self.charge(CryptoOp.MAC_SIGN, max(1, len(targets)))
        for target in targets:
            self.send(target, reply)
        self.stop_progress_timer(batch.batch_id)


class ZyzzyvaClientPool(ClientPool):
    """Zyzzyva client: waits for all ``n`` replicas, falls back to commit certs.

    The fast path completes a batch only when **every** replica answered
    with an identical speculative response.  On timeout the client checks
    whether it holds at least ``2f + 1`` matching responses; if so it
    broadcasts a commit certificate and completes once ``2f + 1`` replicas
    acknowledge it; otherwise it retransmits the request.
    """

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=config.n,
            target_outstanding=target_outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
        )
        self._commit_phase: Dict[str, Set[str]] = {}
        self._commit_reply: Dict[str, ClientReplyMessage] = {}
        self.commit_certificates_sent = 0

    def on_request_timeout(self, pending: _PendingBatch, now_ms: float) -> None:
        batch_id = pending.batch.batch_id
        best_key, best_voters = None, set()
        for key, voters in pending.replies.items():
            if len(voters) > len(best_voters):
                best_key, best_voters = key, voters
        if best_key is not None and len(best_voters) >= 2 * self.config.f + 1:
            # Second phase: distribute the commit certificate.
            _, view, sequence, result_digest = best_key
            self.commit_certificates_sent += 1
            self._commit_phase.setdefault(batch_id, set())
            self._commit_reply[batch_id] = ClientReplyMessage(
                batch_id=batch_id, view=view, sequence=sequence,
                result_digest=result_digest, replica_id="",
            )
            self.broadcast(ZyzzyvaCommitCertificate(
                batch_id=batch_id, view=view, sequence=sequence,
                result_digest=result_digest, responders=tuple(sorted(best_voters)),
                client_id=self.node_id,
            ))
            self.set_timer(f"request:{batch_id}", self.timeout_ms, payload=batch_id)
        else:
            super().on_request_timeout(pending, now_ms)

    def on_other_message(self, sender: str, message, now_ms: float) -> None:
        if not isinstance(message, ZyzzyvaLocalCommit):
            return
        acks = self._commit_phase.get(message.batch_id)
        pending = self._pending.get(message.batch_id)
        if acks is None or pending is None:
            return
        # Transport-level sender, not the spoofable message.replica_id: one
        # Byzantine replica must not acknowledge a commit certificate 2f+1
        # times under forged identities.
        acks.add(sender)
        if len(acks) >= 2 * self.config.f + 1:
            reply = self._commit_reply.get(message.batch_id)
            if reply is not None:
                self._complete(reply, pending, now_ms)
