"""Periodic checkpointing shared by PoE, PBFT and SBFT.

The paper relies on a "standard periodic checkpoint protocol" to bound the
size of view-change messages and to bring replicas that were kept in the
dark up to date (Section II-D).  Every ``checkpoint_interval`` executed
slots a replica broadcasts a digest of its state; once it has ``2f + 1``
matching digests for a sequence number the checkpoint is *stable*: undo
logs below it can be pruned and view-change messages only need to describe
what happened after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


from repro.protocols.base import Message
from repro.protocols.quorum import VoteSet


@dataclass(slots=True)
class CheckpointMessage(Message):
    """A replica vouching for its state after executing *sequence*."""

    sequence: int = 0
    state_digest: bytes = b""
    replica_id: str = ""


@dataclass
class StateTransferRequest(Message):
    """A lagging replica asking an up-to-date peer for checkpointed state."""

    sequence: int = 0
    replica_id: str = ""


@dataclass
class StateTransferResponse(Message):
    """Checkpointed state shipped to a lagging replica.

    The table snapshot is only populated when replicas really apply
    transactions; cost-modelled deployments transfer the digest alone.
    """

    sequence: int = 0
    view: int = 0
    state_digest: bytes = b""
    table_snapshot: Optional[dict] = None


class CheckpointTracker:
    """Collects checkpoint votes and reports stable checkpoints.

    Votes are aggregated in first-seen bitsets keyed by replica index
    (:class:`~repro.protocols.quorum.VoteSet`) when an *index_map* is
    supplied; voters outside the map still count through the overflow
    path, preserving plain-set semantics.
    """

    def __init__(self, quorum: int,
                 index_map: Optional[Mapping[str, int]] = None) -> None:
        self.quorum = quorum
        self.stable_sequence = -1
        self._index_map = index_map
        self._votes: Dict[Tuple[int, bytes], VoteSet] = {}

    def record_vote(self, sequence: int, state_digest: bytes,
                    replica_id: str) -> Optional[int]:
        """Record one vote; return the sequence if it just became stable."""
        if sequence <= self.stable_sequence:
            return None
        key = (sequence, state_digest)
        voters = self._votes.get(key)
        if voters is None:
            voters = self._votes[key] = VoteSet(self._index_map)
        voters.add(replica_id)
        if voters.count >= self.quorum:
            self.stable_sequence = sequence
            self._garbage_collect()
            return sequence
        return None

    def _garbage_collect(self) -> None:
        for key in [k for k in self._votes if k[0] <= self.stable_sequence]:
            del self._votes[key]
