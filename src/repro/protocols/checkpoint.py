"""Periodic checkpointing shared by PoE, PBFT and SBFT.

The paper relies on a "standard periodic checkpoint protocol" to bound the
size of view-change messages and to bring replicas that were kept in the
dark up to date (Section II-D).  Every ``checkpoint_interval`` executed
slots a replica broadcasts a digest of its state; once it has ``2f + 1``
matching digests for a sequence number the checkpoint is *stable*: undo
logs below it can be pruned and view-change messages only need to describe
what happened after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple


from repro.protocols.base import Message
from repro.protocols.quorum import VoteSet


def prune_to_last(journal: Dict[int, object], keep: int) -> None:
    """Drop the oldest entries of a sequence-keyed journal beyond *keep*.

    The checkpoint machinery keeps several bounded journals (stable
    digests, own boundary digests, boundary snapshots, verified transfer
    digests); this is the one retention policy they all share.
    """
    if len(journal) > keep:
        for stale in sorted(journal)[: len(journal) - keep]:
            del journal[stale]


@dataclass(slots=True)
class CheckpointMessage(Message):
    """A replica vouching for its state after executing *sequence*."""

    sequence: int = 0
    state_digest: bytes = b""
    replica_id: str = ""


@dataclass
class StateTransferRequest(Message):
    """A lagging replica asking an up-to-date peer for checkpointed state."""

    sequence: int = 0
    replica_id: str = ""


@dataclass
class StateTransferResponse(Message):
    """Checkpointed state shipped to a lagging replica.

    The table snapshot is only populated when replicas really apply
    transactions; cost-modelled deployments transfer the digest alone.
    ``head_hash`` is the source chain's block hash at *sequence*: it is
    committed to by ``state_digest`` (which the receiver validates against
    checkpoint votes), and adopting it keeps the receiver on the canonical
    hash chain after the sync.

    ``executed_batch_ids`` carries the sender's (batch id, sequence)
    execution records within the transferred prefix.  A receiver that
    jumps over slots it never executed cannot otherwise know which batch
    ids those slots consumed — and a new primary that fills its log gap
    by state transfer would re-propose (and re-execute) exactly those
    batches when clients retransmit them.  The list is advisory dedup
    information, not quorum-vouched state: it is merged only after the
    response's digest validates, entries beyond the vouched prefix are
    ignored, and the worst a lying sender achieves is making its one
    receiver decline to re-propose a batch — which client retransmission
    and primary rotation already recover from.
    """

    sequence: int = 0
    view: int = 0
    state_digest: bytes = b""
    table_snapshot: Optional[dict] = None
    head_hash: bytes = b""
    executed_batch_ids: Tuple[Tuple[str, int], ...] = ()
    #: Wire form of the sender's epoch log (``EpochEntry.as_wire`` tuples)
    #: up to the transferred sequence.  A joiner bootstrapping into a
    #: reconfigured deployment adopts the committed epochs it skipped over
    #: from here — validated against the shared registered schedule, so a
    #: lying sender cannot smuggle an epoch consensus never committed.
    epoch_log: Tuple[Tuple, ...] = ()


class CheckpointTracker:
    """Collects checkpoint votes and reports stable checkpoints.

    Votes are aggregated in first-seen bitsets keyed by replica index
    (:class:`~repro.protocols.quorum.VoteSet`) when an *index_map* is
    supplied; voters outside the map still count through the overflow
    path, preserving plain-set semantics.
    """

    #: Stable digests retained for state-transfer validation; older entries
    #: are pruned so the journal stays bounded by recent history, not the
    #: length of the run.
    STABLE_DIGEST_HISTORY = 32

    def __init__(self, quorum: int,
                 index_map: Optional[Mapping[str, int]] = None) -> None:
        self.quorum = quorum
        #: Optional per-sequence quorum override for reconfigured
        #: deployments: called with the sequence number and returns the
        #: ``2 f + 1`` of the epoch that sequence belongs to, so a vote
        #: for an old-epoch boundary is still held to the old epoch's
        #: quorum after the membership resizes.  ``None`` (the fixed-
        #: membership default) keeps the single attribute read.
        self.quorum_fn = None
        self.stable_sequence = -1
        self._index_map = index_map
        self._votes: Dict[Tuple[int, bytes], VoteSet] = {}
        #: Sequence -> state digest for checkpoints that reached stability.
        #: A stable digest is quorum-vouched ground truth: state-transfer
        #: responses and a replica's own state are validated against it.
        self.stable_digests: Dict[int, bytes] = {}

    def discard_voter(self, replica_id: str) -> None:
        """Purge an evicted replica's votes from uncertified quorums."""
        for voters in self._votes.values():
            voters.discard(replica_id)

    def record_vote(self, sequence: int, state_digest: bytes,
                    replica_id: str) -> Optional[int]:
        """Record one vote; return the sequence if it just became stable."""
        if sequence <= self.stable_sequence:
            return None
        key = (sequence, state_digest)
        voters = self._votes.get(key)
        if voters is None:
            voters = self._votes[key] = VoteSet(self._index_map)
        voters.add(replica_id)
        quorum_fn = self.quorum_fn
        quorum = self.quorum if quorum_fn is None else quorum_fn(sequence)
        if voters.count >= quorum:
            self.stable_sequence = sequence
            self.stable_digests[sequence] = state_digest
            self._garbage_collect()
            return sequence
        return None

    def stable_digest(self, sequence: int) -> Optional[bytes]:
        """The quorum-vouched state digest of a (retained) stable checkpoint."""
        return self.stable_digests.get(sequence)

    def _garbage_collect(self) -> None:
        for key in [k for k in self._votes if k[0] <= self.stable_sequence]:
            del self._votes[key]
        prune_to_last(self.stable_digests, self.STABLE_DIGEST_HISTORY)
