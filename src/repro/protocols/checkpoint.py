"""Periodic checkpointing shared by PoE, PBFT and SBFT.

The paper relies on a "standard periodic checkpoint protocol" to bound the
size of view-change messages and to bring replicas that were kept in the
dark up to date (Section II-D).  Every ``checkpoint_interval`` executed
slots a replica broadcasts a digest of its state; once it has ``2f + 1``
matching digests for a sequence number the checkpoint is *stable*: undo
logs below it can be pruned and view-change messages only need to describe
what happened after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple


from repro.protocols.base import Message


@dataclass
class CheckpointMessage(Message):
    """A replica vouching for its state after executing *sequence*."""

    sequence: int = 0
    state_digest: bytes = b""
    replica_id: str = ""


@dataclass
class StateTransferRequest(Message):
    """A lagging replica asking an up-to-date peer for checkpointed state."""

    sequence: int = 0
    replica_id: str = ""


@dataclass
class StateTransferResponse(Message):
    """Checkpointed state shipped to a lagging replica.

    The table snapshot is only populated when replicas really apply
    transactions; cost-modelled deployments transfer the digest alone.
    """

    sequence: int = 0
    view: int = 0
    state_digest: bytes = b""
    table_snapshot: Optional[dict] = None


class CheckpointTracker:
    """Collects checkpoint votes and reports stable checkpoints."""

    def __init__(self, quorum: int) -> None:
        self.quorum = quorum
        self.stable_sequence = -1
        self._votes: Dict[Tuple[int, bytes], Set[str]] = {}

    def record_vote(self, sequence: int, state_digest: bytes,
                    replica_id: str) -> Optional[int]:
        """Record one vote; return the sequence if it just became stable."""
        if sequence <= self.stable_sequence:
            return None
        voters = self._votes.setdefault((sequence, state_digest), set())
        voters.add(replica_id)
        if len(voters) >= self.quorum:
            self.stable_sequence = sequence
            self._garbage_collect()
            return sequence
        return None

    def _garbage_collect(self) -> None:
        for key in [k for k in self._votes if k[0] <= self.stable_sequence]:
            del self._votes[key]
