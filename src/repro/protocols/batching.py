"""Request batching, as performed by RESILIENTDB's batch-threads.

The primary aggregates incoming client transactions into batches of a
configured size before proposing them (paper, Section III "Batching").
Client pools may also submit pre-built batches (the common case in the
simulator), which pass through unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.workload.transactions import RequestBatch, Transaction


class Batcher:
    """Groups individual transactions into consensus-sized batches."""

    def __init__(self, batch_size: int, owner_id: str = "primary") -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.batch_size = batch_size
        self.owner_id = owner_id
        self._pending: Deque[Transaction] = deque()
        self._reply_to: Optional[str] = None
        self._created_batches = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add_transactions(self, transactions, reply_to: str = "",
                         now_ms: float = 0.0) -> List[RequestBatch]:
        """Add transactions and return any batches that became full."""
        if reply_to:
            self._reply_to = reply_to
        self._pending.extend(transactions)
        batches: List[RequestBatch] = []
        while len(self._pending) >= self.batch_size:
            batches.append(self._pop_batch(self.batch_size, now_ms))
        return batches

    def flush(self, now_ms: float = 0.0) -> Optional[RequestBatch]:
        """Emit a (possibly partial) batch with whatever is pending."""
        if not self._pending:
            return None
        return self._pop_batch(len(self._pending), now_ms)

    def _pop_batch(self, size: int, now_ms: float) -> RequestBatch:
        transactions = tuple(self._pending.popleft() for _ in range(size))
        batch_id = f"{self.owner_id}:assembled:{self._created_batches}"
        self._created_batches += 1
        created_at = min((t.created_at_ms for t in transactions), default=now_ms)
        return RequestBatch(
            batch_id=batch_id,
            transactions=transactions,
            created_at_ms=created_at,
            reply_to=self._reply_to or "",
        )
