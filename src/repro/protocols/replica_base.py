"""Shared replica machinery for primary-backup BFT protocols.

All protocols in this repository (PoE and the four baselines) share the
same replica skeleton, which mirrors RESILIENTDB's pipeline
(paper, Figure 6):

* client requests arrive, are batched (or pass through pre-batched) and
  queued for proposal by the primary;
* the protocol-specific consensus logic decides when a slot *commits*
  locally (for PoE: view-commits; for PBFT: commits; for Zyzzyva:
  speculatively orders);
* committed slots are executed strictly in sequence order against the
  replicated key-value store, blocks are appended to the ledger, and
  replies are sent to clients;
* periodic checkpoints make state durable and garbage-collect undo logs;
* a per-request progress timer lets backups detect a faulty primary.

Concrete protocols implement :meth:`create_proposal` (primary side),
:meth:`on_protocol_message` (consensus messages) and, when they support
it, the view-change hooks.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.ledger.blockchain import Blockchain
from repro.ledger.execution import ExecutedBatch, SpeculativeExecutor
from repro.ledger.store import KeyValueStore
from repro.protocols.base import Message, NodeConfig, ProtocolNode
from repro.protocols.batching import Batcher
from repro.crypto.hashing import digest
from repro.protocols.checkpoint import (
    CheckpointMessage,
    CheckpointTracker,
    StateTransferRequest,
    StateTransferResponse,
    prune_to_last,
)
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.protocols.epoch import (
    RECONFIG_PHASE,
    EpochEntry,
    ReconfigRecord,
    activation_boundary,
    apply_reconfig,
    genesis_entry,
    reconfig_record_valid,
)
from repro.protocols.quorum import VoteSet
from repro.workload.transactions import RequestBatch


@dataclass(slots=True)
class CommittedSlot:
    """A consensus slot that is ready for in-order execution."""

    sequence: int
    view: int
    batch: RequestBatch
    proof: object = None
    speculative: bool = False


class BatchingReplica(ProtocolNode, abc.ABC):
    """Base class implementing batching, execution, replies and checkpoints.

    Message dispatch is table-driven: every replica class declares a
    ``MESSAGE_HANDLERS`` mapping from message type to handler-method name.
    ``__init_subclass__`` merges the tables along the MRO once per class,
    and each instance binds the handlers once at construction, so routing
    one message is a single dict lookup instead of an isinstance chain.
    """

    #: Message-type -> handler-method-name table.  Concrete protocols extend
    #: this with their consensus messages; subclass entries override base
    #: entries for the same message type.
    MESSAGE_HANDLERS: Dict[type, str] = {
        ClientRequestMessage: "handle_client_request",
        CheckpointMessage: "handle_checkpoint_message",
        StateTransferRequest: "handle_state_transfer_request",
        StateTransferResponse: "handle_state_transfer_response",
    }

    _DISPATCH_TABLE: Dict[type, str] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        merged: Dict[type, str] = {}
        for base in reversed(cls.__mro__):
            table = base.__dict__.get("MESSAGE_HANDLERS")
            if table:
                merged.update(table)
        cls._DISPATCH_TABLE = merged

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model)
        self.view = 0
        self.store = KeyValueStore(initial_table)
        self.blockchain = Blockchain(initial_primary=config.replica_ids[0])
        self.executor = SpeculativeExecutor(
            self.store, self.blockchain, apply_operations=config.execute_operations
        )
        self.batcher = Batcher(config.batch_size, owner_id=node_id)
        self.checkpoints = CheckpointTracker(quorum=2 * config.f + 1,
                                             index_map=config.replica_index_map)
        self.next_sequence = 0
        self.view_change_in_progress = False
        #: Cross-shard 2PC hook: a sharded cluster installs a
        #: ``ShardTxnManager`` here; slots carrying control batches then
        #: execute through it (certificate validation before any state
        #: change) instead of the plain executor.  ``None`` — the
        #: single-group default — keeps the execution path unchanged.
        self.control_layer = None
        self._batch_queue: Deque[RequestBatch] = deque()
        self._committed: Dict[int, CommittedSlot] = {}
        self._replied: Dict[str, ClientReplyMessage] = {}
        self._reply_targets: Dict[str, str] = {}
        self._progress_timers: Set[str] = set()
        self._forwarded_requests: Dict[str, ClientRequestMessage] = {}
        self._seen_batch_ids: Set[str] = set()
        #: batch_id -> (executed sequence, executed-at ms), so reply/dedup
        #: bookkeeping can be garbage-collected once the batch sinks far
        #: enough below the stable checkpoint *and* out of the client
        #: retransmission window (see :meth:`on_stable_checkpoint`).
        self._batch_sequence: Dict[str, Tuple[int, float]] = {}
        #: Set when a post-view-change refresh ran while the adopted log
        #: still had unexecutable gaps; re-armed by try_execute once the
        #: gap fills so parked forwarded requests get their re-proposal
        #: decision made against complete execution knowledge.
        self._refresh_parked = False
        self._deferred_messages: Dict[int, List[Tuple[str, Message]]] = {}
        self._remote_checkpoint_votes: Dict[Tuple[int, bytes], VoteSet] = {}
        self._state_transfer_requested_upto = -1
        #: Sequence -> state digest vouched by f+1 distinct checkpoint
        #: senders (or by local stability): the only digests a state
        #: transfer may install.  A lying checkpointer cannot reach f+1.
        self._verified_checkpoint_digests: Dict[int, bytes] = {}
        #: State-transfer responses whose digest cannot be vouched yet,
        #: parked until the matching checkpoint votes arrive.
        self._pending_state_transfers: Dict[int, StateTransferResponse] = {}
        #: Sequences a rejected transfer was already re-requested for (one
        #: broadcast retry per height keeps the liar from driving a loop).
        self._transfer_rerequested: Set[int] = set()
        #: This replica's own state digest at each checkpoint boundary it
        #: executed through — compared against the quorum's stable digest
        #: to detect that *this* replica executed a wrong batch, and served
        #: in state-transfer responses so the shipped digest really is the
        #: digest *at* the shipped sequence (the current state digest keeps
        #: moving past the stable checkpoint).
        self._own_checkpoint_digests: Dict[int, bytes] = {}
        #: Table snapshots journaled at checkpoint boundaries (only when
        #: operations are really applied), so state-transfer responses ship
        #: state consistent with the boundary they claim.
        self._checkpoint_snapshots: Dict[int, dict] = {}
        #: Ledger head hashes journaled at checkpoint boundaries, shipped
        #: with state transfers so receivers rejoin the canonical chain.
        self._checkpoint_head_hashes: Dict[int, bytes] = {}
        #: First divergent sequence while a same-height repair is in
        #: flight (``None`` when state matches the quorum).
        self._repair_divergent_from: Optional[int] = None
        #: Audit trail of same-height repairs: (divergent_from, stable).
        self.repair_log: List[Tuple[int, int]] = []
        self.divergence_repairs = 0
        self.state_transfer_rejections = 0
        self.executed_batches = 0
        self.executed_txns = 0
        # -- epoch / reconfiguration state ------------------------------
        #: The epoch whose quorum arithmetic currently governs this
        #: replica.  0 until a reconfiguration record both commits and
        #: reaches its activation boundary.
        self.epoch = 0
        #: Activated epochs, genesis first — the auditable record of every
        #: membership this replica ever counted quorums against.
        self.epoch_log: List[EpochEntry] = [genesis_entry(config.replica_ids)]
        #: Committed-but-not-yet-activated epochs, keyed by epoch number.
        self._pending_epochs: Dict[int, EpochEntry] = {}
        #: Smallest pending activation boundary, or ``None``.  While set,
        #: the primary will not assign sequences beyond it — the pipeline
        #: drains to the boundary so no slot straddles the epoch switch.
        self._epoch_gate: Optional[int] = None
        #: Journal of refused reconfiguration records:
        #: (sequence, batch_id, reason).  Audited — an unsafe resize must
        #: be refused by every honest replica, never activated.
        self.reconfig_refusals: List[Tuple[int, str, str]] = []
        #: Set by the cluster on replicas joining mid-run: the epoch that
        #: admits them.  Until it activates the joiner stays passive —
        #: it votes and executes but never arms primary-suspicion timers,
        #: so a node still catching up cannot drag the cluster into view
        #: changes.
        self.join_epoch: Optional[int] = None
        # Quorum sizes and the voter-index map are resolved once per epoch
        # (fixed for the deployment's lifetime unless a reconfiguration
        # activates) instead of walking the NodeConfig property chain
        # (n -> len(replica_ids)) on every delivered vote.
        self._vote_index = config.replica_index_map
        self._f_plus_1 = config.f + 1
        self._nf_quorum = config.nf
        self._fanout = config.n - 1
        # Bind the merged handler table once; `on_message` then routes each
        # delivery with one dict lookup on the message's exact type.
        self._dispatch = {
            message_cls: getattr(self, handler_name)
            for message_cls, handler_name in self._DISPATCH_TABLE.items()
        }
        # The fused deliver_into below routes past on_message; if a
        # subclass customises that virtual dispatch point, honour it by
        # restoring the generic (on_message-calling) step path.  Compared
        # against the original captured at import time so patching
        # BatchingReplica itself is detected too.
        if type(self).on_message is not _BATCHING_ON_MESSAGE:
            self.deliver_into = ProtocolNode.deliver_into.__get__(self)

    # ------------------------------------------------------------------ utils
    @property
    def primary_id(self) -> str:
        """Identifier of the primary of the current view."""
        return self.primary_for_view(self.view)

    def primary_for_view(self, view: int) -> str:
        """Primary of *view* under this replica's active epoch's membership."""
        config = self.config
        if not config.reconfigured:
            return config.primary_of_view(view)
        return config.primary_of_view_in_epoch(view, self.epoch)

    def is_primary(self) -> bool:
        return self.node_id == self.primary_id

    @property
    def last_executed_sequence(self) -> int:
        return self.executor.last_executed_sequence

    # ---------------------------------------------------------------- dispatch
    def deliver_into(self, sender: str, message: Message, now_ms: float,
                     actions) -> float:
        """Fused hot path: buffer swap and table dispatch in one frame.

        Overrides :meth:`ProtocolNode.deliver_into` to route the message
        through ``self._dispatch`` directly instead of the virtual
        :meth:`on_message` call — one Python frame fewer on every
        delivery.  Behaviour is identical.
        """
        if self.crashed:
            return 0.0
        own = self._pending_actions
        self._pending_actions = actions
        self._pending_cpu_ms = self._base_processing_ms
        try:
            handler = self._dispatch.get(message.__class__)
            if handler is not None:
                handler(sender, message, now_ms)
            else:
                self._dispatch_miss(sender, message, now_ms)
            return self._pending_cpu_ms
        finally:
            self._pending_actions = own
            self._pending_cpu_ms = 0.0

    def on_message(self, sender: str, message: Message, now_ms: float) -> None:
        handler = self._dispatch.get(message.__class__)
        if handler is not None:
            handler(sender, message, now_ms)
        else:
            self._dispatch_miss(sender, message, now_ms)

    def _dispatch_miss(self, sender: str, message: Message, now_ms: float) -> None:
        """Resolve a message type absent from the bound table.

        Subclasses of registered message types dispatch to the base type's
        handler (preserving the old isinstance semantics); the resolution is
        cached so the miss path runs once per concrete type.  Anything else
        falls through to :meth:`on_protocol_message`.
        """
        for base in type(message).__mro__[1:]:
            handler_name = self._DISPATCH_TABLE.get(base)
            if handler_name is not None:
                handler = getattr(self, handler_name)
                self._dispatch[message.__class__] = handler
                handler(sender, message, now_ms)
                return
        self.on_protocol_message(sender, message, now_ms)

    def on_protocol_message(self, sender: str, message: Message, now_ms: float) -> None:
        """Fallback for consensus messages not in ``MESSAGE_HANDLERS``.

        Table-driven protocols never reach this; it remains overridable for
        ad-hoc protocol nodes (tests, examples) that predate the table.
        """

    # ------------------------------------------------------- deferred messages
    #: Views ahead of the current one a message may be deferred for.  A
    #: legitimate sender is at most a handful of views ahead (view changes
    #: are sequential); without the horizon one Byzantine replica claiming
    #: ever-larger views would grow the defer buffer without bound.
    DEFER_VIEW_HORIZON = 32

    def defer_message(self, view: int, sender: str, message: Message) -> None:
        """Buffer a message for a view this replica has not entered yet.

        During a view-change the new primary's first proposals can overtake
        the NEW-VIEW message on the wire; deferring them (instead of
        dropping them) keeps lagging replicas in sync.
        """
        if view > self.view + self.DEFER_VIEW_HORIZON:
            return
        self._deferred_messages.setdefault(view, []).append((sender, message))

    def replay_deferred(self, now_ms: float) -> None:
        """Re-dispatch buffered messages for every view up to the current one."""
        ready_views = [view for view in self._deferred_messages if view <= self.view]
        for view in sorted(ready_views):
            for sender, message in self._deferred_messages.pop(view):
                self.on_message(sender, message, now_ms)

    # ---------------------------------------------------------- client requests
    def handle_client_request(self, sender: str, message: ClientRequestMessage,
                              now_ms: float) -> None:
        """Accept, forward or answer a client request."""
        batch = message.batch
        reply_to = message.reply_to or sender
        self._reply_targets[batch.batch_id] = reply_to
        # Clients sign their requests; verifying costs one signature check.
        self.charge(CryptoOp.VERIFY)
        earlier_reply = self._replied.get(batch.batch_id)
        if earlier_reply is not None:
            # Already executed: simply re-send the reply (paper, Section II-B).
            self.send(reply_to, earlier_reply)
            return
        if self.is_primary() and not self.view_change_in_progress:
            self.enqueue_batch(batch, now_ms)
            self.maybe_propose(now_ms)
        elif message.retransmission:
            # A client that timed out broadcasts its request; backups forward
            # it to the primary and start a progress timer so a faulty
            # primary is eventually detected (paper, Sections II-B / II-C1).
            self._forwarded_requests[batch.batch_id] = message
            self.send(self.primary_id, message)
            self.start_progress_timer(batch.batch_id, now_ms)

    def enqueue_batch(self, batch: RequestBatch, now_ms: float) -> None:
        """Queue a batch for proposal, re-batching undersized requests."""
        if batch.batch_id in self._seen_batch_ids:
            return
        # A new primary's _seen_batch_ids does not cover batches the *old*
        # primary proposed, so executed batches and batches parked in
        # adopted-but-unexecutable slots must be rejected explicitly —
        # re-proposing either would assign a second slot to the same batch.
        if batch.batch_id in self._batch_sequence:
            return
        if any(slot.batch.batch_id == batch.batch_id
               for slot in self._committed.values()):
            return
        self._seen_batch_ids.add(batch.batch_id)
        if len(batch.transactions) and len(batch) < self.config.batch_size:
            reply_to = self._reply_targets.get(batch.batch_id, batch.reply_to)
            for full in self.batcher.add_transactions(
                    batch.transactions, reply_to=reply_to, now_ms=now_ms):
                self._batch_queue.append(full)
                self._reply_targets[full.batch_id] = reply_to
        else:
            self._batch_queue.append(batch)

    def flush_partial_batch(self, now_ms: float) -> None:
        """Propose whatever the batcher holds, even if undersized."""
        partial = self.batcher.flush(now_ms)
        if partial is not None:
            self._batch_queue.append(partial)
            self.maybe_propose(now_ms)

    # ---------------------------------------------------------------- proposing
    def in_flight(self) -> int:
        """Slots proposed by this primary but not yet executed locally."""
        return self.next_sequence - (self.last_executed_sequence + 1)

    def proposal_window_open(self) -> bool:
        if self.config.out_of_order:
            return self.in_flight() < self.config.max_in_flight
        return self.in_flight() < 1

    def maybe_propose(self, now_ms: float) -> None:
        """Propose queued batches while the pipeline window allows."""
        if not self.is_primary() or self.view_change_in_progress:
            return
        while self._batch_queue and self.proposal_window_open():
            gate = self._epoch_gate
            if gate is not None and self.next_sequence > gate:
                # A reconfiguration is pending: the pipeline drains to the
                # activation boundary, so no proposal straddles the epoch
                # switch.  Activation (or a refusal at execution) clears
                # the gate and re-opens the pipeline.
                break
            batch = self._batch_queue.popleft()
            sequence = self.next_sequence
            self.next_sequence += 1
            if batch.control_phase == RECONFIG_PHASE:
                # Gate eagerly at proposal time — waiting for the record
                # to *execute* would let the out-of-order window assign
                # sequences beyond the boundary first.  The execution
                # handler recomputes the gate, so a record refused there
                # releases it.
                boundary = activation_boundary(
                    sequence, self.config.checkpoint_interval)
                if gate is None or boundary < gate:
                    self._epoch_gate = boundary
            self.create_proposal(sequence, batch, now_ms)

    @abc.abstractmethod
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        """Primary-side: start consensus on *batch* as slot *sequence*."""

    # ---------------------------------------------------------------- execution
    def commit_slot(self, sequence: int, view: int, batch: RequestBatch,
                    proof: object = None, now_ms: float = 0.0,
                    speculative: bool = False) -> None:
        """Mark a slot ready for execution and execute any in-order prefix."""
        if sequence <= self.last_executed_sequence:
            return
        if sequence not in self._committed:
            self._committed[sequence] = CommittedSlot(
                sequence=sequence, view=view, batch=batch, proof=proof,
                speculative=speculative,
            )
        self.try_execute(now_ms)

    def try_execute(self, now_ms: float) -> None:
        """Execute committed slots strictly in sequence order."""
        while (self.last_executed_sequence + 1) in self._committed:
            slot = self._committed.pop(self.last_executed_sequence + 1)
            control = self.control_layer
            phase = slot.batch.control_phase
            if phase == RECONFIG_PHASE:
                # Reconfiguration records execute like ordinary (empty)
                # batches — the block lands on every honest chain at the
                # same sequence — then the membership delta is admitted or
                # refused by the epoch machinery.
                record = self.executor.execute(
                    sequence=slot.sequence, view=slot.view, batch=slot.batch,
                    proof=slot.proof,
                )
                self._execute_reconfig(slot, now_ms)
            elif control is not None and phase:
                record = control.execute_control(self, slot, now_ms)
            else:
                record = self.executor.execute(
                    sequence=slot.sequence, view=slot.view, batch=slot.batch,
                    proof=slot.proof,
                )
            self.charge_execution(len(slot.batch))
            self.charge(CryptoOp.HASH)
            self.executed_batches += 1
            self.executed_txns += len(slot.batch)
            self._batch_sequence[slot.batch.batch_id] = (slot.sequence, now_ms)
            self.after_execution(slot, record, now_ms)
            self.send_replies(slot, record, now_ms)
            self.maybe_checkpoint(slot.sequence, now_ms)
        if self._refresh_parked and self.in_flight() == 0:
            # The log gap that parked the post-view-change refresh has
            # filled: now re-proposal decisions can be made safely.
            self._refresh_parked = False
            if self.is_primary() and not self.view_change_in_progress:
                self.refresh_pending_requests(now_ms)
        # Executing may have opened the proposal window again.
        self.maybe_propose(now_ms)

    def after_execution(self, slot: CommittedSlot, record: ExecutedBatch,
                        now_ms: float) -> None:
        """Hook for protocols needing extra work after execution."""

    def send_replies(self, slot: CommittedSlot, record: ExecutedBatch,
                     now_ms: float) -> None:
        """Send the execution reply for *slot* to the issuing client(s)."""
        batch = slot.batch
        targets = self.reply_targets_for(batch)
        reply = ClientReplyMessage(
            batch_id=batch.batch_id,
            view=slot.view,
            sequence=slot.sequence,
            result_digest=record.result_digest,
            replica_id=self.node_id,
            speculative=slot.speculative,
            size_bytes=self.config.reply_size_bytes(len(batch)),
        )
        self._replied[batch.batch_id] = reply
        self.charge(CryptoOp.MAC_SIGN, max(1, len(targets)))
        for target in targets:
            self.send(target, reply)
        self.stop_progress_timer(batch.batch_id)

    def reply_targets_for(self, batch: RequestBatch) -> List[str]:
        explicit = self._reply_targets.get(batch.batch_id) or batch.reply_to
        if explicit:
            return [explicit]
        return list(batch.client_ids)

    # --------------------------------------------------------------- checkpoints
    def maybe_checkpoint(self, sequence: int, now_ms: float) -> None:
        interval = self.config.checkpoint_interval
        if interval <= 0 or (sequence + 1) % interval != 0:
            return
        state_digest = self.executor.state_digest()
        self.charge(CryptoOp.HASH)
        self.charge(CryptoOp.MAC_SIGN, self._fanout)
        # Journal the digest this replica itself computed at the boundary:
        # if the quorum stabilises (or already stabilised) a *different*
        # digest for the same height, this replica executed a wrong batch
        # and must repair.
        self._journal_boundary_state(sequence, state_digest)
        vouched_digest = self._expected_transfer_digest(sequence)
        if vouched_digest is not None and vouched_digest != state_digest:
            # Executing through a boundary the quorum already settled,
            # with different state: divergence introduced *after* the
            # checkpoint stabilised (e.g. a forged history adopted during
            # a view change) — same-height repair, not a lagging replica.
            self._begin_divergence_repair(sequence, now_ms)
        message = CheckpointMessage(
            sequence=sequence, state_digest=state_digest, replica_id=self.node_id
        )
        self.broadcast(message)
        self._record_checkpoint_vote(sequence, state_digest, self.node_id, now_ms)
        gate = self._epoch_gate
        if gate is not None and sequence >= gate and self._pending_epochs:
            # The boundary's own vote (just broadcast) still counts under
            # the old epoch; everything after this point is governed by
            # the new one.
            self._activate_epochs(sequence, now_ms)

    def handle_checkpoint_message(self, sender: str, message: CheckpointMessage,
                                  now_ms: float) -> None:
        self.charge(CryptoOp.MAC_VERIFY)
        # Transport-level sender, not the spoofable message.replica_id: one
        # Byzantine replica must not push a checkpoint to stability alone.
        self._record_checkpoint_vote(message.sequence, message.state_digest,
                                     sender, now_ms)
        self._track_remote_checkpoint(message.sequence, message.state_digest,
                                      sender, now_ms)

    def _track_remote_checkpoint(self, sequence: int, state_digest: bytes,
                                 voter: str, now_ms: float) -> None:
        """Detect that this replica has fallen behind the rest of the system.

        ``f + 1`` matching checkpoint votes from other replicas prove that
        at least one non-faulty replica reached *sequence*; a replica that
        is behind that point (e.g. kept in the dark by the primary)
        requests a state transfer from one of the voters.
        """
        if voter == self.node_id or sequence <= self.checkpoints.stable_sequence:
            return
        key = (sequence, state_digest)
        voters = self._remote_checkpoint_votes.get(key)
        if voters is None:
            voters = self._remote_checkpoint_votes[key] = VoteSet(self._vote_index)
        voters.add(voter)
        if voters.count < self._f_plus_1:
            return
        # f + 1 distinct senders vouch for (sequence, digest): at least one
        # non-faulty replica computed it, so it is safe to install.
        self._mark_checkpoint_digest_verified(sequence, state_digest, now_ms)
        if sequence <= self.last_executed_sequence:
            return
        if sequence <= self._state_transfer_requested_upto:
            return
        self._state_transfer_requested_upto = sequence
        self.send(voter, StateTransferRequest(sequence=sequence,
                                              replica_id=self.node_id))
        for key in [k for k in self._remote_checkpoint_votes if k[0] <= sequence]:
            del self._remote_checkpoint_votes[key]

    def _mark_checkpoint_digest_verified(self, sequence: int,
                                         state_digest: bytes,
                                         now_ms: float) -> None:
        """Record a vouched digest and drain any transfer parked on it."""
        if sequence not in self._verified_checkpoint_digests:
            self._verified_checkpoint_digests[sequence] = state_digest
            prune_to_last(self._verified_checkpoint_digests,
                          CheckpointTracker.STABLE_DIGEST_HISTORY)
        pending = self._pending_state_transfers.pop(sequence, None)
        if pending is not None:
            self.handle_state_transfer_response("", pending, now_ms)

    def _record_checkpoint_vote(self, sequence: int, state_digest: bytes,
                                replica_id: str, now_ms: float) -> None:
        stable = self.checkpoints.record_vote(sequence, state_digest, replica_id)
        if stable is not None:
            self.executor.prune_before(stable)
            for key in [k for k in self._remote_checkpoint_votes
                        if k[0] <= stable]:
                del self._remote_checkpoint_votes[key]
            stable_digest = self.checkpoints.stable_digest(stable)
            if stable_digest is not None:
                self._mark_checkpoint_digest_verified(stable, stable_digest,
                                                      now_ms)
            own_digest = self._own_checkpoint_digests.get(stable)
            if stable > self.last_executed_sequence and replica_id != self.node_id:
                # The system proved progress this replica has not made: it
                # was kept in the dark (or lost messages) and needs the
                # checkpointed state from an up-to-date peer.
                self.send(replica_id, StateTransferRequest(
                    sequence=stable, replica_id=self.node_id))
            elif (own_digest is not None and stable_digest is not None
                    and own_digest != stable_digest):
                # Same height, different state: this replica executed a
                # wrong batch somewhere behind the stable checkpoint.  Being
                # "caught up" is no defence — start a same-height repair.
                self._begin_divergence_repair(stable, now_ms)
            self.on_stable_checkpoint(stable, now_ms)

    def readvertise_stable_checkpoint(self) -> None:
        """Re-broadcast this replica's vote for its stable checkpoint.

        Checkpoint votes are broadcast exactly once, at the boundary; a
        replica partitioned away at that moment misses them forever and
        afterwards can neither validate a state transfer nor learn that it
        should request one.  PBFT closes this hole by carrying the stable
        checkpoint's proof inside view-change messages; the equivalent
        here is re-advertising the vote whenever a view change completes,
        so recovery (the one time a dark replica is guaranteed to be
        listening again) always re-establishes the transfer baseline.
        """
        stable = self.checkpoints.stable_sequence
        if stable < 0:
            return
        state_digest = self._own_checkpoint_digests.get(stable)
        if state_digest is None:
            return
        self.charge(CryptoOp.MAC_SIGN, self._fanout)
        self.broadcast(CheckpointMessage(
            sequence=stable, state_digest=state_digest,
            replica_id=self.node_id))

    def _journal_boundary_state(self, sequence: int, state_digest: bytes) -> None:
        """Journal digest (and, when applying, table state) at a boundary."""
        self._own_checkpoint_digests[sequence] = state_digest
        prune_to_last(self._own_checkpoint_digests,
                      CheckpointTracker.STABLE_DIGEST_HISTORY)
        self._checkpoint_head_hashes[sequence] = self.blockchain.head.block_hash
        prune_to_last(self._checkpoint_head_hashes,
                      CheckpointTracker.STABLE_DIGEST_HISTORY)
        if self.config.execute_operations:
            self._checkpoint_snapshots[sequence] = self.store.snapshot()
            prune_to_last(self._checkpoint_snapshots, 4)

    def _begin_divergence_repair(self, stable: int, now_ms: float) -> None:
        """This replica's state at *stable* contradicts the quorum: repair.

        The divergent suffix starts right after the highest earlier
        checkpoint this replica still agreed with the quorum on; everything
        above that point is excised and replaced by a (digest-validated)
        transferred checkpoint.  The request is broadcast so any honest
        up-to-date peer can serve it.
        """
        if self._repair_divergent_from is not None:
            return
        last_agreed = -1
        for sequence in sorted(self.checkpoints.stable_digests, reverse=True):
            if sequence >= stable:
                continue
            own = self._own_checkpoint_digests.get(sequence)
            if own is not None and own == self.checkpoints.stable_digests[sequence]:
                last_agreed = sequence
                break
        self._repair_divergent_from = last_agreed + 1
        self.repair_log.append((last_agreed + 1, stable))
        self.broadcast(StateTransferRequest(sequence=stable,
                                            replica_id=self.node_id))

    #: Checkpoint intervals of reply/dedup state retained *behind* the
    #: stable checkpoint.  Replies for a completed batch are never
    #: requested again once the client pool completed it, but in-flight
    #: duplicates (delayed or replayed requests) may still arrive a little
    #: late; one full retention window bounds how late while keeping the
    #: maps O(window), not O(history).
    REPLY_RETENTION_INTERVALS = 2

    #: Reply/dedup state also ages out in *time*, not just sequence
    #: distance: a burst can sink a batch far below the stable checkpoint
    #: within milliseconds, while the client that lost the reply only
    #: retransmits after its timeout (backed off up to 2**4 timeouts in
    #: :class:`~repro.workload.clients.ClientPool`).  Pruning the stored
    #: reply before that retransmission lands would make the primary
    #: re-propose an executed batch.  2**5 covers the maximum client
    #: backoff with a 2x margin; memory stays bounded by throughput x
    #: this window, independent of run length.
    REPLY_RETENTION_TIMEOUTS = 2 ** 5

    def on_stable_checkpoint(self, sequence: int, now_ms: float) -> None:
        """Hook invoked when a checkpoint becomes stable.

        The base implementation garbage-collects bookkeeping the stable
        checkpoint supersedes, so long-horizon (soak) runs stay bounded by
        the checkpoint window instead of growing with run length.
        Protocol overrides must call ``super()``.
        """
        horizon = sequence - (self.config.checkpoint_interval
                              * self.REPLY_RETENTION_INTERVALS)
        age_ms = self.config.request_timeout_ms * self.REPLY_RETENTION_TIMEOUTS
        if horizon >= 0:
            batch_sequence = self._batch_sequence
            for batch_id in [
                    b for b, (s, executed_at) in batch_sequence.items()
                    if s <= horizon and now_ms - executed_at >= age_ms]:
                del batch_sequence[batch_id]
                self._replied.pop(batch_id, None)
                self._reply_targets.pop(batch_id, None)
                self._seen_batch_ids.discard(batch_id)
        for stale in [s for s in self._committed if s <= sequence]:
            del self._committed[stale]
        for stale in [s for s in self._transfer_rerequested if s <= sequence]:
            self._transfer_rerequested.discard(stale)
        for stale in [s for s in self._pending_state_transfers
                      if s <= sequence]:
            del self._pending_state_transfers[stale]

    # ------------------------------------------------- epochs / reconfiguration
    def _known_epoch(self) -> int:
        """Highest epoch this replica has committed (active or pending)."""
        pending = self._pending_epochs
        if pending:
            highest = max(pending)
            return highest if highest > self.epoch else self.epoch
        return self.epoch

    def _execute_reconfig(self, slot: CommittedSlot, now_ms: float) -> None:
        """Admit or refuse a committed :class:`ReconfigRecord`.

        A valid record registers a pending epoch that activates at the
        next checkpoint boundary; an invalid one (a Byzantine proposer
        *can* get an unsafe resize ordered) commits as a no-op and is
        journaled in ``reconfig_refusals``.  Either way the epoch gate is
        recomputed, so a gate set eagerly at proposal time never outlives
        the record that justified it.
        """
        record: ReconfigRecord = slot.batch
        config = self.config
        base_epoch = self._known_epoch()
        ok, reason = reconfig_record_valid(
            record, base_epoch, config.membership(base_epoch))
        if ok:
            boundary = activation_boundary(slot.sequence,
                                           config.checkpoint_interval)
            # Two records ordered within one checkpoint interval would
            # otherwise compute the *same* boundary; activations must be
            # strictly increasing, so the later epoch slides to the next
            # boundary.  Deterministic: the predecessor's activation is
            # registered before its successor commits.
            prev_activation = config.epoch_activations.get(base_epoch, -1)
            while boundary <= prev_activation:
                boundary += config.checkpoint_interval
            members = apply_reconfig(config.membership(base_epoch),
                                     record.add, record.remove)
            config.register_epoch(record.new_epoch, boundary, members)
            self._pending_epochs[record.new_epoch] = EpochEntry(
                epoch=record.new_epoch, activation_sequence=boundary,
                members=members, added=record.add, removed=record.remove,
                committed_at=slot.sequence)
        else:
            self.reconfig_refusals.append(
                (slot.sequence, record.batch_id, reason))
        pending = self._pending_epochs
        self._epoch_gate = (min(e.activation_sequence for e in pending.values())
                            if pending else None)

    def _activate_epochs(self, sequence: int, now_ms: float) -> None:
        """Switch into every pending epoch whose boundary is behind us.

        Runs at the activation boundary itself (``maybe_checkpoint``) or
        when a state transfer lands past one.  Activation refreshes every
        cached quorum size, purges an evicted replica's votes from all
        not-yet-certified quorums (its vote must never complete a commit
        in the epoch that removed it), and — when this replica itself was
        removed — halts it at the boundary.
        """
        pending = self._pending_epochs
        config = self.config
        while pending:
            next_epoch = min(pending)
            entry = pending[next_epoch]
            if entry.activation_sequence > sequence:
                break
            del pending[next_epoch]
            prev_members = config.membership(self.epoch)
            self.epoch = next_epoch
            self.epoch_log.append(entry)
            members = entry.members
            self._refresh_epoch_caches(members)
            evicted = tuple(rid for rid in prev_members if rid not in members)
            for rid in evicted:
                self.checkpoints.discard_voter(rid)
                for votes in self._remote_checkpoint_votes.values():
                    votes.discard(rid)
            if self.join_epoch is not None and self.epoch >= self.join_epoch:
                self.join_epoch = None
            self.on_epoch_activated(entry, evicted, now_ms)
            # Only an *evicted* replica halts: one that was a member of
            # the previous epoch and is absent from this one.  A joiner
            # replaying history passes through epochs that predate its
            # admission without being a member of any of them — halting
            # it there would kill every late joiner at catch-up time.
            if self.node_id in evicted:
                self.crashed = True
                break
        self._epoch_gate = (min(e.activation_sequence for e in pending.values())
                            if pending else None)

    def _refresh_epoch_caches(self, members: Tuple[str, ...]) -> None:
        """Re-derive every cached quorum size from the active membership."""
        f_e = (len(members) - 1) // 3
        self._f_plus_1 = f_e + 1
        self._nf_quorum = len(members) - f_e
        self._fanout = len(members) - 1
        checkpoints = self.checkpoints
        checkpoints.quorum = 2 * f_e + 1
        if checkpoints.quorum_fn is None:
            # From now on checkpoint stability is judged per-sequence:
            # votes for an old-epoch boundary stay held to the old
            # epoch's quorum even after the membership resized.
            checkpoints.quorum_fn = self._checkpoint_quorum_for

    def _checkpoint_quorum_for(self, sequence: int) -> int:
        config = self.config
        return config.quorum_of(config.epoch_of_sequence(sequence))

    def on_epoch_activated(self, entry: EpochEntry, evicted: Tuple[str, ...],
                           now_ms: float) -> None:
        """Hook: a new epoch's membership just took effect.

        Protocol subclasses refresh their own cached quorum sizes and
        purge evicted voters from protocol-level vote sets; cooperative
        overrides must call ``super()``.
        """

    def _epoch_log_wire(self, sequence: int) -> Tuple[Tuple, ...]:
        """Wire form of every non-genesis epoch committed by *sequence*."""
        if not self.config.reconfigured:
            return ()
        entries = [e for e in self.epoch_log if e.epoch > 0]
        entries.extend(self._pending_epochs.values())
        return tuple(e.as_wire() for e in sorted(entries, key=lambda e: e.epoch)
                     if e.committed_at <= sequence)

    def _adopt_epoch_log(self, wire_entries: Tuple[Tuple, ...],
                         upto_sequence: int, now_ms: float) -> None:
        """Adopt committed epochs carried by a vouched state transfer.

        A joiner (or a replica fast-forwarded over the slots that carried
        the reconfiguration records) learns the epochs it skipped from
        here.  Entries are validated against the shared registered
        schedule — written only by committed, admission-checked records —
        so a lying sender cannot smuggle an epoch consensus never agreed
        on.
        """
        if not wire_entries:
            return
        config = self.config
        known = self._known_epoch()
        adopted = False
        for wire in wire_entries:
            entry = EpochEntry.from_wire(wire)
            if entry.epoch <= known:
                continue
            if config.epoch_memberships.get(entry.epoch) != entry.members:
                continue
            if config.epoch_activations.get(entry.epoch) != entry.activation_sequence:
                continue
            self._pending_epochs[entry.epoch] = entry
            known = entry.epoch
            adopted = True
        if adopted:
            pending = self._pending_epochs
            self._epoch_gate = min(e.activation_sequence
                                   for e in pending.values())
            self._activate_epochs(upto_sequence, now_ms)

    # ------------------------------------------------------------ state transfer
    def handle_state_transfer_request(self, sender: str,
                                      message: StateTransferRequest,
                                      now_ms: float) -> None:
        """Ship checkpointed state to a lagging replica.

        The response carries the state *as of the stable checkpoint* —
        the digest and snapshot journaled when this replica executed
        through that boundary — not the replica's current (still moving)
        state: receivers validate the digest against the checkpoint votes
        for exactly that height, so the shipped pair must be the one the
        quorum vouched for.
        """
        sequence = self.checkpoints.stable_sequence
        if sequence < 0 or sequence < message.sequence:
            return
        if self.last_executed_sequence < sequence:
            return  # knows of the checkpoint but cannot produce its state
        state_digest = self._own_checkpoint_digests.get(sequence)
        if state_digest is None:
            return
        snapshot = (self._checkpoint_snapshots.get(sequence)
                    if self.config.execute_operations else None)
        size = self.config.proposal_size_bytes(
            self.config.batch_size * self.config.checkpoint_interval)
        self.charge(CryptoOp.HASH)
        self.send(sender, StateTransferResponse(
            sequence=sequence, view=self.transfer_view(sequence),
            state_digest=state_digest,
            table_snapshot=snapshot, size_bytes=size,
            head_hash=self._checkpoint_head_hashes.get(sequence, b""),
            executed_batch_ids=tuple(
                (batch_id, seq)
                for batch_id, (seq, _) in self._batch_sequence.items()
                if seq <= sequence
            ),
            epoch_log=self._epoch_log_wire(sequence),
        ))

    def transfer_view(self, sequence: int) -> int:
        """View shipped with a state transfer covering *sequence*.

        Rotating-leader protocols override this: their ``self.view`` does
        not track consensus progress, so they report the round of the block
        at the transferred sequence instead.
        """
        return self.view

    def handle_state_transfer_response(self, sender: str,
                                       message: StateTransferResponse,
                                       now_ms: float) -> None:
        """Install transferred state — once its digest is quorum-vouched.

        A response is only applied when its ``(sequence, state_digest)``
        pair matches a digest this replica verified through checkpoint
        votes (``f + 1`` distinct senders, or local stability).  A response
        for a height no votes vouch for yet is parked; a response whose
        digest *contradicts* the vouched one is a lying peer and is
        rejected — the transfer is re-requested from the whole membership
        so an honest replica serves it instead.
        """
        repairing = (self._repair_divergent_from is not None
                     and message.sequence >= self._repair_divergent_from)
        if not repairing and message.sequence <= self.last_executed_sequence:
            return
        expected = self._expected_transfer_digest(message.sequence)
        if expected is None:
            self._pending_state_transfers.setdefault(message.sequence, message)
            return
        if expected != message.state_digest \
                or not self._transfer_commitment_holds(message, expected):
            self.state_transfer_rejections += 1
            if message.sequence not in self._transfer_rerequested:
                self._transfer_rerequested.add(message.sequence)
                self.broadcast(StateTransferRequest(
                    sequence=message.sequence, replica_id=self.node_id))
            return
        if repairing:
            divergent_from = self._repair_divergent_from
            self._repair_divergent_from = None
            self.divergence_repairs += 1
            # Excised boundaries reflected wrong state; the installed
            # checkpoint is this replica's state at its height now.
            for stale in [s for s in self._own_checkpoint_digests
                          if s >= divergent_from]:
                del self._own_checkpoint_digests[stale]
            self._own_checkpoint_digests[message.sequence] = message.state_digest
            self.executor.resync(
                sequence=message.sequence, view=message.view,
                state_digest=message.state_digest,
                table_snapshot=message.table_snapshot,
                divergent_from=divergent_from,
                head_hash=message.head_hash or None,
            )
        else:
            self.executor.fast_forward(
                sequence=message.sequence, view=message.view,
                state_digest=message.state_digest,
                table_snapshot=message.table_snapshot,
                head_hash=message.head_hash or None,
            )
        self._journal_boundary_state(message.sequence, message.state_digest)
        self._adopt_epoch_log(message.epoch_log, message.sequence, now_ms)
        self.charge_execution(self.config.batch_size)
        # The digest validated, so the sender's execution records for the
        # vouched prefix are adopted for dedup: slots this replica jumped
        # over consumed these batch ids, and re-proposing them later (as a
        # gap-filling new primary) would double-execute their batches.
        for batch_id, seq in message.executed_batch_ids:
            if seq <= message.sequence:
                self._batch_sequence.setdefault(batch_id, (seq, now_ms))
                self._seen_batch_ids.add(batch_id)
                # Learning a forwarded batch was executed stands down the
                # suspicion its progress timer encodes: the primary did
                # serve it, this replica just was not in the loop.
                self.stop_progress_timer(batch_id)
        for stale in [s for s in self._committed if s <= message.sequence]:
            del self._committed[stale]
        for stale in [s for s in self._pending_state_transfers
                      if s <= message.sequence]:
            del self._pending_state_transfers[stale]
        if message.view > self.view:
            self.view = message.view
            self.view_change_in_progress = False
            self.on_transfer_view_adopted(message.view, now_ms)
        self.next_sequence = max(self.next_sequence, message.sequence + 1)
        self.try_execute(now_ms)
        self.replay_deferred(now_ms)

    def _expected_transfer_digest(self, sequence: int) -> Optional[bytes]:
        """The vouched state digest for *sequence*, if any is known."""
        expected = self._verified_checkpoint_digests.get(sequence)
        if expected is None:
            expected = self.checkpoints.stable_digest(sequence)
        return expected

    def _transfer_commitment_holds(self, message: StateTransferResponse,
                                   vouched_digest: bytes) -> bool:
        """Check that the vouched digest really commits to the shipped state.

        The checkpoint state digest is
        ``digest("state", sequence, head_hash, snapshot_digest)`` — a
        response whose ``head_hash`` or ``table_snapshot`` was tampered
        with while keeping the genuine (publicly broadcast) digest must
        not install: the receiver would adopt a forged chain head or a
        poisoned table under a digest the quorum never computed over
        them.
        """
        if self.config.execute_operations:
            snapshot_digest = digest(
                "store", sorted((message.table_snapshot or {}).items()))
        else:
            snapshot_digest = b""
        recomputed = digest("state", message.sequence, message.head_hash,
                            snapshot_digest)
        return recomputed == vouched_digest

    def on_transfer_view_adopted(self, view: int, now_ms: float) -> None:
        """Hook invoked when a state transfer advanced this replica's view.

        Protocols with a view-change engine override this to mark *view*
        entered and disarm any pending view-change retry timer (see
        :class:`~repro.protocols.recovery.ViewChangeRecovery`).
        """

    # ------------------------------------------------------------ progress timers
    def start_progress_timer(self, batch_id: str, now_ms: float) -> None:
        """Arm the timer that detects a primary failing to make progress.

        A batch with a known execution record (replied locally, or learned
        executed through a state-transfer merge) is not grounds for primary
        suspicion: the primary already served it, however the client is
        faring with its evidence collection.  Retransmissions of such
        batches must not re-arm the timer — a replica that keeps suspecting
        over served batches escalates view changes nobody joins and drifts
        itself out of the quorum's view.
        """
        if batch_id in self._progress_timers or batch_id in self._replied \
                or batch_id in self._batch_sequence:
            return
        if self.join_epoch is not None and self.epoch < self.join_epoch:
            # Still bootstrapping into the epoch that admits this replica:
            # it has no standing to suspect the primary yet.
            return
        self._progress_timers.add(batch_id)
        self.set_timer(f"progress:{batch_id}", self.config.request_timeout_ms,
                       payload=batch_id)

    def stop_progress_timer(self, batch_id: str) -> None:
        if batch_id in self._progress_timers:
            self._progress_timers.discard(batch_id)
            self.cancel_timer(f"progress:{batch_id}")
        self._forwarded_requests.pop(batch_id, None)

    def has_unserved_forwarded_requests(self) -> bool:
        """Whether any forwarded request is still awaiting service.

        Grounds for (continued) primary suspicion: a batch this replica
        relayed that has neither been replied to nor learned executed.
        """
        return any(batch_id not in self._replied
                   and batch_id not in self._batch_sequence
                   for batch_id in self._forwarded_requests)

    def refresh_pending_requests(self, now_ms: float) -> None:
        """Re-forward pending requests to the (new) primary and restart timers.

        Called when a replica enters a new view: the new primary gets a
        full timeout before it, too, is suspected, and it immediately
        learns about every request the old primary failed to handle.
        """
        pending = {
            batch_id: message
            for batch_id, message in self._forwarded_requests.items()
            if batch_id not in self._replied
            and batch_id not in self._batch_sequence
        }
        for batch_id in list(self._progress_timers):
            self._progress_timers.discard(batch_id)
            self.cancel_timer(f"progress:{batch_id}")
        # A new primary whose adopted prefix has gaps (certified slots it
        # cannot execute yet) must not re-propose forwarded batches: it
        # cannot tell which of them the missing slots already consumed.
        # Park them behind fresh progress timers and retry once the gap
        # fills (state transfer or late certificates) — see try_execute.
        gapped = self.is_primary() and self.in_flight() > 0
        if gapped:
            self._refresh_parked = True
        for batch_id, message in pending.items():
            if self.is_primary() and not gapped:
                self.enqueue_batch(message.batch, now_ms)
            elif not self.is_primary():
                self.send(self.primary_id, message)
            self.start_progress_timer(batch_id, now_ms)
        if self.is_primary():
            self.maybe_propose(now_ms)

    def on_timer(self, name: str, payload, now_ms: float) -> None:
        if name.startswith("progress:"):
            batch_id = payload
            self._progress_timers.discard(batch_id)
            if batch_id not in self._replied:
                self.on_progress_timeout(batch_id, now_ms)
        else:
            self.on_protocol_timer(name, payload, now_ms)

    def on_progress_timeout(self, batch_id: str, now_ms: float) -> None:
        """Hook invoked when the primary failed to execute a request in time."""

    def on_protocol_timer(self, name: str, payload, now_ms: float) -> None:
        """Hook for protocol-specific timers."""


#: ``BatchingReplica.on_message`` as defined at import time; the fused
#: ``deliver_into`` is only used when a subclass leaves it untouched.
_BATCHING_ON_MESSAGE = BatchingReplica.on_message
