"""SBFT baseline: linearised twin-path BFT with collector and executor.

SBFT linearises each of PBFT's phases through threshold signatures, which
yields five linear phases in the fast path (Section IV-A of the paper):

1. the primary broadcasts a PRE-PREPARE with the batch;
2. replicas send a signature share to the *collector*;
3. the collector aggregates the shares and broadcasts a full commit proof;
4. replicas execute and send a second signature share to the *executor*;
5. the executor aggregates and broadcasts an execute acknowledgement that
   also answers the client (one aggregated reply instead of n).

The fast path expects shares from **all** ``n`` replicas (or ``3f+2c+1``
replicas when ``c`` crash failures should be tolerated); if the collector
times out it falls back to a slow path that needs two additional linear
phases.  With a single crashed backup the collector times out on every
slot, which is why SBFT loses throughput under failures — though less
dramatically than Zyzzyva, because the primary keeps proposing
out-of-order while collectors wait.

A faulty *primary* is recovered from through the shared view-change
engine (:class:`~repro.protocols.recovery.ViewChangeRecovery`): replicas
broadcast VIEW-CHANGE requests carrying their commit-proof-certified
slots, the primary of the next view combines ``2f + 1`` of them into a
NEW-VIEW, and entering the view rotates collector and executor along with
the primary (both roles are derived from the view number).  Because every
executed slot carries a threshold commit proof, view-change requests are
third-party verifiable — unlike Zyzzyva's purely speculative histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.view_change import longest_consecutive_prefix
from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.hashing import digest
from repro.crypto.threshold import ThresholdError
from repro.protocols.base import Message, NodeConfig, ProtocolInfo
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.recovery import ViewChangeRecovery
from repro.protocols.replica_base import BatchingReplica, CommittedSlot
from repro.workload.clients import BatchSource, ClientPool
from repro.workload.transactions import RequestBatch


def sbft_proposal_digest(view: int, sequence: int, batch: RequestBatch) -> bytes:
    """The digest replicas sign shares over for slot (*view*, *sequence*)."""
    return digest("sbft", view, sequence, batch.digest())


@dataclass
class SbftPrePrepare(Message):
    """PRE-PREPARE(v, k, batch) broadcast by the primary."""

    view: int = 0
    sequence: int = 0
    batch: RequestBatch = None


@dataclass
class SbftSignShare(Message):
    """A replica's signature share sent to the collector (phase 2)."""

    view: int = 0
    sequence: int = 0
    proposal_digest: bytes = b""
    share: object = None
    replica_id: str = ""


@dataclass
class SbftCommitProof(Message):
    """The collector's aggregated full-commit proof (phase 3)."""

    view: int = 0
    sequence: int = 0
    proposal_digest: bytes = b""
    certificate: object = None
    slow_path: bool = False


@dataclass
class SbftSignState(Message):
    """A replica's post-execution signature share sent to the executor (phase 4)."""

    view: int = 0
    sequence: int = 0
    batch_id: str = ""
    result_digest: bytes = b""
    share: object = None
    replica_id: str = ""


@dataclass
class SbftExecuteAck(Message):
    """The executor's aggregated execution acknowledgement (phase 5)."""

    view: int = 0
    sequence: int = 0
    batch_id: str = ""
    result_digest: bytes = b""
    certificate: object = None


@dataclass(frozen=True)
class SbftCertifiedSlot:
    """One commit-proof-certified slot carried in a view-change request.

    The certificate is the collector's aggregated threshold signature over
    the slot's proposal digest, so any third party can re-verify it —
    view-change requests need no trust in their sender.
    """

    sequence: int
    view: int
    proposal_digest: bytes
    batch: RequestBatch
    certificate: object = None


@dataclass
class SbftViewChange(Message):
    """VIEW-CHANGE(v, C): a replica asking to replace the primary of view v."""

    view: int = 0
    replica_id: str = ""
    stable_checkpoint: int = -1
    executed: Tuple[SbftCertifiedSlot, ...] = ()


@dataclass
class SbftNewView(Message):
    """NEW-VIEW(v+1, V): the next primary's certified view-change summary."""

    new_view: int = 0
    requests: Tuple[SbftViewChange, ...] = ()


@dataclass(slots=True)
class _SbftSlot:
    """Per (view, sequence) bookkeeping at the collector/executor."""

    batch: Optional[RequestBatch] = None
    proposal_digest: bytes = b""
    commit_shares: Dict[int, object] = field(default_factory=dict)
    state_shares: Dict[int, object] = field(default_factory=dict)
    commit_proof_sent: bool = False
    execute_ack_sent: bool = False
    slow_path: bool = False
    result_digest: bytes = b""


class SbftReplica(ViewChangeRecovery, BatchingReplica):
    """An SBFT replica; the primary doubles as collector, the next replica as executor."""

    PROTOCOL_INFO = ProtocolInfo(
        name="SBFT",
        phases=5,
        messages="O(5n)",
        resilience="0",
        requirements="Twin paths",
    )

    MESSAGE_HANDLERS = {
        SbftPrePrepare: "handle_preprepare",
        SbftSignShare: "handle_sign_share",
        SbftCommitProof: "handle_commit_proof",
        SbftSignState: "handle_sign_state",
        SbftExecuteAck: "handle_execute_ack",
        SbftViewChange: "handle_view_change_message",
        SbftNewView: "handle_new_view_message",
    }

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
        initial_table: Optional[Dict[str, str]] = None,
        collector_timeout_ms: float = 50.0,
    ) -> None:
        super().__init__(node_id, config, authenticator, cost_model, initial_table)
        self.collector_timeout_ms = collector_timeout_ms
        self._slots: Dict[Tuple[int, int], _SbftSlot] = {}
        self._accepted: Dict[Tuple[int, int], bytes] = {}
        #: Slots this replica holds a verified commit proof for; the payload
        #: of its view-change requests.
        self._certified_log: Dict[int, SbftCertifiedSlot] = {}
        #: Collector timers currently armed, by (view, sequence).  Tracked so
        #: advancing the view can cancel the old view's timers instead of
        #: letting stale collector timeouts fire after rotation.
        self._collector_timers: Set[Tuple[int, int]] = set()
        self.slow_path_slots = 0
        self.init_view_change()

    # ------------------------------------------------------------------ roles
    @property
    def collector_id(self) -> str:
        """The collector of the current view (the primary, per SBFT's default)."""
        return self.primary_id

    @property
    def executor_id(self) -> str:
        """The executor of the current view (the replica after the primary)."""
        return self.primary_for_view(self.view + 1)

    def _slot(self, view: int, sequence: int) -> _SbftSlot:
        # get-then-insert: setdefault would construct a throwaway slot
        # (plus two share dicts) on every share/proof delivery.
        key = (view, sequence)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = _SbftSlot()
        return slot

    # ---------------------------------------------------------------- proposing
    def create_proposal(self, sequence: int, batch: RequestBatch, now_ms: float) -> None:
        proposal_digest = sbft_proposal_digest(self.view, sequence, batch)
        self.charge(CryptoOp.HASH)
        slot = self._slot(self.view, sequence)
        slot.batch = batch
        slot.proposal_digest = proposal_digest
        self._accepted[(self.view, sequence)] = proposal_digest
        self.broadcast(SbftPrePrepare(
            view=self.view, sequence=sequence, batch=batch,
            size_bytes=self.config.proposal_size_bytes(len(batch)),
        ))
        # The primary contributes its own share and, as collector, arms the
        # fast-path timer for this slot.
        self.charge(CryptoOp.THRESHOLD_SHARE)
        share = self.auth.threshold_share(proposal_digest)
        slot.commit_shares[share.index] = share
        self._collector_timers.add((self.view, sequence))
        self.set_timer(f"collector:{self.view}:{sequence}", self.collector_timeout_ms,
                       payload=(self.view, sequence))

    # ---------------------------------------------------------------- messages
    def handle_preprepare(self, sender: str, message: SbftPrePrepare,
                          now_ms: float) -> None:
        if message.view > self.view:
            # The new primary's first proposals can overtake the NEW-VIEW
            # message on the wire; buffer them until this replica catches up.
            self.defer_message(message.view, sender, message)
            return
        if self.view_change_in_progress:
            return
        if message.view != self.view or sender != self.primary_id:
            return
        key = (message.view, message.sequence)
        if key in self._accepted:
            return
        self.charge(CryptoOp.MAC_VERIFY)
        self.charge(CryptoOp.HASH)
        proposal_digest = sbft_proposal_digest(message.view, message.sequence,
                                               message.batch)
        self._accepted[key] = proposal_digest
        slot = self._slot(message.view, message.sequence)
        slot.batch = message.batch
        slot.proposal_digest = proposal_digest
        if message.batch.reply_to:
            self._reply_targets.setdefault(message.batch.batch_id,
                                           message.batch.reply_to)
        self.charge(CryptoOp.THRESHOLD_SHARE)
        share = self.auth.threshold_share(proposal_digest)
        self.send(self.collector_id, SbftSignShare(
            view=message.view, sequence=message.sequence,
            proposal_digest=proposal_digest, share=share, replica_id=self.node_id,
        ))

    def handle_sign_share(self, sender: str, message: SbftSignShare,
                          now_ms: float) -> None:
        """Collector: aggregate shares; fast path needs all n of them."""
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view or self.node_id != self.collector_id:
            return
        slot = self._slot(message.view, message.sequence)
        if slot.commit_proof_sent or message.share is None:
            return
        if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
            return
        # Share verification is deferred to aggregation (see PoeReplica).
        if not self.auth.threshold_verify_share(message.share, slot.proposal_digest):
            return
        slot.commit_shares[message.share.index] = message.share
        fast_quorum = self._fanout + 1  # all n of the current epoch
        if len(slot.commit_shares) >= fast_quorum:
            self._send_commit_proof(message.view, message.sequence, slot,
                                    slow_path=False, now_ms=now_ms)
        elif slot.slow_path and len(slot.commit_shares) >= self._nf_quorum:
            self._send_commit_proof(message.view, message.sequence, slot,
                                    slow_path=True, now_ms=now_ms)

    def _send_commit_proof(self, view: int, sequence: int, slot: _SbftSlot,
                           slow_path: bool, now_ms: float) -> None:
        self.charge(CryptoOp.THRESHOLD_AGGREGATE)
        try:
            certificate = self.auth.threshold_aggregate(
                list(slot.commit_shares.values())[: self._nf_quorum])
        except ThresholdError:
            return
        slot.commit_proof_sent = True
        slot.slow_path = slow_path
        if slow_path:
            self.slow_path_slots += 1
            # The slow path costs two additional linear phases; model their
            # latency by charging the collector an extra round of signing
            # and by flagging the proof so replicas charge the extra
            # verification round as well.
            self.charge(CryptoOp.THRESHOLD_SHARE)
            self.charge(CryptoOp.THRESHOLD_AGGREGATE)
        self._collector_timers.discard((view, sequence))
        self.cancel_timer(f"collector:{view}:{sequence}")
        self.broadcast(SbftCommitProof(
            view=view, sequence=sequence, proposal_digest=slot.proposal_digest,
            certificate=certificate, slow_path=slow_path,
        ), include_self=True)

    def handle_commit_proof(self, sender: str, message: SbftCommitProof,
                            now_ms: float) -> None:
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view or sender != self.collector_id:
            return
        slot = self._slot(message.view, message.sequence)
        if slot.batch is None:
            return
        self.charge(CryptoOp.THRESHOLD_VERIFY)
        if message.slow_path:
            # Extra verification round of the slow path.
            self.charge(CryptoOp.THRESHOLD_SHARE)
            self.charge(CryptoOp.THRESHOLD_VERIFY)
        if message.certificate is None or not self.auth.threshold_verify(
                message.certificate, slot.proposal_digest):
            return
        # The verified commit proof makes this slot certifiable to third
        # parties: log it for view-change requests.
        self._certified_log[message.sequence] = SbftCertifiedSlot(
            sequence=message.sequence, view=message.view,
            proposal_digest=slot.proposal_digest, batch=slot.batch,
            certificate=message.certificate,
        )
        self.commit_slot(sequence=message.sequence, view=message.view,
                         batch=slot.batch, proof=message.certificate,
                         now_ms=now_ms, speculative=False)

    # -- execution: replicas send state shares to the executor -------------------
    def send_replies(self, slot: CommittedSlot, record, now_ms: float) -> None:
        """Instead of replying to the client, send a state share to the executor."""
        sbft_slot = self._slot(slot.view, slot.sequence)
        sbft_slot.result_digest = record.result_digest
        self._replied[slot.batch.batch_id] = ClientReplyMessage(
            batch_id=slot.batch.batch_id, view=slot.view, sequence=slot.sequence,
            result_digest=record.result_digest, replica_id=self.node_id,
        )
        self.stop_progress_timer(slot.batch.batch_id)
        self.charge(CryptoOp.THRESHOLD_SHARE)
        share = self.auth.threshold_share(record.result_digest)
        message = SbftSignState(
            view=slot.view, sequence=slot.sequence, batch_id=slot.batch.batch_id,
            result_digest=record.result_digest, share=share, replica_id=self.node_id,
        )
        if self.node_id == self.executor_id:
            self.handle_sign_state(self.node_id, message, now_ms)
        else:
            self.send(self.executor_id, message)

    def handle_sign_state(self, sender: str, message: SbftSignState,
                          now_ms: float) -> None:
        """Executor: aggregate f+1 state shares and broadcast the execute ack."""
        if message.view > self.view:
            self.defer_message(message.view, sender, message)
            return
        if message.view != self.view or self.node_id != self.executor_id:
            return
        slot = self._slot(message.view, message.sequence)
        if slot.execute_ack_sent or message.share is None:
            return
        # Share verification is deferred to aggregation (see PoeReplica).
        if not self.auth.threshold_verify_share(message.share, message.result_digest):
            return
        slot.state_shares[message.share.index] = message.share
        if len(slot.state_shares) < self._nf_quorum:
            return
        self.charge(CryptoOp.THRESHOLD_AGGREGATE)
        try:
            certificate = self.auth.threshold_aggregate(slot.state_shares.values())
        except ThresholdError:
            return
        slot.execute_ack_sent = True
        ack = SbftExecuteAck(
            view=message.view, sequence=message.sequence, batch_id=message.batch_id,
            result_digest=message.result_digest, certificate=certificate,
            size_bytes=self.config.reply_size_bytes(
                len(slot.batch) if slot.batch else self.config.batch_size),
        )
        self.broadcast(ack)
        reply_to = self._reply_targets.get(message.batch_id)
        if slot.batch is not None and not reply_to:
            reply_to = slot.batch.reply_to
        if reply_to:
            self.send(reply_to, ClientReplyMessage(
                batch_id=message.batch_id, view=message.view,
                sequence=message.sequence, result_digest=message.result_digest,
                replica_id=self.node_id, extra=certificate,
                size_bytes=ack.size_bytes,
            ))

    def handle_execute_ack(self, sender: str, message: SbftExecuteAck,
                           now_ms: float) -> None:
        self.charge(CryptoOp.THRESHOLD_VERIFY)

    # ----------------------------------------------------------------- epochs
    def on_epoch_activated(self, entry, evicted, now_ms: float) -> None:
        super().on_epoch_activated(entry, evicted, now_ms)
        if not evicted:
            return
        # Without threshold re-keying an evicted replica's share would still
        # aggregate into a valid certificate; purge its shares from slots
        # that have not certified yet (share index = membership position + 1).
        config = self.config
        dead = {config.replica_index(rid) + 1 for rid in evicted
                if rid in config.replica_index_map}
        for slot in self._slots.values():
            if not slot.commit_proof_sent:
                for index in dead:
                    slot.commit_shares.pop(index, None)
            if not slot.execute_ack_sent:
                for index in dead:
                    slot.state_shares.pop(index, None)

    # ------------------------------------------------------------- view change
    # Generic machinery in ViewChangeRecovery; SBFT's requests carry its
    # threshold-certified slots, and entering a view rotates the collector
    # and executor (both derive from the view number).

    def build_view_change_request(self, view: int) -> SbftViewChange:
        executed = tuple(
            self._certified_log[seq]
            for seq in sorted(self._certified_log)
            if seq > self.checkpoints.stable_sequence
            and seq <= self.last_executed_sequence
        )
        return SbftViewChange(
            view=view, replica_id=self.node_id,
            stable_checkpoint=self.checkpoints.stable_sequence,
            executed=executed,
            size_bytes=self.config.proposal_size_bytes(
                sum(len(entry.batch) for entry in executed)
            ),
        )

    def validate_view_change_request_message(self, request: SbftViewChange,
                                             view: int) -> bool:
        """Certified slots are threshold signatures: re-verify every one.

        Entries must form a consecutive run starting right after the
        sender's stable checkpoint, each carrying a commit proof for the
        recomputed proposal digest — the same admission rule PoE applies
        to its VC-REQUESTs (paper, Figure 5 preconditions).
        """
        if request.view != view:
            return False
        expected_sequence = request.stable_checkpoint + 1
        for entry in request.executed:
            if entry.sequence != expected_sequence:
                return False
            expected_sequence += 1
            expected = sbft_proposal_digest(entry.view, entry.sequence, entry.batch)
            if entry.proposal_digest != expected:
                return False
            self.charge(CryptoOp.THRESHOLD_VERIFY)
            if entry.certificate is None or not self.auth.threshold_verify(
                    entry.certificate, expected):
                return False
        return True

    def make_new_view(self, new_view: int, requests) -> SbftNewView:
        return SbftNewView(new_view=new_view, requests=requests)

    def adopt_new_view(self, proposal: SbftNewView, requests, now_ms: float) -> int:
        """Adopt the longest certified prefix; commit the slots this replica missed.

        SBFT never executes speculatively, so there is nothing to roll
        back; executed slots the admissible requests happen not to cover
        keep ``kmax`` at this replica's executed prefix (same rule as
        PBFT).
        """
        # SBFT admission verifies every entry's threshold commit proof, so
        # certificate-backed entries are trustworthy even on single-request
        # support (sub-checkpoint slots included).
        prefix, kmax = longest_consecutive_prefix(requests, f=self._f_plus_1 - 1,
                                                  trust_certificates=True)
        kmax = max(kmax, self.last_executed_sequence)
        # Evict pending slots the adopted prefix does not cover *before*
        # executing it: a certified-but-unexecuted slot from the old view
        # would otherwise drain right behind the prefix and diverge (the
        # same stale-slot hazard PoE's view change guards against).
        for sequence in [s for s in self._committed if s > kmax or s in prefix]:
            del self._committed[sequence]
        for sequence in sorted(prefix):
            if sequence <= self.last_executed_sequence:
                continue
            entry = prefix[sequence]
            self._certified_log[sequence] = entry
            slot = self._slot(entry.view, entry.sequence)
            slot.batch = entry.batch
            slot.proposal_digest = entry.proposal_digest
            self.commit_slot(sequence=sequence, view=entry.view, batch=entry.batch,
                             proof=entry.certificate, now_ms=now_ms,
                             speculative=False)
        return kmax

    def on_stable_checkpoint(self, sequence: int, now_ms: float) -> None:
        """Prune per-slot consensus state the stable checkpoint supersedes."""
        super().on_stable_checkpoint(sequence, now_ms)
        for key in [k for k in self._slots if k[1] <= sequence]:
            del self._slots[key]
        for key in [k for k in self._accepted if k[1] <= sequence]:
            del self._accepted[key]
        for seq in [s for s in self._certified_log if s <= sequence]:
            del self._certified_log[seq]

    def on_view_entered(self, view: int, now_ms: float) -> None:
        """Rotation epilogue: disarm the previous views' collector timers.

        The collector role moved with the view; a stale timer from the old
        view firing after rotation would re-enter the slow-path logic for
        a slot the old collector no longer owns.
        """
        for key in [k for k in self._collector_timers if k[0] < view]:
            self._collector_timers.discard(key)
            self.cancel_timer(f"collector:{key[0]}:{key[1]}")

    # ---------------------------------------------------------------- timers
    def on_protocol_timer(self, name: str, payload, now_ms: float) -> None:
        if self.handle_view_change_timer(name, payload, now_ms):
            return
        if not name.startswith("collector:"):
            return
        view, sequence = payload
        self._collector_timers.discard((view, sequence))
        if view != self.view or self.node_id != self.collector_id:
            return
        slot = self._slot(view, sequence)
        if slot.commit_proof_sent:
            return
        # Fast path failed: fall back to the slow path, which only needs nf
        # shares (two extra linear phases are charged when the proof is sent).
        slot.slow_path = True
        if len(slot.commit_shares) >= self._nf_quorum:
            self._send_commit_proof(view, sequence, slot, slow_path=True, now_ms=now_ms)


class SbftClientPool(ClientPool):
    """SBFT client pool: one aggregated execute-ack completes a request."""

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        batch_source: Optional[BatchSource] = None,
        target_outstanding: int = 8,
        total_batches: Optional[int] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            config=config,
            batch_source=batch_source,
            completion_quorum=1,
            target_outstanding=target_outstanding,
            total_batches=total_batches,
            timeout_ms=timeout_ms,
        )
