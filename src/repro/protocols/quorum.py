"""Aggregated quorum counting keyed by replica index.

At large ``n`` the MAC-mode protocols deliver O(n²) vote messages per
consensus slot (PoE SUPPORT, PBFT PREPARE/COMMIT, checkpoint votes), and
every delivery used to pay a ``set.add`` on the voter's identifier string
plus a ``len()`` against the quorum.  A :class:`VoteSet` replaces that
with a first-seen *bitset* keyed by replica index — one dict lookup to
resolve the transport-level sender to its index, then pure integer
arithmetic — plus an explicit running count so the quorum check is an
attribute read.

Identity semantics are unchanged and deliberately conservative: voters
are added by their **transport-level sender id** (the rule PR 2 made
load-bearing), duplicates never double-count, and identifiers that do not
resolve to a replica index (spoofed ids replayed by tests, clients,
future reconfiguration members) fall back to an overflow set so nothing
is silently dropped.  Iteration yields the same voter-id strings a plain
``set`` held, so ``frozenset(votes)`` / ``tuple(sorted(votes))`` proof
construction is byte-compatible with the pre-bitset representation.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Set


class VoteSet:
    """First-seen voter bitset with an O(1) distinct-voter count.

    Args:
        index_map: mapping from voter id to a dense replica index.  Voters
            absent from the map are tracked in an overflow set (plain
            ``set`` semantics); pass an empty mapping to get a drop-in
            replacement for ``Set[str]``.
    """

    __slots__ = ("_index", "mask", "count", "extra")

    def __init__(self, index_map: Optional[Mapping[str, int]] = None) -> None:
        self._index = index_map if index_map is not None else {}
        self.mask = 0
        self.count = 0
        self.extra: Optional[Set[str]] = None

    def add(self, voter: str) -> bool:
        """Record *voter*; returns ``True`` iff it was not seen before."""
        index = self._index.get(voter)
        if index is None:
            extra = self.extra
            if extra is None:
                self.extra = {voter}
            elif voter in extra:
                return False
            else:
                extra.add(voter)
            self.count += 1
            return True
        bit = 1 << index
        if self.mask & bit:
            return False
        self.mask |= bit
        self.count += 1
        return True

    def discard(self, voter: str) -> bool:
        """Forget *voter* if present; returns ``True`` iff it was recorded.

        Used when an epoch activates: votes an evicted replica parked on
        not-yet-certified quorums must never count toward a commit in the
        epoch that removed it.
        """
        index = self._index.get(voter)
        if index is None:
            extra = self.extra
            if extra is None or voter not in extra:
                return False
            extra.discard(voter)
            self.count -= 1
            return True
        bit = 1 << index
        if not self.mask & bit:
            return False
        self.mask &= ~bit
        self.count -= 1
        return True

    def __len__(self) -> int:
        return self.count

    def __contains__(self, voter: str) -> bool:
        index = self._index.get(voter)
        if index is None:
            return self.extra is not None and voter in self.extra
        return bool(self.mask & (1 << index))

    def __iter__(self) -> Iterator[str]:
        """Yield voter ids: indexed voters in index order, then overflow."""
        mask = self.mask
        if mask:
            for voter, index in self._index.items():
                if mask & (1 << index):
                    yield voter
        if self.extra:
            yield from self.extra

    def __bool__(self) -> bool:
        return self.count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VoteSet({sorted(self)!r})"


def build_index_map(replica_ids) -> Dict[str, int]:
    """Dense ``voter id -> index`` map in membership order."""
    return {replica_id: index for index, replica_id in enumerate(replica_ids)}
