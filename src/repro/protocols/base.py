"""Sans-IO protocol framework shared by PoE and all baseline protocols.

Every protocol participant (replica or client) is a *state machine* that
never touches the network directly.  A driver — the discrete-event
:class:`~repro.net.network.SimNetwork` or the live asyncio transport —
feeds it three kinds of stimuli and collects the resulting
:class:`StepOutput`:

* :meth:`ProtocolNode.start` when the node boots,
* :meth:`ProtocolNode.deliver` when a message arrives,
* :meth:`ProtocolNode.timer_fired` when a previously requested timer expires.

Handlers express their effects through helper methods (``send``,
``broadcast``, ``set_timer``, ``charge`` …) which append *actions* to the
step and accumulate modelled CPU cost.  Keeping protocols sans-IO is what
lets the same PoE/PBFT/Zyzzyva/SBFT/HotStuff code run deterministically in
benchmarks and live in the asyncio examples, and makes unit-testing a
single replica trivial.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.authenticator import Authenticator
from repro.crypto.cost import CryptoCostModel, CryptoOp

#: Size in bytes of a message that carries no batch payload (paper: ~250 B).
BASE_MESSAGE_SIZE = 250


@dataclass(slots=True)
class Message:
    """Base class for all protocol messages.

    Attributes:
        size_bytes: serialised size used for bandwidth modelling.  Concrete
            messages carrying batches override this at construction time
            (the paper reports 5400 B PROPOSE and 1748 B INFORM messages
            for batches of 100 requests).
    """

    size_bytes: int = field(default=BASE_MESSAGE_SIZE, kw_only=True)

    @property
    def type_name(self) -> str:
        return type(self).__name__


class Action:
    """Marker base class for protocol outputs."""

    __slots__ = ()


@dataclass(slots=True)
class Send(Action):
    """Send *message* to the node identified by *to*."""

    to: str
    message: Message


@dataclass(slots=True)
class Broadcast(Action):
    """Send *message* to every replica (optionally including the sender)."""

    message: Message
    include_self: bool = False


@dataclass(slots=True)
class SetTimer(Action):
    """Arm (or re-arm) the named timer; it fires after *delay_ms*."""

    name: str
    delay_ms: float
    payload: Any = None


@dataclass(slots=True)
class CancelTimer(Action):
    """Cancel the named timer if it is armed."""

    name: str


@dataclass(slots=True)
class StepOutput:
    """Everything one protocol step produced.

    Drivers on the hot path use the allocation-free buffer protocol
    (:meth:`ProtocolNode.deliver_into`) instead; ``StepOutput`` remains
    the convenience envelope returned by :meth:`ProtocolNode.deliver` for
    tests, examples and ad-hoc drivers.

    Attributes:
        actions: ordered network/timer actions.
        cpu_ms: modelled CPU time the step consumed on the node's worker
            thread (the driver serialises steps per node accordingly).
    """

    actions: List[Action] = field(default_factory=list)
    cpu_ms: float = 0.0

    def sends(self) -> List[Send]:
        return [action for action in self.actions if isinstance(action, Send)]

    def broadcasts(self) -> List[Broadcast]:
        return [action for action in self.actions if isinstance(action, Broadcast)]

    def timers(self) -> List[SetTimer]:
        return [action for action in self.actions if isinstance(action, SetTimer)]


@dataclass(frozen=True)
class ProtocolInfo:
    """Static protocol metadata used to regenerate the paper's Figure 1."""

    name: str
    phases: int
    messages: str
    resilience: str
    requirements: str


class _ActionCollector:
    """Mixin implementing the action/CPU accumulation helpers.

    The helpers append to ``self._pending_actions``, which is normally the
    node's own list (drained by :meth:`_collect` into a
    :class:`StepOutput`).  The zero-allocation step path swaps in a
    driver-owned buffer for the duration of one step instead, so the
    common no-op delivery (duplicate vote, late vote after quorum)
    allocates nothing at all.
    """

    def __init__(self) -> None:
        self._pending_actions: List[Action] = []
        self._pending_cpu_ms = 0.0

    # -- helpers available to subclasses --------------------------------------
    def send(self, to: str, message: Message) -> None:
        self._pending_actions.append(Send(to=to, message=message))

    def broadcast(self, message: Message, include_self: bool = False) -> None:
        self._pending_actions.append(Broadcast(message=message, include_self=include_self))

    def set_timer(self, name: str, delay_ms: float, payload: Any = None) -> None:
        self._pending_actions.append(SetTimer(name=name, delay_ms=delay_ms, payload=payload))

    def cancel_timer(self, name: str) -> None:
        self._pending_actions.append(CancelTimer(name=name))

    def add_cpu(self, cost_ms: float) -> None:
        self._pending_cpu_ms += max(0.0, cost_ms)

    def _collect(self) -> StepOutput:
        output = StepOutput(actions=self._pending_actions, cpu_ms=self._pending_cpu_ms)
        self._pending_actions = []
        self._pending_cpu_ms = 0.0
        return output


@dataclass
class NodeConfig:
    """Deployment parameters shared by every protocol node.

    Attributes:
        replica_ids: ordered replica identifiers; index == replica id.
        batch_size: client transactions per consensus slot.
        request_timeout_ms: client/replica timeout before suspecting the
            primary (the paper uses 3 s in the cloud experiments).
        checkpoint_interval: consensus slots between checkpoints.
        base_processing_ms: fixed CPU cost for handling any message
            (queueing, deserialisation) — models the RESILIENTDB pipeline.
        execution_ms_per_txn: modelled CPU cost of executing one YCSB
            transaction.
        execute_operations: if ``True`` the replica really applies
            transactions to its key-value store (tests, examples); if
            ``False`` execution is cost-modelled only (large benchmarks).
        out_of_order: whether the primary may propose slot ``k+1`` before
            slot ``k`` finished (the paper's out-of-order processing).
        max_in_flight: cap on concurrently open slots when out-of-order
            processing is enabled (PBFT's watermark window).
        payload_bytes_per_txn: serialized size contribution of one request
            in a PROPOSE-like message.
        reply_bytes_per_txn: serialized size contribution of one request
            in an INFORM/REPLY-like message.
    """

    replica_ids: Sequence[str]
    batch_size: int = 100
    request_timeout_ms: float = 3000.0
    checkpoint_interval: int = 100
    base_processing_ms: float = 0.008
    execution_ms_per_txn: float = 0.002
    execute_operations: bool = False
    out_of_order: bool = True
    max_in_flight: int = 128
    payload_bytes_per_txn: float = 51.5
    reply_bytes_per_txn: float = 15.0
    zero_payload: bool = False

    def __post_init__(self) -> None:
        # The id -> index map (quorum bitsets key votes by it) makes
        # resolving a transport-level sender one dict lookup, not an O(n)
        # scan.  It only ever grows: reconfiguration appends indices for
        # joiners (register_replica), so live VoteSets — which hold this
        # dict by reference — resolve joiner votes without rebuilding.
        self.replica_index_map: Dict[str, int] = {
            rid: index for index, rid in enumerate(self.replica_ids)
        }
        # Epoch bookkeeping.  Epoch 0 is the boot membership, active from
        # the first sequence.  Committed reconfiguration records register
        # later epochs idempotently (every honest replica executes the
        # same record, so the shared config converges on one schedule).
        # ``reconfigured`` stays False until an epoch beyond 0 is
        # registered — every epoch-aware code path gates on it, so a
        # fixed-membership deployment runs the exact pre-epoch fast path.
        self.epoch_memberships: Dict[int, Tuple[str, ...]] = {
            0: tuple(self.replica_ids)
        }
        self.epoch_activations: Dict[int, int] = {0: -1}
        self.latest_epoch: int = 0
        self.reconfigured: bool = False

    @property
    def n(self) -> int:
        return len(self.replica_ids)

    @property
    def f(self) -> int:
        return (self.n - 1) // 3

    @property
    def nf(self) -> int:
        """The paper's ``nf`` quorum: number of non-faulty replicas assumed."""
        return self.n - self.f

    def primary_of_view(self, view: int) -> str:
        """Identifier of the primary for *view* (``id = view mod n``)."""
        return self.replica_ids[view % self.n]

    def replica_index(self, replica_id: str) -> int:
        return self.replica_index_map[replica_id]

    # -- epoch-indexed membership ------------------------------------------
    def membership(self, epoch: int) -> Tuple[str, ...]:
        """The ordered replica membership of *epoch*."""
        return self.epoch_memberships[epoch]

    def n_of(self, epoch: int) -> int:
        return len(self.epoch_memberships[epoch])

    def f_of(self, epoch: int) -> int:
        return (len(self.epoch_memberships[epoch]) - 1) // 3

    def nf_of(self, epoch: int) -> int:
        members = self.epoch_memberships[epoch]
        return len(members) - (len(members) - 1) // 3

    def quorum_of(self, epoch: int) -> int:
        """The ``2 f + 1`` quorum of *epoch*."""
        return 2 * self.f_of(epoch) + 1

    def primary_of_view_in_epoch(self, view: int, epoch: int) -> str:
        """Primary rotation over the membership of *epoch*."""
        members = self.epoch_memberships[epoch]
        return members[view % len(members)]

    def epoch_of_sequence(self, sequence: int) -> int:
        """The epoch *sequence* belongs to under the registered schedule.

        An epoch activating at boundary ``A`` governs sequences strictly
        greater than ``A`` — the boundary itself (and its checkpoint
        votes) still belongs to the previous epoch.
        """
        if not self.reconfigured:
            return 0
        epoch = 0
        for candidate in range(1, self.latest_epoch + 1):
            if sequence > self.epoch_activations[candidate]:
                epoch = candidate
            else:
                break
        return epoch

    def register_replica(self, replica_id: str) -> int:
        """Ensure *replica_id* has a dense vote index; returns it."""
        index = self.replica_index_map.get(replica_id)
        if index is None:
            index = len(self.replica_index_map)
            self.replica_index_map[replica_id] = index
        return index

    def register_epoch(self, epoch: int, activation_sequence: int,
                       members: Sequence[str]) -> None:
        """Record a committed epoch's membership and activation boundary.

        Idempotent: every honest replica executes the same committed
        record, so repeated registrations carry identical content.
        """
        if epoch in self.epoch_memberships:
            return
        self.epoch_memberships[epoch] = tuple(members)
        self.epoch_activations[epoch] = activation_sequence
        if epoch > self.latest_epoch:
            self.latest_epoch = epoch
        for rid in members:
            self.register_replica(rid)
        self.reconfigured = True

    def proposal_size_bytes(self, num_txns: int) -> int:
        """Serialized size of a proposal carrying *num_txns* transactions."""
        if self.zero_payload:
            return BASE_MESSAGE_SIZE
        return int(BASE_MESSAGE_SIZE + self.payload_bytes_per_txn * num_txns)

    def reply_size_bytes(self, num_txns: int) -> int:
        """Serialized size of a reply/inform message for *num_txns* transactions."""
        if self.zero_payload:
            return BASE_MESSAGE_SIZE
        return int(BASE_MESSAGE_SIZE + self.reply_bytes_per_txn * num_txns)


class ProtocolNode(_ActionCollector, abc.ABC):
    """Base class for replica state machines."""

    #: Subclasses override with their Figure-1 metadata.
    PROTOCOL_INFO: ProtocolInfo = ProtocolInfo(
        name="abstract", phases=0, messages="-", resilience="-", requirements="-"
    )

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        authenticator: Authenticator,
        cost_model: Optional[CryptoCostModel] = None,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.config = config
        self.auth = authenticator
        self.costs = cost_model or CryptoCostModel()
        self.crashed = False
        # The cost model is immutable for the lifetime of a node; flatten it
        # to plain floats so charging (done several times per message) is a
        # dict lookup and a multiply instead of two method calls.
        self._op_cost_ms = {op: self.costs.cost(op) for op in CryptoOp}
        self._base_processing_ms = config.base_processing_ms
        # The MAC-verify charge sits on the n² vote-flood hot path; resolve
        # it to a float once so handlers can add it without the enum lookup.
        self._mac_verify_ms = self._op_cost_ms[CryptoOp.MAC_VERIFY]

    # -- convenience ----------------------------------------------------------
    @property
    def replica_index(self) -> int:
        return self.config.replica_index(self.node_id)

    def charge(self, op: CryptoOp, count: int = 1) -> None:
        """Charge the CPU cost of *count* crypto operations to this step."""
        cost = self._op_cost_ms[op] * count
        if cost > 0.0:
            self._pending_cpu_ms += cost

    def charge_base_processing(self) -> None:
        self._pending_cpu_ms += self._base_processing_ms

    def charge_execution(self, num_txns: int) -> None:
        self.add_cpu(self.config.execution_ms_per_txn * num_txns)

    # -- framework-facing entry points ----------------------------------------
    def start(self, now_ms: float) -> StepOutput:
        """Boot the node."""
        self.on_start(now_ms)
        return self._collect()

    def deliver_into(self, sender: str, message: Message, now_ms: float,
                     actions: List[Action]) -> float:
        """Hot-path delivery: append actions to *actions*, return CPU ms.

        The driver owns (and reuses) the *actions* buffer, so a delivery
        that produces no actions — the dominant case under the MAC-mode
        n² vote floods — allocates nothing.  Semantically identical to
        :meth:`deliver`, which wraps this.
        """
        if self.crashed:
            return 0.0
        own = self._pending_actions
        self._pending_actions = actions
        self._pending_cpu_ms = self._base_processing_ms
        try:
            self.on_message(sender, message, now_ms)
            return self._pending_cpu_ms
        finally:
            self._pending_actions = own
            self._pending_cpu_ms = 0.0

    def timer_fired_into(self, name: str, payload: Any, now_ms: float,
                         actions: List[Action]) -> float:
        """Hot-path timer expiry: append actions to *actions*, return CPU ms."""
        if self.crashed:
            return 0.0
        own = self._pending_actions
        self._pending_actions = actions
        self._pending_cpu_ms = 0.0
        try:
            self.on_timer(name, payload, now_ms)
            return self._pending_cpu_ms
        finally:
            self._pending_actions = own
            self._pending_cpu_ms = 0.0

    def deliver(self, sender: str, message: Message, now_ms: float) -> StepOutput:
        """Deliver *message* from *sender*."""
        output = StepOutput()
        output.cpu_ms = self.deliver_into(sender, message, now_ms, output.actions)
        return output

    def timer_fired(self, name: str, payload: Any, now_ms: float) -> StepOutput:
        """Notify the node that a previously armed timer expired."""
        output = StepOutput()
        output.cpu_ms = self.timer_fired_into(name, payload, now_ms, output.actions)
        return output

    # -- protocol hooks --------------------------------------------------------
    def on_start(self, now_ms: float) -> None:  # pragma: no cover - default no-op
        """Hook invoked once when the node boots."""

    @abc.abstractmethod
    def on_message(self, sender: str, message: Message, now_ms: float) -> None:
        """Handle one delivered message."""

    def on_timer(self, name: str, payload: Any, now_ms: float) -> None:  # pragma: no cover
        """Handle a timer expiry (default: ignore)."""


class ClientNode(_ActionCollector, abc.ABC):
    """Base class for client state machines (single clients and pools)."""

    def __init__(self, node_id: str, config: NodeConfig,
                 authenticator: Optional[Authenticator] = None) -> None:
        super().__init__()
        self.node_id = node_id
        self.config = config
        self.auth = authenticator
        self.crashed = False

    def start(self, now_ms: float) -> StepOutput:
        self.on_start(now_ms)
        return self._collect()

    def deliver_into(self, sender: str, message: Message, now_ms: float,
                     actions: List[Action]) -> float:
        """Hot-path delivery into a driver-owned buffer (clients charge no
        base processing; see :meth:`ProtocolNode.deliver_into`)."""
        if self.crashed:
            return 0.0
        own = self._pending_actions
        self._pending_actions = actions
        self._pending_cpu_ms = 0.0
        try:
            self.on_message(sender, message, now_ms)
            return self._pending_cpu_ms
        finally:
            self._pending_actions = own
            self._pending_cpu_ms = 0.0

    def timer_fired_into(self, name: str, payload: Any, now_ms: float,
                         actions: List[Action]) -> float:
        if self.crashed:
            return 0.0
        own = self._pending_actions
        self._pending_actions = actions
        self._pending_cpu_ms = 0.0
        try:
            self.on_timer(name, payload, now_ms)
            return self._pending_cpu_ms
        finally:
            self._pending_actions = own
            self._pending_cpu_ms = 0.0

    def deliver(self, sender: str, message: Message, now_ms: float) -> StepOutput:
        output = StepOutput()
        output.cpu_ms = self.deliver_into(sender, message, now_ms, output.actions)
        return output

    def timer_fired(self, name: str, payload: Any, now_ms: float) -> StepOutput:
        output = StepOutput()
        output.cpu_ms = self.timer_fired_into(name, payload, now_ms, output.actions)
        return output

    def on_start(self, now_ms: float) -> None:  # pragma: no cover - default no-op
        """Hook invoked once when the client boots."""

    @abc.abstractmethod
    def on_message(self, sender: str, message: Message, now_ms: float) -> None:
        """Handle one delivered message."""

    def on_timer(self, name: str, payload: Any, now_ms: float) -> None:  # pragma: no cover
        """Handle a timer expiry (default: ignore)."""


def quorum_2f_plus_1(config: NodeConfig) -> int:
    """The classic BFT quorum ``2f + 1`` for a configuration."""
    return 2 * config.f + 1


def quorum_nf(config: NodeConfig) -> int:
    """The paper's ``nf = n - f`` quorum."""
    return config.nf
