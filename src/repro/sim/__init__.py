"""Message-delay simulation of consensus throughput (paper, Figure 11).

The paper complements its cloud experiments with a simulation that
processes every message send/receive step but replaces computation with a
fixed message delay, to show that — without out-of-order processing —
throughput is determined purely by the number of communication rounds and
the message delay.  This package reproduces that study.
"""

from repro.sim.delay_model import (
    PROTOCOL_ROUNDS,
    DelaySimulationResult,
    simulate_decisions,
    simulate_out_of_order,
    sweep_delays,
)

__all__ = [
    "PROTOCOL_ROUNDS",
    "DelaySimulationResult",
    "simulate_decisions",
    "simulate_out_of_order",
    "sweep_delays",
]
