"""Round-level message-delay simulation (Figure 11).

The simulation walks through consensus decisions one message round at a
time.  Every message send/receive pair contributes exactly one
pre-determined delay; computation is skipped.  Two modes reproduce the
paper's two observations:

* **sequential** (Figure 11, first three plots): the next consensus
  decision only starts when the previous one finished, so throughput is
  ``1 / (rounds * delay)`` and is independent of the number of replicas;
* **out-of-order** (Figure 11, last plot): a primary-based protocol keeps
  up to ``window`` decisions in flight, so throughput multiplies by
  roughly the window size (the paper observes a factor of ~200 with a
  window of 250 decisions).

Rounds per decision follow the paper's protocol descriptions: PoE and
PBFT need three communication rounds before a decision, chained HotStuff
effectively needs two per decision (one proposal broadcast plus one vote
round, with phases of consecutive decisions overlapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

#: Communication rounds needed per consensus decision.
PROTOCOL_ROUNDS: Dict[str, int] = {
    "poe": 3,
    "pbft": 3,
    "hotstuff": 2,
}


@dataclass(frozen=True)
class DelaySimulationResult:
    """Outcome of one simulated configuration."""

    protocol: str
    num_replicas: int
    message_delay_ms: float
    decisions: int
    out_of_order_window: int
    total_time_ms: float
    throughput_decisions_per_s: float
    messages_processed: int

    def row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.num_replicas,
            "delay_ms": self.message_delay_ms,
            "ooo_window": self.out_of_order_window,
            "decisions_per_s": round(self.throughput_decisions_per_s, 2),
            "messages": self.messages_processed,
        }


def _messages_per_decision(protocol: str, num_replicas: int) -> int:
    """Messages exchanged per decision (for the reported message count)."""
    key = protocol.lower()
    n = num_replicas
    if key == "pbft":
        return n + 2 * n * n
    if key == "poe":
        return 3 * n
    if key == "hotstuff":
        return 2 * n
    raise KeyError(f"unknown protocol {protocol!r}")


def simulate_decisions(
    protocol: str,
    num_replicas: int,
    message_delay_ms: float,
    decisions: int = 500,
) -> DelaySimulationResult:
    """Sequential mode: each decision waits for the previous one."""
    key = protocol.lower()
    rounds = PROTOCOL_ROUNDS[key]
    clock_ms = 0.0
    for _ in range(decisions):
        # Every round is one message delay; computation is skipped.
        clock_ms += rounds * message_delay_ms
    throughput = decisions / (clock_ms / 1000.0) if clock_ms > 0 else 0.0
    return DelaySimulationResult(
        protocol=key,
        num_replicas=num_replicas,
        message_delay_ms=message_delay_ms,
        decisions=decisions,
        out_of_order_window=1,
        total_time_ms=clock_ms,
        throughput_decisions_per_s=throughput,
        messages_processed=decisions * _messages_per_decision(key, num_replicas),
    )


def simulate_out_of_order(
    protocol: str,
    num_replicas: int,
    message_delay_ms: float,
    decisions: int = 500,
    window: int = 250,
) -> DelaySimulationResult:
    """Out-of-order mode: up to *window* decisions progress concurrently.

    The simulation advances in waves: every ``rounds * delay`` interval a
    full window of decisions completes, which is how a primary that
    proposes out-of-order keeps the network busy (paper, Section IV-I).
    """
    key = protocol.lower()
    rounds = PROTOCOL_ROUNDS[key]
    window = max(1, window)
    clock_ms = 0.0
    completed = 0
    while completed < decisions:
        wave = min(window, decisions - completed)
        clock_ms += rounds * message_delay_ms
        completed += wave
    throughput = decisions / (clock_ms / 1000.0) if clock_ms > 0 else 0.0
    return DelaySimulationResult(
        protocol=key,
        num_replicas=num_replicas,
        message_delay_ms=message_delay_ms,
        decisions=decisions,
        out_of_order_window=window,
        total_time_ms=clock_ms,
        throughput_decisions_per_s=throughput,
        messages_processed=decisions * _messages_per_decision(key, num_replicas),
    )


def sweep_delays(
    protocols: Iterable[str] = ("poe", "pbft", "hotstuff"),
    replica_counts: Iterable[int] = (4, 16, 128),
    delays_ms: Iterable[float] = (10.0, 20.0, 40.0),
    decisions: int = 500,
    out_of_order: bool = False,
    window: int = 250,
) -> List[DelaySimulationResult]:
    """Run the full Figure 11 sweep."""
    results: List[DelaySimulationResult] = []
    for n in replica_counts:
        for delay in delays_ms:
            for protocol in protocols:
                if out_of_order:
                    results.append(simulate_out_of_order(
                        protocol, n, delay, decisions=decisions, window=window))
                else:
                    results.append(simulate_decisions(
                        protocol, n, delay, decisions=decisions))
    return results
