"""Network substrate: discrete-event simulation and live asyncio transport.

The paper evaluates PoE on a Google Cloud deployment plus a pure
message-delay simulation (Figure 11).  Neither a 91-VM cluster nor its
absolute throughput numbers are reproducible on a laptop, so this package
provides:

* :mod:`repro.net.simulator` -- a deterministic discrete-event scheduler
  with a virtual clock, timers and per-node CPU accounting;
* :mod:`repro.net.conditions` -- configurable latency, bandwidth, loss and
  jitter models;
* :mod:`repro.net.network` -- the simulated message fabric connecting
  protocol nodes, with crash/partition/dark-replica fault injection;
* :mod:`repro.net.transport` -- an asyncio in-process transport that runs
  the very same sans-IO protocol state machines live (used by examples).
"""

from repro.net.simulator import Simulator, Event, Timer
from repro.net.conditions import NetworkConditions, LinkOverride
from repro.net.network import SimNetwork, DeliveredMessage, NodeHandle
from repro.net.faults import FaultSchedule, CrashFault, PartitionFault, DarkReplicaFault
from repro.net.byzantine import (
    ByzantineBehavior,
    ByzantineSpec,
    EquivocatingPrimary,
    MessageDelayer,
    MessageReplayer,
    StaleCertifier,
    make_behavior,
)
from repro.net.transport import AsyncTransport, AsyncNode

__all__ = [
    "Simulator",
    "Event",
    "Timer",
    "NetworkConditions",
    "LinkOverride",
    "SimNetwork",
    "DeliveredMessage",
    "NodeHandle",
    "FaultSchedule",
    "CrashFault",
    "PartitionFault",
    "DarkReplicaFault",
    "ByzantineBehavior",
    "ByzantineSpec",
    "EquivocatingPrimary",
    "MessageDelayer",
    "MessageReplayer",
    "StaleCertifier",
    "make_behavior",
    "AsyncTransport",
    "AsyncNode",
]
