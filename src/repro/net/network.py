"""Simulated message fabric connecting sans-IO protocol nodes.

The :class:`SimNetwork` is the driver that runs protocol state machines on
top of the discrete-event :class:`~repro.net.simulator.Simulator`.  For
every step output it

* charges the step's CPU cost to the node's (single) worker thread, so a
  busy replica delays its own subsequent sends — this models the
  RESILIENTDB pipeline bottleneck;
* expands ``Broadcast`` actions to per-receiver sends;
* samples a delivery delay from the :class:`NetworkConditions` and applies
  the :class:`FaultSchedule` (crashes, partitions, dark replicas);
* materialises and cancels named timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.byzantine import ByzantineBehavior, Delivery
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.simulator import Simulator, Timer
from repro.protocols.base import (
    Broadcast,
    CancelTimer,
    ClientNode,
    Message,
    ProtocolNode,
    Send,
    SetTimer,
    StepOutput,
)

AnyNode = Union[ProtocolNode, ClientNode]

#: Observer signature: (sender, receiver, message, deliver_time_ms).
MessageObserver = Callable[[str, str, Message, float], None]


@dataclass(slots=True)
class DeliveredMessage:
    """Record of one delivered message (kept only when tracing is enabled)."""

    sender: str
    receiver: str
    message: Message
    time_ms: float


@dataclass(slots=True)
class NodeHandle:
    """Book-keeping the network keeps per registered node."""

    node: AnyNode
    is_replica: bool
    timers: Dict[str, Timer] = field(default_factory=dict)


class SimNetwork:
    """Connects protocol nodes through simulated, possibly faulty links."""

    def __init__(
        self,
        simulator: Simulator,
        conditions: Optional[NetworkConditions] = None,
        faults: Optional[FaultSchedule] = None,
        trace: bool = False,
    ) -> None:
        self.sim = simulator
        self.conditions = conditions or NetworkConditions.lan()
        self.faults = faults or FaultSchedule.none()
        self.trace = trace
        self.delivered: List[DeliveredMessage] = []
        self.dropped_count = 0
        self.sent_count = 0
        self._nodes: Dict[str, NodeHandle] = {}
        self._replica_ids: List[str] = []
        self._observers: List[MessageObserver] = []
        self._uplink_free_at: Dict[str, float] = {}
        self._byzantine: Dict[str, ByzantineBehavior] = {}

    # -- registration ----------------------------------------------------------
    def add_replica(self, node: ProtocolNode) -> None:
        """Register a replica node (targets of ``Broadcast`` actions)."""
        self._nodes[node.node_id] = NodeHandle(node=node, is_replica=True)
        self._replica_ids.append(node.node_id)

    def add_client(self, node: ClientNode) -> None:
        """Register a client node."""
        self._nodes[node.node_id] = NodeHandle(node=node, is_replica=False)

    def add_observer(self, observer: MessageObserver) -> None:
        """Register a callback invoked for every delivered message."""
        self._observers.append(observer)

    def set_byzantine(self, node_id: str, behavior: ByzantineBehavior,
                      seed: object = 0) -> None:
        """Route *node_id*'s outgoing traffic through a Byzantine behaviour.

        The node itself keeps running its honest state machine; the
        behaviour tampers at the network boundary.  Must be called after
        every replica is registered (the behaviour needs the membership to
        derive its target groups).  Fabricated messages still leave the
        Byzantine node's own transport, so receivers observe the true
        sender regardless of any identity claimed in the payload.
        """
        behavior.bind(node_id, self._replica_ids, seed)
        self._byzantine[node_id] = behavior

    @property
    def replica_ids(self) -> List[str]:
        return list(self._replica_ids)

    def node(self, node_id: str) -> AnyNode:
        return self._nodes[node_id].node

    def nodes(self) -> Iterable[AnyNode]:
        return (handle.node for handle in self._nodes.values())

    # -- lifecycle --------------------------------------------------------------
    def start_all(self) -> None:
        """Boot every registered node at the current virtual time."""
        for node_id in list(self._nodes):
            handle = self._nodes[node_id]
            if self.faults.crashed_at(node_id, self.sim.now):
                handle.node.crashed = True
                continue
            output = handle.node.start(self.sim.now)
            self._apply_output(node_id, output)
        self._schedule_fault_transitions()

    def crash(self, node_id: str, at_ms: Optional[float] = None) -> None:
        """Crash a node immediately or at a future time."""
        when = self.sim.now if at_ms is None else at_ms
        self.faults.add_crash(node_id, at_ms=when)
        if when <= self.sim.now:
            self._apply_crash(node_id)
        else:
            self.sim.schedule_at(when, lambda: self._apply_crash(node_id))

    def _apply_crash(self, node_id: str) -> None:
        handle = self._nodes.get(node_id)
        if handle is None:
            return
        handle.node.crashed = True
        for timer in handle.timers.values():
            timer.cancel()
        handle.timers.clear()
        self.sim.reset_cpu(node_id)

    def _schedule_fault_transitions(self) -> None:
        for crash in self.faults.crashes:
            if crash.at_ms > self.sim.now:
                self.sim.schedule_at(crash.at_ms,
                                     lambda node_id=crash.node_id: self._apply_crash(node_id))
            elif not self.faults.crashed_at(crash.node_id, self.sim.now):
                continue
            else:
                self._apply_crash(crash.node_id)

    # -- message plumbing --------------------------------------------------------
    def inject(self, sender: str, receiver: str, message: Message,
               delay_ms: float = 0.0) -> None:
        """Inject a message as if *sender* transmitted it (used by tests/harness).

        The message goes through the normal fault and delay machinery.
        """
        self._transmit(sender, receiver, message, ready_at=self.sim.now + delay_ms)

    def _apply_output(self, node_id: str, output: StepOutput) -> None:
        """Apply a step's actions, honouring its CPU cost."""
        ready_at = self.sim.charge_cpu(node_id, output.cpu_ms)
        actions = output.actions
        if not actions:
            return
        if self._byzantine:
            behavior = self._byzantine.get(node_id)
            if behavior is not None:
                self._apply_output_byzantine(node_id, actions, behavior, ready_at)
                return
        handle = self._nodes[node_id]
        transmit = self._transmit
        for action in actions:
            # Exact-type tests instead of isinstance: the four action types
            # are final in practice, and this loop runs once per protocol
            # step.  Unknown subclasses fall back to the isinstance chain.
            cls = action.__class__
            if cls is Send:
                transmit(node_id, action.to, action.message, ready_at)
            elif cls is Broadcast:
                message = action.message
                include_self = action.include_self
                # The serialization delay depends only on the message size;
                # compute it once for the whole fan-out.
                serialization = self.conditions.serialization_delay_ms(
                    message.size_bytes)
                for receiver in self._replica_ids:
                    if receiver == node_id and not include_self:
                        continue
                    transmit(node_id, receiver, message, ready_at,
                             serialization_ms=serialization)
            elif cls is SetTimer:
                self._arm_timer(handle, node_id, action, ready_at)
            elif cls is CancelTimer:
                timer = handle.timers.pop(action.name, None)
                if timer is not None:
                    timer.cancel()
            else:
                self._apply_action_slow(handle, node_id, action, ready_at)

    def _apply_output_byzantine(self, node_id: str, actions: List[object],
                                behavior: ByzantineBehavior,
                                ready_at: float) -> None:
        """Slow path for Byzantine senders: filter fan-outs through the
        behaviour before transmitting.  Timers are unaffected."""
        handle = self._nodes[node_id]
        for action in actions:
            if isinstance(action, Send):
                deliveries = [Delivery(action.to, action.message)]
            elif isinstance(action, Broadcast):
                deliveries = [
                    Delivery(receiver, action.message)
                    for receiver in self._replica_ids
                    if receiver != node_id or action.include_self
                ]
            elif isinstance(action, SetTimer):
                self._arm_timer(handle, node_id, action, ready_at)
                continue
            elif isinstance(action, CancelTimer):
                timer = handle.timers.pop(action.name, None)
                if timer is not None:
                    timer.cancel()
                continue
            else:
                continue
            for delivery in behavior.transform(deliveries, self.sim.now):
                self._transmit(node_id, delivery.receiver, delivery.message,
                               ready_at + delivery.delay_ms)

    def _apply_action_slow(self, handle: NodeHandle, node_id: str,
                           action: object, ready_at: float) -> None:
        """isinstance-based fallback for subclassed action types."""
        if isinstance(action, Send):
            self._transmit(node_id, action.to, action.message, ready_at)
        elif isinstance(action, Broadcast):
            for receiver in self._replica_ids:
                if receiver == node_id and not action.include_self:
                    continue
                self._transmit(node_id, receiver, action.message, ready_at)
        elif isinstance(action, SetTimer):
            self._arm_timer(handle, node_id, action, ready_at)
        elif isinstance(action, CancelTimer):
            timer = handle.timers.pop(action.name, None)
            if timer is not None:
                timer.cancel()

    def _arm_timer(self, handle: NodeHandle, node_id: str, action: SetTimer,
                   ready_at: float) -> None:
        existing = handle.timers.pop(action.name, None)
        if existing is not None:
            existing.cancel()
        fire_delay = max(0.0, ready_at - self.sim.now) + action.delay_ms

        def fire() -> None:
            handle.timers.pop(action.name, None)
            if handle.node.crashed:
                return
            output = handle.node.timer_fired(action.name, action.payload, self.sim.now)
            self._apply_output(node_id, output)

        handle.timers[action.name] = self.sim.set_timer(node_id, action.name, fire_delay, fire)

    def _transmit(self, sender: str, receiver: str, message: Message,
                  ready_at: float,
                  serialization_ms: Optional[float] = None) -> None:
        """Schedule delivery of one message, applying faults and delays.

        Replica senders pay serialization time on their uplink: broadcasting
        a large proposal to ``n - 1`` backups occupies the sender's
        bandwidth once per receiver, which is what makes the primary the
        bandwidth bottleneck under standard payloads (paper, Section IV-E).

        *serialization_ms* lets broadcast fan-outs reuse one size-dependent
        delay computation for all receivers.
        """
        self.sent_count += 1
        nodes = self._nodes
        if receiver not in nodes:
            self.dropped_count += 1
            return
        now = self.sim.now
        send_time = ready_at if ready_at > now else now
        sender_handle = nodes.get(sender)
        if (sender_handle is not None and sender_handle.is_replica
                and sender != receiver):
            if serialization_ms is None:
                serialization_ms = self.conditions.serialization_delay_ms(
                    message.size_bytes)
            if serialization_ms > 0:
                uplink = self._uplink_free_at
                start = uplink.get(sender, 0.0)
                if send_time > start:
                    start = send_time
                send_time = start + serialization_ms
                uplink[sender] = send_time
        faults = self.faults
        if faults.active and faults.drops(sender, receiver, send_time):
            self.dropped_count += 1
            return
        propagation = self.conditions.propagation_ms(sender, receiver)
        if propagation is None:
            self.dropped_count += 1
            return
        # functools.partial instead of a lambda: no closure cell allocation
        # per message, and a cheaper call on the other end.
        self.sim.schedule_at(send_time + propagation,
                             partial(self._deliver, sender, receiver, message))

    def _deliver(self, sender: str, receiver: str, message: Message) -> None:
        handle = self._nodes.get(receiver)
        if handle is None or handle.node.crashed:
            self.dropped_count += 1
            return
        now = self.sim.now
        faults = self.faults
        if faults.has_crashes and faults.crashed_at(receiver, now):
            handle.node.crashed = True
            self.dropped_count += 1
            return
        if self.trace:
            self.delivered.append(
                DeliveredMessage(sender=sender, receiver=receiver,
                                 message=message, time_ms=now)
            )
        if self._observers:
            for observer in self._observers:
                observer(sender, receiver, message, now)
        output = handle.node.deliver(sender, message, now)
        self._apply_output(receiver, output)

    # -- convenience --------------------------------------------------------------
    def run(self, until_ms: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the underlying simulator."""
        return self.sim.run(until_ms=until_ms, max_events=max_events)

    def run_until_idle(self, max_events: int = 2_000_000) -> float:
        return self.sim.run_until_idle(max_events=max_events)
