"""Simulated message fabric connecting sans-IO protocol nodes.

The :class:`SimNetwork` is the driver that runs protocol state machines on
top of the discrete-event :class:`~repro.net.simulator.Simulator`.  For
every step output it

* charges the step's CPU cost to the node's (single) worker thread, so a
  busy replica delays its own subsequent sends — this models the
  RESILIENTDB pipeline bottleneck;
* expands ``Broadcast`` actions to per-receiver sends;
* samples a delivery delay from the :class:`NetworkConditions` and applies
  the :class:`FaultSchedule` (crashes, partitions, dark replicas);
* materialises and cancels named timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.byzantine import ByzantineBehavior, Delivery
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.simulator import Simulator, Timer
from repro.protocols.base import (
    Broadcast,
    CancelTimer,
    ClientNode,
    Message,
    ProtocolNode,
    Send,
    SetTimer,
    StepOutput,
)

AnyNode = Union[ProtocolNode, ClientNode]

#: Observer signature: (sender, receiver, message, deliver_time_ms).
MessageObserver = Callable[[str, str, Message, float], None]


@dataclass(slots=True)
class DeliveredMessage:
    """Record of one delivered message (kept only when tracing is enabled)."""

    sender: str
    receiver: str
    message: Message
    time_ms: float


@dataclass(slots=True)
class NodeHandle:
    """Book-keeping the network keeps per registered node.

    ``deliver_into`` caches the node's bound hot-path delivery method so
    the per-message dispatch is one attribute load instead of two.
    """

    node: AnyNode
    is_replica: bool
    timers: Dict[str, Timer] = field(default_factory=dict)
    deliver_into: Optional[Callable] = None
    #: Whether the node's ``start`` hook has run — a node crashed at boot
    #: has not started, and a later recovery must boot it first.
    started: bool = False


class SimNetwork:
    """Connects protocol nodes through simulated, possibly faulty links."""

    def __init__(
        self,
        simulator: Simulator,
        conditions: Optional[NetworkConditions] = None,
        faults: Optional[FaultSchedule] = None,
        trace: bool = False,
    ) -> None:
        self.sim = simulator
        self.conditions = conditions or NetworkConditions.lan()
        self.faults = faults or FaultSchedule.none()
        # One combined "anything watching deliveries?" flag so the hot
        # delivery path pays a single check for tracing + observers; the
        # `trace` property keeps it in sync with late `net.trace = True`.
        self._watching = trace
        self._trace = trace
        self.delivered: List[DeliveredMessage] = []
        self.dropped_count = 0
        self.sent_count = 0
        self._nodes: Dict[str, NodeHandle] = {}
        self._replica_ids: List[str] = []
        #: (replica id, handle) pairs in registration order — the broadcast
        #: fan-out resolves receivers from this list instead of per-message
        #: dict lookups.
        self._replica_handles: List[Tuple[str, NodeHandle]] = []
        self._observers: List[MessageObserver] = []
        self._uplink_free_at: Dict[str, float] = {}
        self._byzantine: Dict[str, ByzantineBehavior] = {}
        #: Optional shard-boundary hook for multi-network (sharded)
        #: deployments.  A send whose receiver is not registered here is
        #: offered to ``boundary.transmit(origin, sender, receiver,
        #: message, ready_at)``, which computes a deterministic (RNG-free)
        #: send->deliver timestamp and routes the message to the
        #: receiver's home network — possibly in another worker process.
        #: Deliveries come back in through :meth:`deliver_boundary`, so a
        #: node's timers and step outputs are always managed by its home
        #: network.  ``None`` (the single-network default) costs one
        #: attribute load per transmit.
        self.boundary: Optional[object] = None
        # Driver-owned scratch buffer for the zero-allocation step path:
        # deliveries and timer expiries append their actions here instead of
        # allocating a StepOutput + list per step.  Taken (set to None) while
        # a step runs so re-entrant use falls back to a fresh list.
        self._action_buffer: Optional[List[object]] = []

    # -- registration ----------------------------------------------------------
    def add_replica(self, node: ProtocolNode) -> None:
        """Register a replica node (targets of ``Broadcast`` actions)."""
        handle = NodeHandle(
            node=node, is_replica=True, deliver_into=node.deliver_into)
        self._nodes[node.node_id] = handle
        self._replica_ids.append(node.node_id)
        self._replica_handles.append((node.node_id, handle))

    def add_client(self, node: ClientNode) -> None:
        """Register a client node."""
        self._nodes[node.node_id] = NodeHandle(
            node=node, is_replica=False, deliver_into=node.deliver_into)

    def add_observer(self, observer: MessageObserver) -> None:
        """Register a callback invoked for every delivered message."""
        self._observers.append(observer)
        self._watching = True

    def set_byzantine(self, node_id: str, behavior: ByzantineBehavior,
                      seed: object = 0) -> None:
        """Route *node_id*'s outgoing traffic through a Byzantine behaviour.

        The node itself keeps running its honest state machine; the
        behaviour tampers at the network boundary.  Must be called after
        every replica is registered (the behaviour needs the membership to
        derive its target groups).  Fabricated messages still leave the
        Byzantine node's own transport, so receivers observe the true
        sender regardless of any identity claimed in the payload.
        """
        behavior.bind(node_id, self._replica_ids, seed)
        behavior.attach_network(self)
        self._byzantine[node_id] = behavior

    @property
    def trace(self) -> bool:
        """Whether delivered messages are recorded to ``self.delivered``."""
        return self._trace

    @trace.setter
    def trace(self, value: bool) -> None:
        self._trace = value
        self._watching = value or bool(self._observers)

    @property
    def replica_ids(self) -> List[str]:
        return list(self._replica_ids)

    def node(self, node_id: str) -> AnyNode:
        return self._nodes[node_id].node

    def nodes(self) -> Iterable[AnyNode]:
        return (handle.node for handle in self._nodes.values())

    # -- lifecycle --------------------------------------------------------------
    def start_all(self) -> None:
        """Boot every registered node at the current virtual time."""
        for node_id in list(self._nodes):
            handle = self._nodes[node_id]
            if self.faults.crashed_at(node_id, self.sim.now):
                handle.node.crashed = True
                continue
            handle.started = True
            output = handle.node.start(self.sim.now)
            self._apply_output(node_id, output)
        self._schedule_fault_transitions()

    def crash(self, node_id: str, at_ms: Optional[float] = None) -> None:
        """Crash a node immediately or at a future time."""
        when = self.sim.now if at_ms is None else at_ms
        self.faults.add_crash(node_id, at_ms=when)
        if when <= self.sim.now:
            self._apply_crash(node_id)
        else:
            self._note_label(
                self.sim.schedule_at(when, lambda: self._apply_crash(node_id)),
                ("crash", node_id))

    def _note_label(self, event, label: Tuple[str, str]) -> None:
        """Label a fault-transition event for the model checker's scheduler.

        A no-op on the plain simulator; only the cold fault-scheduling
        paths call it, so the delivery hot path is untouched.
        """
        note = getattr(self.sim, "note_label", None)
        if note is not None:
            note(event, label)

    def _apply_crash(self, node_id: str) -> None:
        handle = self._nodes.get(node_id)
        if handle is None:
            return
        handle.node.crashed = True
        for timer in handle.timers.values():
            timer.cancel()
        handle.timers.clear()
        self.sim.reset_cpu(node_id)

    def _schedule_fault_transitions(self) -> None:
        for crash in self.faults.crashes:
            if crash.at_ms > self.sim.now:
                self._note_label(
                    self.sim.schedule_at(
                        crash.at_ms,
                        lambda node_id=crash.node_id: self._apply_crash(node_id)),
                    ("crash", crash.node_id))
            elif self.faults.crashed_at(crash.node_id, self.sim.now):
                self._apply_crash(crash.node_id)
            # Bounded crash windows recover (membership churn): the node
            # rejoins at ``until_ms`` and catches up through the normal
            # checkpoint/state-transfer machinery.
            if crash.until_ms is not None and crash.until_ms > self.sim.now:
                self._note_label(
                    self.sim.schedule_at(
                        crash.until_ms,
                        lambda node_id=crash.node_id: self._apply_recover(node_id)),
                    ("recover", crash.node_id))

    def _apply_recover(self, node_id: str) -> None:
        """Bring a node back after a bounded crash window (replica rejoin).

        If another crash window still covers the node this is a no-op.  A
        node crashed at boot is started now; one that had been running
        simply resumes — its next checkpoint observations (f+1 votes above
        its own state) drive state transfer, which is the rejoin path.
        """
        handle = self._nodes.get(node_id)
        if handle is None:
            return
        if self.faults.crashed_at(node_id, self.sim.now):
            return
        handle.node.crashed = False
        if not handle.started:
            handle.started = True
            output = handle.node.start(self.sim.now)
            self._apply_output(node_id, output)

    # -- message plumbing --------------------------------------------------------
    def inject(self, sender: str, receiver: str, message: Message,
               delay_ms: float = 0.0) -> None:
        """Inject a message as if *sender* transmitted it (used by tests/harness).

        The message goes through the normal fault and delay machinery.
        """
        self._transmit(sender, receiver, message, ready_at=self.sim.now + delay_ms)

    def _apply_output(self, node_id: str, output: StepOutput) -> None:
        """Apply a step's actions, honouring its CPU cost.

        Compatibility entry point for boot (:meth:`start_all`) and ad-hoc
        drivers; deliveries and timers go through the buffer-based path in
        :meth:`_deliver` / :meth:`_arm_timer` instead.
        """
        ready_at = self.sim.charge_cpu(node_id, output.cpu_ms)
        if output.actions:
            self._apply_actions(node_id, output.actions, ready_at)

    def _apply_actions(self, node_id: str, actions: List[object],
                       ready_at: float) -> None:
        """Apply one step's actions (caller has already charged the CPU)."""
        if self._byzantine:
            behavior = self._byzantine.get(node_id)
            if behavior is not None:
                self._apply_output_byzantine(node_id, actions, behavior, ready_at)
                return
        handle = self._nodes[node_id]
        for action in actions:
            # Exact-type tests instead of isinstance: the four action types
            # are final in practice, and this loop runs once per protocol
            # step.  Unknown subclasses fall back to the isinstance chain.
            cls = action.__class__
            if cls is Send:
                self._transmit(node_id, action.to, action.message, ready_at)
            elif cls is Broadcast:
                self._transmit_broadcast(node_id, action.message,
                                         action.include_self, ready_at)
            elif cls is SetTimer:
                self._arm_timer(handle, node_id, action, ready_at)
            elif cls is CancelTimer:
                timer = handle.timers.pop(action.name, None)
                if timer is not None:
                    timer.cancel()
            else:
                self._apply_action_slow(handle, node_id, action, ready_at)

    def _apply_output_byzantine(self, node_id: str, actions: List[object],
                                behavior: ByzantineBehavior,
                                ready_at: float) -> None:
        """Slow path for Byzantine senders: filter fan-outs through the
        behaviour before transmitting.  Timers are unaffected."""
        handle = self._nodes[node_id]
        for action in actions:
            if isinstance(action, Send):
                deliveries = [Delivery(action.to, action.message)]
            elif isinstance(action, Broadcast):
                deliveries = [
                    Delivery(receiver, action.message)
                    for receiver in self._replica_ids
                    if receiver != node_id or action.include_self
                ]
            elif isinstance(action, SetTimer):
                self._arm_timer(handle, node_id, action, ready_at)
                continue
            elif isinstance(action, CancelTimer):
                timer = handle.timers.pop(action.name, None)
                if timer is not None:
                    timer.cancel()
                continue
            else:
                continue
            for delivery in behavior.transform(deliveries, self.sim.now):
                self._transmit(node_id, delivery.receiver, delivery.message,
                               ready_at + delivery.delay_ms)

    def _apply_action_slow(self, handle: NodeHandle, node_id: str,
                           action: object, ready_at: float) -> None:
        """isinstance-based fallback for subclassed action types."""
        if isinstance(action, Send):
            self._transmit(node_id, action.to, action.message, ready_at)
        elif isinstance(action, Broadcast):
            for receiver in self._replica_ids:
                if receiver == node_id and not action.include_self:
                    continue
                self._transmit(node_id, receiver, action.message, ready_at)
        elif isinstance(action, SetTimer):
            self._arm_timer(handle, node_id, action, ready_at)
        elif isinstance(action, CancelTimer):
            timer = handle.timers.pop(action.name, None)
            if timer is not None:
                timer.cancel()

    def _arm_timer(self, handle: NodeHandle, node_id: str, action: SetTimer,
                   ready_at: float) -> None:
        existing = handle.timers.pop(action.name, None)
        if existing is not None:
            existing.cancel()
        fire_delay = max(0.0, ready_at - self.sim.now) + action.delay_ms

        def fire() -> None:
            handle.timers.pop(action.name, None)
            node = handle.node
            if node.crashed:
                return
            buffer = self._action_buffer
            if buffer is None:
                buffer = []
            else:
                self._action_buffer = None
            cpu_ms = node.timer_fired_into(action.name, action.payload,
                                           self.sim.now, buffer)
            ready_at = self.sim.charge_cpu(node_id, cpu_ms)
            if buffer:
                self._apply_actions(node_id, buffer, ready_at)
                buffer.clear()
            self._action_buffer = buffer

        handle.timers[action.name] = self.sim.set_timer(node_id, action.name, fire_delay, fire)

    def _transmit(self, sender: str, receiver: str, message: Message,
                  ready_at: float,
                  serialization_ms: Optional[float] = None) -> None:
        """Schedule delivery of one message, applying faults and delays.

        Replica senders pay serialization time on their uplink: broadcasting
        a large proposal to ``n - 1`` backups occupies the sender's
        bandwidth once per receiver, which is what makes the primary the
        bandwidth bottleneck under standard payloads (paper, Section IV-E).

        *serialization_ms* lets broadcast fan-outs reuse one size-dependent
        delay computation for all receivers.
        """
        self.sent_count += 1
        nodes = self._nodes
        receiver_handle = nodes.get(receiver)
        if receiver_handle is None:
            boundary = self.boundary
            if boundary is not None and boundary.transmit(
                    self, sender, receiver, message, ready_at):
                return
            self.dropped_count += 1
            return
        now = self.sim.now
        send_time = ready_at if ready_at > now else now
        sender_handle = nodes.get(sender)
        if (sender_handle is not None and sender_handle.is_replica
                and sender != receiver):
            if serialization_ms is None:
                serialization_ms = self.conditions.serialization_delay_ms(
                    message.size_bytes)
            if serialization_ms > 0:
                uplink = self._uplink_free_at
                start = uplink.get(sender, 0.0)
                if send_time > start:
                    start = send_time
                send_time = start + serialization_ms
                uplink[sender] = send_time
        faults = self.faults
        if faults.active and faults.drops(sender, receiver, send_time):
            self.dropped_count += 1
            return
        propagation = self.conditions.propagation_ms(sender, receiver, send_time)
        if propagation is None:
            self.dropped_count += 1
            return
        # functools.partial instead of a lambda: no closure cell allocation
        # per message, and a cheaper call on the other end.  The receiver
        # handle is resolved now — registration only ever grows — so the
        # delivery callback skips the per-message node lookup.
        self.sim.post_at(send_time + propagation,
                         partial(self._deliver, sender, receiver,
                                 receiver_handle, message))

    def _transmit_broadcast(self, sender: str, message: Message,
                            include_self: bool, ready_at: float) -> None:
        """Fan one broadcast out to every replica.

        Semantically equivalent to calling :meth:`_transmit` once per
        receiver (the MAC-mode protocols do this n² times per slot), but
        with the per-fan-out invariants hoisted out of the loop: the
        serialization delay, the sender's uplink cursor (read once,
        written once), the fault-schedule gate and the lossless-conditions
        fast path for the jitter draw.  RNG draw order — one ``random()``
        per non-self receiver, in membership order — matches the generic
        path exactly, so delivery timestamps are bit-identical.
        """
        conditions = self.conditions
        serialization = conditions.serialization_delay_ms(message.size_bytes)
        now = self.sim.now
        send_base = ready_at if ready_at > now else now
        sender_handle = self._nodes.get(sender)
        pays_uplink = (sender_handle is not None and sender_handle.is_replica
                       and serialization > 0)
        uplink_free = self._uplink_free_at.get(sender, 0.0) if pays_uplink else 0.0
        faults = self.faults
        faults_active = faults.active
        fast_conditions = (not conditions.overrides and conditions.loss_rate == 0.0
                           and conditions.topology is None)
        latency = conditions.latency_ms
        jitter = conditions.jitter_ms
        random = conditions._rng.random
        local_ms = conditions.local_delivery_ms
        post = self.sim.post_at
        deliver = self._deliver
        sent = 0
        dropped = 0
        for receiver, receiver_handle in self._replica_handles:
            if receiver == sender:
                if not include_self:
                    continue
                sent += 1
                send_time = send_base
                if faults_active and faults.drops(sender, receiver, send_time):
                    dropped += 1
                    continue
                propagation = local_ms
            else:
                sent += 1
                if pays_uplink:
                    start = uplink_free if uplink_free > send_base else send_base
                    send_time = start + serialization
                    uplink_free = send_time
                else:
                    send_time = send_base
                if faults_active and faults.drops(sender, receiver, send_time):
                    dropped += 1
                    continue
                if fast_conditions:
                    # Same draw as NetworkConditions.propagation_ms:
                    # uniform(0, j) evaluates to 0.0 + j * random().
                    propagation = (latency + jitter * random() if jitter > 0
                                   else latency)
                else:
                    sampled = conditions.propagation_ms(sender, receiver, send_time)
                    if sampled is None:
                        dropped += 1
                        continue
                    propagation = sampled
            post(send_time + propagation,
                 partial(deliver, sender, receiver, receiver_handle, message))
        self.sent_count += sent
        self.dropped_count += dropped
        if pays_uplink:
            self._uplink_free_at[sender] = uplink_free

    def _deliver(self, sender: str, receiver: str, handle: NodeHandle,
                 message: Message) -> None:
        """Deliver one scheduled message (callback target of the heap).

        *handle* was resolved when the message was transmitted —
        registration only grows, so it cannot go stale.
        """
        if handle.node.crashed:
            self.dropped_count += 1
            return
        sim = self.sim
        now = sim._now
        faults = self.faults
        if faults.has_crashes and faults.crashed_at(receiver, now):
            handle.node.crashed = True
            self.dropped_count += 1
            return
        if self._watching:
            if self._trace:
                self.delivered.append(
                    DeliveredMessage(sender=sender, receiver=receiver,
                                     message=message, time_ms=now)
                )
            for observer in self._observers:
                observer(sender, receiver, message, now)
        buffer = self._action_buffer
        if buffer is None:
            buffer = []
        else:
            self._action_buffer = None
        cpu_ms = handle.deliver_into(sender, message, now, buffer)
        # Inline of Simulator.charge_cpu (one call per delivery).
        cpu_free = sim._cpu_free_at
        free_at = cpu_free.get(receiver, 0.0)
        start = now if now > free_at else free_at
        ready_at = start + cpu_ms if cpu_ms > 0.0 else start
        cpu_free[receiver] = ready_at
        if buffer:
            self._apply_actions(receiver, buffer, ready_at)
            buffer.clear()
        self._action_buffer = buffer

    def deliver_boundary(self, sender: str, receiver: str, message: Message,
                         send_time_ms: float, deliver_at_ms: float) -> None:
        """Schedule delivery of a message that crossed a shard boundary.

        The boundary computed the deterministic ``send -> deliver``
        timestamps; this side only applies the receiving network's fault
        schedule (evaluated at send time, exactly as :meth:`_transmit`
        would) and posts the same ``partial(self._deliver, ...)`` callback
        shape the local path uses, so delivered boundary messages are
        indistinguishable from local ones downstream (observers, tracing,
        the model checker's delivery labels).
        """
        handle = self._nodes.get(receiver)
        if handle is None:
            self.dropped_count += 1
            return
        faults = self.faults
        if faults.active and faults.drops(sender, receiver, send_time_ms):
            self.dropped_count += 1
            return
        self.sim.post_at(deliver_at_ms,
                         partial(self._deliver, sender, receiver,
                                 handle, message))

    # -- convenience --------------------------------------------------------------
    def run(self, until_ms: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the underlying simulator."""
        return self.sim.run(until_ms=until_ms, max_events=max_events)

    def run_until_idle(self, max_events: int = 2_000_000) -> float:
        return self.sim.run_until_idle(max_events=max_events)
