"""Live asyncio transport for the sans-IO protocol state machines.

The discrete-event :class:`~repro.net.network.SimNetwork` is used by the
benchmark harness; this module runs the *same* protocol objects on a real
asyncio event loop so the examples can demonstrate PoE executing end to
end in wall-clock time.  Nodes communicate through in-process queues; an
optional artificial delay emulates network latency.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.protocols.base import (
    Broadcast,
    CancelTimer,
    ClientNode,
    Message,
    ProtocolNode,
    Send,
    SetTimer,
    StepOutput,
)

AnyNode = Union[ProtocolNode, ClientNode]


@dataclass
class AsyncNode:
    """Wrapper pairing a sans-IO node with its asyncio machinery."""

    node: AnyNode
    is_replica: bool
    inbox: "asyncio.Queue[Tuple[str, Message]]" = field(default_factory=asyncio.Queue)
    timers: Dict[str, asyncio.TimerHandle] = field(default_factory=dict)
    task: Optional[asyncio.Task] = None


class AsyncTransport:
    """Runs protocol nodes concurrently on the running asyncio event loop."""

    def __init__(self, latency_ms: float = 0.0) -> None:
        self.latency_ms = latency_ms
        self._nodes: Dict[str, AsyncNode] = {}
        self._replica_ids: List[str] = []
        self._running = False
        self.delivered_count = 0

    # -- registration ----------------------------------------------------------
    def add_replica(self, node: ProtocolNode) -> None:
        self._nodes[node.node_id] = AsyncNode(node=node, is_replica=True)
        self._replica_ids.append(node.node_id)

    def add_client(self, node: ClientNode) -> None:
        self._nodes[node.node_id] = AsyncNode(node=node, is_replica=False)

    def node(self, node_id: str) -> AnyNode:
        return self._nodes[node_id].node

    # -- lifecycle --------------------------------------------------------------
    async def start(self) -> None:
        """Boot every node and start their message pumps."""
        self._running = True
        for node_id, wrapper in self._nodes.items():
            wrapper.task = asyncio.create_task(self._pump(node_id))
        for node_id, wrapper in self._nodes.items():
            output = wrapper.node.start(self._now_ms())
            self._apply_output(node_id, output)

    async def stop(self) -> None:
        """Cancel message pumps and timers."""
        self._running = False
        for wrapper in self._nodes.values():
            for handle in wrapper.timers.values():
                handle.cancel()
            wrapper.timers.clear()
            if wrapper.task is not None:
                wrapper.task.cancel()
        await asyncio.gather(
            *(w.task for w in self._nodes.values() if w.task is not None),
            return_exceptions=True,
        )

    async def run_for(self, seconds: float) -> None:
        """Let the system run for *seconds* of wall-clock time."""
        await asyncio.sleep(seconds)

    def _now_ms(self) -> float:
        return asyncio.get_event_loop().time() * 1000.0

    # -- plumbing ----------------------------------------------------------------
    async def _pump(self, node_id: str) -> None:
        wrapper = self._nodes[node_id]
        node = wrapper.node
        # Each pump task owns one reusable action buffer (the same
        # zero-allocation protocol the simulated network uses); applying
        # actions only calls put_nowait, so the buffer never re-enters.
        buffer: List[object] = []
        while True:
            sender, message = await wrapper.inbox.get()
            if node.crashed:
                continue
            self.delivered_count += 1
            node.deliver_into(sender, message, self._now_ms(), buffer)
            if buffer:
                self._apply_actions(node_id, wrapper, buffer)
                buffer.clear()

    def _apply_output(self, node_id: str, output: StepOutput) -> None:
        if output.actions:
            self._apply_actions(node_id, self._nodes[node_id], output.actions)

    def _apply_actions(self, node_id: str, wrapper: AsyncNode,
                       actions: List[object]) -> None:
        for action in actions:
            if isinstance(action, Send):
                self._post(node_id, action.to, action.message)
            elif isinstance(action, Broadcast):
                for receiver in self._replica_ids:
                    if receiver == node_id and not action.include_self:
                        continue
                    self._post(node_id, receiver, action.message)
            elif isinstance(action, SetTimer):
                self._arm_timer(node_id, wrapper, action)
            elif isinstance(action, CancelTimer):
                handle = wrapper.timers.pop(action.name, None)
                if handle is not None:
                    handle.cancel()

    def _post(self, sender: str, receiver: str, message: Message) -> None:
        target = self._nodes.get(receiver)
        if target is None or target.node.crashed:
            return
        if self.latency_ms > 0:
            loop = asyncio.get_event_loop()
            loop.call_later(
                self.latency_ms / 1000.0,
                lambda: target.inbox.put_nowait((sender, message)),
            )
        else:
            target.inbox.put_nowait((sender, message))

    def _arm_timer(self, node_id: str, wrapper: AsyncNode, action: SetTimer) -> None:
        existing = wrapper.timers.pop(action.name, None)
        if existing is not None:
            existing.cancel()
        loop = asyncio.get_event_loop()

        def fire() -> None:
            wrapper.timers.pop(action.name, None)
            if wrapper.node.crashed or not self._running:
                return
            actions: List[object] = []
            wrapper.node.timer_fired_into(action.name, action.payload,
                                          self._now_ms(), actions)
            if actions:
                self._apply_actions(node_id, wrapper, actions)

        wrapper.timers[action.name] = loop.call_later(action.delay_ms / 1000.0, fire)
