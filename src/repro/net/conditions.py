"""Network condition models: latency, jitter, bandwidth and loss.

The evaluation fabric charges every message a delivery delay of

    propagation + serialisation + jitter

where serialisation is ``size_bytes / bandwidth``.  This captures the two
effects the paper leans on: message *count* (propagation-bound protocols,
Figure 11) and message *size* (the PROPOSE payload dominating bandwidth,
Figures 9(e)-(h) zero-payload experiments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class LinkOverride:
    """Per-link override of latency/loss (e.g. a slow or lossy replica)."""

    latency_ms: Optional[float] = None
    loss_rate: Optional[float] = None


@dataclass(frozen=True)
class DriftPhase:
    """One piece of a piecewise-constant drift schedule.

    From ``at_ms`` on (until the next phase), every topology latency is
    multiplied by ``scale``; ``link_scale`` additionally multiplies the
    latency of specific directional ``(from_region, to_region)`` links.
    Drift is a deterministic function of virtual time, so drifting runs
    stay byte-identical across same-seed executions.
    """

    at_ms: float = 0.0
    scale: float = 1.0
    link_scale: Dict[Tuple[str, str], float] = field(default_factory=dict)


@dataclass
class LatencyTopology:
    """Region-structured propagation latencies with scheduled drift.

    Models the geo-distributed half of the evaluation: replicas grouped
    into regions, cheap intra-region links, per-link (directional, so
    possibly asymmetric) inter-region latencies, and a piecewise drift
    schedule that degrades or heals links mid-run.

    Attributes:
        regions: node id -> region name; unmapped nodes (typically client
            pools) fall into ``default_region``.
        intra_ms: latency between two nodes of the same region.
        link_ms: directional ``(from_region, to_region)`` latency; a
            missing direction falls back to the reverse direction, then
            to ``default_inter_ms``.
        default_inter_ms: latency between regions with no configured link.
        default_region: region assumed for nodes absent from ``regions``.
        drift: :class:`DriftPhase` schedule, sorted by ``at_ms``.
    """

    regions: Dict[str, str] = field(default_factory=dict)
    intra_ms: float = 0.3
    link_ms: Dict[Tuple[str, str], float] = field(default_factory=dict)
    default_inter_ms: float = 10.0
    default_region: str = ""
    drift: Tuple[DriftPhase, ...] = ()

    def __post_init__(self) -> None:
        self.drift = tuple(sorted(self.drift, key=lambda phase: phase.at_ms))

    def region_of(self, node_id: str) -> str:
        return self.regions.get(node_id, self.default_region)

    def _phase_at(self, now_ms: float) -> Optional[DriftPhase]:
        current = None
        for phase in self.drift:
            if phase.at_ms > now_ms:
                break
            current = phase
        return current

    def latency_ms(self, sender: str, receiver: str, now_ms: float) -> float:
        """Directional propagation latency at virtual time *now_ms*."""
        source = self.region_of(sender)
        target = self.region_of(receiver)
        if source == target:
            base = self.intra_ms
        else:
            base = self.link_ms.get((source, target))
            if base is None:
                base = self.link_ms.get((target, source))
            if base is None:
                base = self.default_inter_ms
        phase = self._phase_at(now_ms)
        if phase is None:
            return base
        return base * phase.scale * phase.link_scale.get((source, target), 1.0)

    def min_latency_ms(self) -> float:
        """Lower bound on :meth:`latency_ms` over all links and all times.

        Used as the conservative lookahead for parallel sharded runs: no
        message can ever propagate faster than this, whatever the drift
        schedule does.
        """
        base = min([self.intra_ms, self.default_inter_ms, *self.link_ms.values()])
        scales = [1.0]
        for phase in self.drift:
            link_floor = min([1.0, *phase.link_scale.values()])
            scales.append(phase.scale * link_floor)
        return base * min(scales)


@dataclass
class NetworkConditions:
    """Cluster-wide network model.

    Attributes:
        latency_ms: one-way propagation delay between any two nodes.
        jitter_ms: uniform jitter added to each delivery, ``[0, jitter_ms]``.
        bandwidth_mbps: per-link bandwidth used for serialisation delay;
            ``None`` disables size-dependent delay.
        loss_rate: probability that a message is silently dropped.
        local_delivery_ms: delay for a node sending a message to itself.
        overrides: per-(sender, receiver) link overrides.
        topology: optional region-structured latency model; when set, it
            replaces ``latency_ms`` (link overrides still win) and may
            drift deterministically over virtual time.
        seed: seed for the conditions' private RNG.
    """

    latency_ms: float = 0.5
    jitter_ms: float = 0.05
    bandwidth_mbps: Optional[float] = 1000.0
    loss_rate: float = 0.0
    local_delivery_ms: float = 0.01
    overrides: Dict[Tuple[str, str], LinkOverride] = field(default_factory=dict)
    topology: Optional[LatencyTopology] = None
    seed: int = 1

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._uniform = self._rng.uniform
        # Serialization delay is sampled once per transmitted message; cache
        # the bytes/ms conversion instead of redoing it on every call.
        self._bytes_per_ms = (
            self.bandwidth_mbps * 1_000_000 / 8 / 1000.0
            if self.bandwidth_mbps else 0.0
        )

    @classmethod
    def lan(cls, seed: int = 1) -> "NetworkConditions":
        """Single-datacenter conditions (the paper's Google Cloud region).

        The bandwidth is the *effective per-node goodput* used for sender
        uplink accounting, not the NIC line rate; 2 Gbit/s reproduces the
        paper's observation that large PROPOSE payloads saturate the
        primary at larger replica counts (Figures 9(e)-(h)).
        """
        return cls(latency_ms=0.5, jitter_ms=0.05, bandwidth_mbps=2000.0, seed=seed)

    @classmethod
    def wan(cls, latency_ms: float = 40.0, seed: int = 1) -> "NetworkConditions":
        """Wide-area conditions used by the Figure 11 style experiments."""
        return cls(latency_ms=latency_ms, jitter_ms=0.5, bandwidth_mbps=1000.0, seed=seed)

    @classmethod
    def uniform_delay(cls, delay_ms: float, seed: int = 1) -> "NetworkConditions":
        """Fixed delay, no jitter, no bandwidth limit (pure Figure 11 model)."""
        return cls(latency_ms=delay_ms, jitter_ms=0.0, bandwidth_mbps=None,
                   loss_rate=0.0, local_delivery_ms=0.0, seed=seed)

    def override_link(self, sender: str, receiver: str, override: LinkOverride) -> None:
        """Install a per-link override (both directions must be set separately)."""
        self.overrides[(sender, receiver)] = override

    def serialization_delay_ms(self, size_bytes: int) -> float:
        """Delay attributable to pushing *size_bytes* through the link."""
        if not self._bytes_per_ms:
            return 0.0
        return size_bytes / self._bytes_per_ms

    def propagation_ms(self, sender: str, receiver: str,
                       now_ms: float = 0.0) -> Optional[float]:
        """Propagation delay (latency + jitter) for one message, ``None`` if lost.

        Serialization is *not* included; the network driver accounts for it
        on the sender's uplink so that large broadcasts (e.g. a PROPOSE to
        90 backups) occupy the sender's bandwidth once per receiver.
        """
        if sender == receiver:
            return self.local_delivery_ms
        if not self.overrides and self.loss_rate == 0.0 and self.topology is None:
            # Fast path for the common lossless, override-free conditions.
            # Draws the jitter through the same `uniform` call as the
            # general path, so the RNG stream (and with it determinism)
            # is unchanged.
            if self.jitter_ms > 0:
                return self.latency_ms + self._uniform(0.0, self.jitter_ms)
            return self.latency_ms
        override = self.overrides.get((sender, receiver))
        loss = override.loss_rate if override and override.loss_rate is not None else self.loss_rate
        if loss > 0 and self._rng.random() < loss:
            return None
        if override and override.latency_ms is not None:
            latency = override.latency_ms
        elif self.topology is not None:
            latency = self.topology.latency_ms(sender, receiver, now_ms)
        else:
            latency = self.latency_ms
        jitter = self._rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
        return latency + jitter

    def sample_delay_ms(self, sender: str, receiver: str, size_bytes: int,
                        now_ms: float = 0.0) -> Optional[float]:
        """Total delivery delay (propagation + serialization), ``None`` if lost."""
        propagation = self.propagation_ms(sender, receiver, now_ms)
        if propagation is None:
            return None
        if sender == receiver:
            return propagation
        return propagation + self.serialization_delay_ms(size_bytes)

    # -- Deterministic boundary model (parallel sharded runs) ------------
    #
    # Cross-shard traffic must carry send->deliver timestamps that every
    # driver (sequential reference, multiprocessing workers) computes
    # identically without sharing an RNG stream.  The boundary therefore
    # charges the *base* latency only: overrides and (drifting) topology
    # still apply, jitter and loss do not.

    def boundary_latency_ms(self, sender: str, receiver: str,
                            now_ms: float = 0.0) -> float:
        """RNG-free propagation latency for a cross-boundary message."""
        if self.overrides:
            override = self.overrides.get((sender, receiver))
            if override is not None and override.latency_ms is not None:
                return override.latency_ms
        if self.topology is not None:
            return self.topology.latency_ms(sender, receiver, now_ms)
        return self.latency_ms

    def boundary_delay_ms(self, sender: str, receiver: str, size_bytes: int,
                          now_ms: float = 0.0) -> float:
        """Total RNG-free boundary delay (latency + serialization)."""
        return (self.boundary_latency_ms(sender, receiver, now_ms)
                + self.serialization_delay_ms(size_bytes))

    def min_propagation_ms(self) -> float:
        """Lower bound on :meth:`boundary_latency_ms` over links and time.

        This is the conservative-parallel lookahead: a shard simulator at
        virtual time ``t`` cannot be affected by any boundary message sent
        at or after ``t`` until ``t + min_propagation_ms()``, so all
        simulators may safely advance that far between exchanges.
        """
        if self.topology is not None:
            candidates = [self.topology.min_latency_ms()]
        else:
            candidates = [self.latency_ms]
        for override in self.overrides.values():
            if override.latency_ms is not None:
                candidates.append(override.latency_ms)
        return min(candidates)
