"""Network condition models: latency, jitter, bandwidth and loss.

The evaluation fabric charges every message a delivery delay of

    propagation + serialisation + jitter

where serialisation is ``size_bytes / bandwidth``.  This captures the two
effects the paper leans on: message *count* (propagation-bound protocols,
Figure 11) and message *size* (the PROPOSE payload dominating bandwidth,
Figures 9(e)-(h) zero-payload experiments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class LinkOverride:
    """Per-link override of latency/loss (e.g. a slow or lossy replica)."""

    latency_ms: Optional[float] = None
    loss_rate: Optional[float] = None


@dataclass
class NetworkConditions:
    """Cluster-wide network model.

    Attributes:
        latency_ms: one-way propagation delay between any two nodes.
        jitter_ms: uniform jitter added to each delivery, ``[0, jitter_ms]``.
        bandwidth_mbps: per-link bandwidth used for serialisation delay;
            ``None`` disables size-dependent delay.
        loss_rate: probability that a message is silently dropped.
        local_delivery_ms: delay for a node sending a message to itself.
        overrides: per-(sender, receiver) link overrides.
        seed: seed for the conditions' private RNG.
    """

    latency_ms: float = 0.5
    jitter_ms: float = 0.05
    bandwidth_mbps: Optional[float] = 1000.0
    loss_rate: float = 0.0
    local_delivery_ms: float = 0.01
    overrides: Dict[Tuple[str, str], LinkOverride] = field(default_factory=dict)
    seed: int = 1

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._uniform = self._rng.uniform
        # Serialization delay is sampled once per transmitted message; cache
        # the bytes/ms conversion instead of redoing it on every call.
        self._bytes_per_ms = (
            self.bandwidth_mbps * 1_000_000 / 8 / 1000.0
            if self.bandwidth_mbps else 0.0
        )

    @classmethod
    def lan(cls, seed: int = 1) -> "NetworkConditions":
        """Single-datacenter conditions (the paper's Google Cloud region).

        The bandwidth is the *effective per-node goodput* used for sender
        uplink accounting, not the NIC line rate; 2 Gbit/s reproduces the
        paper's observation that large PROPOSE payloads saturate the
        primary at larger replica counts (Figures 9(e)-(h)).
        """
        return cls(latency_ms=0.5, jitter_ms=0.05, bandwidth_mbps=2000.0, seed=seed)

    @classmethod
    def wan(cls, latency_ms: float = 40.0, seed: int = 1) -> "NetworkConditions":
        """Wide-area conditions used by the Figure 11 style experiments."""
        return cls(latency_ms=latency_ms, jitter_ms=0.5, bandwidth_mbps=1000.0, seed=seed)

    @classmethod
    def uniform_delay(cls, delay_ms: float, seed: int = 1) -> "NetworkConditions":
        """Fixed delay, no jitter, no bandwidth limit (pure Figure 11 model)."""
        return cls(latency_ms=delay_ms, jitter_ms=0.0, bandwidth_mbps=None,
                   loss_rate=0.0, local_delivery_ms=0.0, seed=seed)

    def override_link(self, sender: str, receiver: str, override: LinkOverride) -> None:
        """Install a per-link override (both directions must be set separately)."""
        self.overrides[(sender, receiver)] = override

    def serialization_delay_ms(self, size_bytes: int) -> float:
        """Delay attributable to pushing *size_bytes* through the link."""
        if not self._bytes_per_ms:
            return 0.0
        return size_bytes / self._bytes_per_ms

    def propagation_ms(self, sender: str, receiver: str) -> Optional[float]:
        """Propagation delay (latency + jitter) for one message, ``None`` if lost.

        Serialization is *not* included; the network driver accounts for it
        on the sender's uplink so that large broadcasts (e.g. a PROPOSE to
        90 backups) occupy the sender's bandwidth once per receiver.
        """
        if sender == receiver:
            return self.local_delivery_ms
        if not self.overrides and self.loss_rate == 0.0:
            # Fast path for the common lossless, override-free conditions.
            # Draws the jitter through the same `uniform` call as the
            # general path, so the RNG stream (and with it determinism)
            # is unchanged.
            if self.jitter_ms > 0:
                return self.latency_ms + self._uniform(0.0, self.jitter_ms)
            return self.latency_ms
        override = self.overrides.get((sender, receiver))
        loss = override.loss_rate if override and override.loss_rate is not None else self.loss_rate
        if loss > 0 and self._rng.random() < loss:
            return None
        latency = override.latency_ms if override and override.latency_ms is not None else self.latency_ms
        jitter = self._rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
        return latency + jitter

    def sample_delay_ms(self, sender: str, receiver: str, size_bytes: int) -> Optional[float]:
        """Total delivery delay (propagation + serialization), ``None`` if lost."""
        propagation = self.propagation_ms(sender, receiver)
        if propagation is None:
            return None
        if sender == receiver:
            return propagation
        return propagation + self.serialization_delay_ms(size_bytes)
