"""Fault injection for the simulated network.

The paper's experiments exercise three failure modes:

* a crashed backup replica (Figures 9(a), 9(b), 9(e), 9(f), 9(i), 9(j));
* a crashed/benign-faulty primary triggering a view-change (Figure 10);
* byzantine primaries that equivocate or keep replicas "in the dark"
  (Example 3 in the paper), which the correctness tests exercise.

Faults are expressed as schedule entries applied to a :class:`SimNetwork`:
crash a node at a given time, partition groups of nodes, or silently drop
the messages a sender addresses to a set of receivers (dark replicas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class CrashFault:
    """Crash *node_id* at *at_ms*; optionally recover at *until_ms*."""

    node_id: str
    at_ms: float = 0.0
    until_ms: Optional[float] = None


@dataclass(frozen=True)
class PartitionFault:
    """Sever all links between *group_a* and *group_b* during a window."""

    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]
    at_ms: float = 0.0
    until_ms: Optional[float] = None

    def separates(self, sender: str, receiver: str) -> bool:
        return (sender in self.group_a and receiver in self.group_b) or (
            sender in self.group_b and receiver in self.group_a
        )


@dataclass(frozen=True)
class DarkReplicaFault:
    """Drop messages from *sender* to each receiver in *receivers*.

    Models a malicious primary that keeps a subset of replicas in the
    dark (paper, Example 3 case 2).
    """

    sender: str
    receivers: Tuple[str, ...]
    at_ms: float = 0.0
    until_ms: Optional[float] = None


@dataclass
class FaultSchedule:
    """A collection of faults applied to one simulation run.

    ``active`` and ``has_crashes`` are maintained attributes rather than
    properties: the network reads them once per transmitted/delivered
    message, and every mutation funnels through the ``add_*`` methods,
    which refresh them.
    """

    crashes: List[CrashFault] = field(default_factory=list)
    partitions: List[PartitionFault] = field(default_factory=list)
    dark_replicas: List[DarkReplicaFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._refresh_flags()

    def _refresh_flags(self) -> None:
        #: Whether any fault is configured (fast-path gate for ``drops``).
        self.active = bool(self.crashes or self.partitions or self.dark_replicas)
        #: Whether any crash fault is configured (gate for ``crashed_at``).
        self.has_crashes = bool(self.crashes)

    @classmethod
    def none(cls) -> "FaultSchedule":
        return cls()

    @classmethod
    def single_backup_crash(cls, node_id: str, at_ms: float = 0.0) -> "FaultSchedule":
        """The paper's standard "single backup failure" configuration."""
        return cls(crashes=[CrashFault(node_id=node_id, at_ms=at_ms)])

    @classmethod
    def primary_crash(cls, node_id: str, at_ms: float) -> "FaultSchedule":
        """Crash the primary mid-run to trigger a view-change (Figure 10)."""
        return cls(crashes=[CrashFault(node_id=node_id, at_ms=at_ms)])

    def add_crash(self, node_id: str, at_ms: float = 0.0,
                  until_ms: Optional[float] = None) -> "FaultSchedule":
        self.crashes.append(CrashFault(node_id=node_id, at_ms=at_ms, until_ms=until_ms))
        self._refresh_flags()
        return self

    def add_dark_replicas(self, sender: str, receivers: Iterable[str],
                          at_ms: float = 0.0,
                          until_ms: Optional[float] = None) -> "FaultSchedule":
        self.dark_replicas.append(
            DarkReplicaFault(sender=sender, receivers=tuple(receivers),
                             at_ms=at_ms, until_ms=until_ms)
        )
        self._refresh_flags()
        return self

    def add_partition(self, group_a: Iterable[str], group_b: Iterable[str],
                      at_ms: float = 0.0,
                      until_ms: Optional[float] = None) -> "FaultSchedule":
        self.partitions.append(
            PartitionFault(group_a=tuple(group_a), group_b=tuple(group_b),
                           at_ms=at_ms, until_ms=until_ms)
        )
        self._refresh_flags()
        return self

    # -- queries used by SimNetwork ------------------------------------------
    def crashed_at(self, node_id: str, now_ms: float) -> bool:
        """Is *node_id* crashed at *now_ms*?"""
        for crash in self.crashes:
            if crash.node_id != node_id:
                continue
            if now_ms < crash.at_ms:
                continue
            if crash.until_ms is not None and now_ms >= crash.until_ms:
                continue
            return True
        return False

    def crashed_nodes(self, now_ms: float) -> Set[str]:
        """All nodes crashed at *now_ms*."""
        return {c.node_id for c in self.crashes if self.crashed_at(c.node_id, now_ms)}

    def drops(self, sender: str, receiver: str, now_ms: float) -> bool:
        """Should a message from *sender* to *receiver* be dropped at *now_ms*?"""
        if self.crashed_at(sender, now_ms) or self.crashed_at(receiver, now_ms):
            return True
        for dark in self.dark_replicas:
            if dark.sender != sender or receiver not in dark.receivers:
                continue
            if now_ms < dark.at_ms:
                continue
            if dark.until_ms is not None and now_ms >= dark.until_ms:
                continue
            return True
        for partition in self.partitions:
            if not partition.separates(sender, receiver):
                continue
            if now_ms < partition.at_ms:
                continue
            if partition.until_ms is not None and now_ms >= partition.until_ms:
                continue
            return True
        return False
