"""Deterministic discrete-event simulator.

Everything in the evaluation fabric runs on top of this scheduler: message
deliveries, protocol timers, client request injection and per-replica CPU
accounting.  Time is virtual and measured in milliseconds (floats).  Two
properties matter for reproducibility:

* events scheduled for the same instant fire in insertion order (the heap
  key includes a monotonically increasing sequence number);
* all randomness used by the network and workloads flows through seeded
  generators owned by their respective components, never globals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time_ms: virtual time at which the event fires.
        seq: tie-breaking insertion sequence number.
        callback: zero-argument callable invoked when the event fires.
        cancelled: events can be cancelled in place (lazy deletion).
    """

    time_ms: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        self.cancelled = True


@dataclass
class Timer:
    """A named, cancellable timer owned by a node.

    Protocol state machines request timers through actions; the simulator
    (or the asyncio transport) materialises them and calls back into the
    protocol with the timer name on expiry.
    """

    owner: str
    name: str
    event: Event

    def cancel(self) -> None:
        self.event.cancel()

    @property
    def active(self) -> bool:
        return not self.event.cancelled


class Simulator:
    """Virtual-time event loop.

    The simulator also tracks per-node CPU availability: charging CPU time
    to a node models the single worker-thread bottleneck of the
    RESILIENTDB pipeline (Section III / Figure 6 of the paper).  A node's
    next CPU-bound step cannot start before its previous one finished.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._cpu_free_at: Dict[str, float] = {}
        self._processed_events = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for run-length guards)."""
        return self._processed_events

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError("cannot schedule events in the past")
        event = Event(time_ms=self._now + delay_ms, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute virtual time."""
        return self.schedule(max(0.0, time_ms - self._now), callback)

    def set_timer(self, owner: str, name: str, delay_ms: float,
                  callback: Callable[[], None]) -> Timer:
        """Create a named timer for a node."""
        event = self.schedule(delay_ms, callback)
        return Timer(owner=owner, name=name, event=event)

    # -- CPU accounting --------------------------------------------------------
    def charge_cpu(self, node: str, cost_ms: float) -> float:
        """Reserve *cost_ms* of CPU time on *node*.

        Returns the virtual time at which the work completes.  Work is
        serialised per node: if the node is already busy until ``t``, the
        new work occupies ``[t, t + cost_ms]``.
        """
        start = max(self._now, self._cpu_free_at.get(node, 0.0))
        finish = start + max(0.0, cost_ms)
        self._cpu_free_at[node] = finish
        return finish

    def cpu_free_at(self, node: str) -> float:
        """Virtual time at which *node*'s CPU becomes idle."""
        return max(self._now, self._cpu_free_at.get(node, 0.0))

    def reset_cpu(self, node: str) -> None:
        """Clear CPU accounting for a node (used when a node crashes)."""
        self._cpu_free_at.pop(node, None)

    # -- execution -------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time_ms)
            self._processed_events += 1
            event.callback()
            return True
        return False

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, *until_ms*, or *max_events*.

        Returns the virtual time when the run stopped.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until_ms is not None and event.time_ms > until_ms:
                self._now = until_ms
                break
            self.step()
            executed += 1
        if until_ms is not None and not self._queue:
            self._now = max(self._now, until_ms)
        return self._now

    def run_until_idle(self, max_events: int = 1_000_000) -> float:
        """Drain the event queue (with a safety cap on event count)."""
        return self.run(max_events=max_events)
