"""Deterministic discrete-event simulator.

Everything in the evaluation fabric runs on top of this scheduler: message
deliveries, protocol timers, client request injection and per-replica CPU
accounting.  Time is virtual and measured in milliseconds (floats).  Two
properties matter for reproducibility:

* events scheduled for the same instant fire in insertion order (the heap
  key includes a monotonically increasing sequence number);
* all randomness used by the network and workloads flows through seeded
  generators owned by their respective components, never globals.

The queue holds plain ``(time_ms, seq, callback)`` tuples rather than
comparable event objects: tuple comparison happens entirely in C, which is
what makes ``heappush``/``heappop`` the cheap part of the hot loop.
Cancellation uses a side table of sequence numbers (lazy deletion): a
cancelled entry stays in the heap and is skipped when it surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Set, Tuple


class Event:
    """Handle for a scheduled callback.

    The simulator returns one of these from :meth:`Simulator.schedule`; it
    is a cancellation token, not the heap entry itself.  ``cancel()``
    registers the entry's sequence number in the simulator's cancel table
    so the event is skipped when it reaches the head of the heap.

    Attributes:
        time_ms: virtual time at which the event fires.
        seq: tie-breaking insertion sequence number.
        cancelled: whether :meth:`cancel` was called.
    """

    __slots__ = ("time_ms", "seq", "cancelled", "_cancel_table")

    def __init__(self, time_ms: float, seq: int, cancel_table: Set[int]) -> None:
        self.time_ms = time_ms
        self.seq = seq
        self.cancelled = False
        self._cancel_table = cancel_table

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        if not self.cancelled:
            self.cancelled = True
            self._cancel_table.add(self.seq)


@dataclass(slots=True)
class Timer:
    """A named, cancellable timer owned by a node.

    Protocol state machines request timers through actions; the simulator
    (or the asyncio transport) materialises them and calls back into the
    protocol with the timer name on expiry.
    """

    owner: str
    name: str
    event: Event

    def cancel(self) -> None:
        self.event.cancel()

    @property
    def active(self) -> bool:
        return not self.event.cancelled


class Simulator:
    """Virtual-time event loop.

    The simulator also tracks per-node CPU availability: charging CPU time
    to a node models the single worker-thread bottleneck of the
    RESILIENTDB pipeline (Section III / Figure 6 of the paper).  A node's
    next CPU-bound step cannot start before its previous one finished.
    """

    __slots__ = ("_queue", "_seq", "_now", "_cpu_free_at",
                 "_processed_events", "_cancelled")

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._cpu_free_at: Dict[str, float] = {}
        self._processed_events = 0
        self._cancelled: Set[int] = set()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for run-length guards)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Heap entries not yet popped (cancelled entries included)."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError("cannot schedule events in the past")
        seq = self._seq
        self._seq = seq + 1
        time_ms = self._now + delay_ms
        heappush(self._queue, (time_ms, seq, callback))
        return Event(time_ms, seq, self._cancelled)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute virtual time (clamped to now)."""
        delay = time_ms - self._now
        return self.schedule(delay if delay > 0.0 else 0.0, callback)

    def post_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at an absolute time without a cancel token.

        Message deliveries — the bulk of all scheduled events — are never
        cancelled, so the :class:`Event` handle :meth:`schedule` allocates
        per call is pure overhead for them.  The clamp arithmetic mirrors
        :meth:`schedule_at` + :meth:`schedule` exactly (``now + (t - now)``,
        not ``t``) so the produced timestamps, and with them heap ordering
        and determinism, are bit-identical to the token-returning path.
        """
        delay = time_ms - self._now
        if delay < 0.0:
            delay = 0.0
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, seq, callback))

    def set_timer(self, owner: str, name: str, delay_ms: float,
                  callback: Callable[[], None]) -> Timer:
        """Create a named timer for a node."""
        event = self.schedule(delay_ms, callback)
        return Timer(owner=owner, name=name, event=event)

    # -- CPU accounting --------------------------------------------------------
    def charge_cpu(self, node: str, cost_ms: float) -> float:
        """Reserve *cost_ms* of CPU time on *node*.

        Returns the virtual time at which the work completes.  Work is
        serialised per node: if the node is already busy until ``t``, the
        new work occupies ``[t, t + cost_ms]``.
        """
        free_at = self._cpu_free_at.get(node, 0.0)
        start = self._now if self._now > free_at else free_at
        finish = start + (cost_ms if cost_ms > 0.0 else 0.0)
        self._cpu_free_at[node] = finish
        return finish

    def cpu_free_at(self, node: str) -> float:
        """Virtual time at which *node*'s CPU becomes idle."""
        return max(self._now, self._cpu_free_at.get(node, 0.0))

    def reset_cpu(self, node: str) -> None:
        """Clear CPU accounting for a node (used when a node crashes)."""
        self._cpu_free_at.pop(node, None)

    # -- execution -------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` if none remain."""
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            time_ms, seq, callback = heappop(queue)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            if time_ms > self._now:
                self._now = time_ms
            self._processed_events += 1
            callback()
            return True
        return False

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, *until_ms*, or *max_events*.

        Cancelled entries never count against *max_events*.  Returns the
        virtual time when the run stopped.
        """
        queue = self._queue
        cancelled = self._cancelled
        executed = 0
        while queue:
            if max_events is not None and executed >= max_events:
                break
            # Pop first and push back in the rare beyond-the-horizon case:
            # peeking then popping touches the heap head twice per event.
            entry = heappop(queue)
            time_ms, seq, callback = entry
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            if until_ms is not None and time_ms > until_ms:
                heappush(queue, entry)
                self._now = until_ms
                break
            if time_ms > self._now:
                self._now = time_ms
            self._processed_events += 1
            callback()
            executed += 1
        if until_ms is not None and not queue:
            self._now = max(self._now, until_ms)
        return self._now

    def run_until_idle(self, max_events: int = 1_000_000) -> float:
        """Drain the event queue (with a safety cap on event count)."""
        return self.run(max_events=max_events)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live pending event, ``None`` if idle.

        Cancelled heap entries encountered on the way are discarded (they
        would be skipped by :meth:`run` anyway and never count as
        processed), so the probe is amortised O(1) and leaves the head of
        the heap live.  The windowed sharded drivers use this as each
        runtime's horizon when computing the next conservative window
        edge; it never runs callbacks and never moves the clock.
        """
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            time_ms, seq, _ = queue[0]
            if cancelled and seq in cancelled:
                heappop(queue)
                cancelled.discard(seq)
                continue
            return time_ms
        return None


class ControlledScheduler(Simulator):
    """A simulator whose pending events are explicit, labelled choices.

    The bounded model checker (:mod:`repro.fabric.modelcheck`) drives a
    cluster through *every* delivery ordering instead of timestamp order.
    This subclass is its scheduler: :meth:`choices` lists the live
    (non-cancelled) pending events with stable, hashable labels, and
    :meth:`fire` executes one chosen event regardless of its position in
    the heap.  Firing out of timestamp order is safe — the clock only
    ever advances (``now = max(now, event time)``), which models an
    asynchronous network where any undelivered message may arrive next.

    Labels are how a recorded trace stays replayable and how the pending
    set enters the state fingerprint:

    * timers carry ``("timer", owner, name)`` (captured in
      :meth:`set_timer`);
    * message deliveries are recognised by their
      ``partial(SimNetwork._deliver, sender, receiver, handle, message)``
      callback shape and labelled with sender, receiver, message type and
      a content tag;
    * anything else (crash/recover transitions) is labelled explicitly by
      its scheduler via :meth:`note_label`, falling back to the
      callback's qualified name.

    The base class is untouched: none of this bookkeeping runs when a
    plain :class:`Simulator` drives a benchmark (``post_at``/``step``
    keep their hot-path shape), so the perf-smoke event pins cannot move.
    """

    __slots__ = ("_labels",)

    def __init__(self) -> None:
        super().__init__()
        #: seq -> label for events whose label is not derivable from the
        #: callback alone (timers, fault transitions).
        self._labels: Dict[int, Tuple] = {}

    # -- labelling -----------------------------------------------------------
    def set_timer(self, owner: str, name: str, delay_ms: float,
                  callback: Callable[[], None]) -> Timer:
        timer = super().set_timer(owner, name, delay_ms, callback)
        self._labels[timer.event.seq] = ("timer", owner, name)
        return timer

    def note_label(self, event: Event, label: Tuple) -> None:
        """Attach an explicit label to a scheduled event (fault hooks)."""
        self._labels[event.seq] = label

    @staticmethod
    def _message_tag(message: object) -> object:
        """Content tag distinguishing same-type messages in one mailbox.

        Equivocated proposals share (type, view, sequence) but differ in
        payload; the tag keeps their labels — and with them the pending
        part of the state fingerprint — distinct.
        """
        batch = getattr(message, "batch", None)
        if batch is not None:
            return (batch.batch_id, batch.digest())
        for attr in ("proposal_digest", "state_digest", "batch_digest",
                     "batch_id"):
            value = getattr(message, attr, None)
            if value:
                return value
        return None

    def _label_of(self, seq: int, callback: Callable[[], None]) -> Tuple:
        label = self._labels.get(seq)
        if label is not None:
            return label
        func = getattr(callback, "func", None)
        if func is not None and getattr(func, "__name__", "") == "_deliver":
            sender, receiver, _handle, message = callback.args
            return ("deliver", sender, receiver, type(message).__name__,
                    getattr(message, "view", None),
                    getattr(message, "sequence", None),
                    self._message_tag(message))
        name = getattr(callback, "__qualname__", None) or repr(callback)
        return ("opaque", name)

    # -- choice points -------------------------------------------------------
    def choices(self) -> List[Tuple[int, float, Tuple]]:
        """Live pending events as ``(seq, time_ms, label)``, canonically
        ordered by ``(time_ms, seq)`` — the order :meth:`step` would use."""
        cancelled = self._cancelled
        live = [(time_ms, seq, self._label_of(seq, callback))
                for time_ms, seq, callback in self._queue
                if seq not in cancelled]
        live.sort(key=lambda entry: (entry[0], entry[1]))
        return [(seq, time_ms, label) for time_ms, seq, label in live]

    def fire(self, seq: int) -> None:
        """Execute the pending event *seq*, wherever it sits in the heap.

        Queue surgery is O(n) + a re-heapify — irrelevant at model-check
        scale (a handful of pending events), and the timestamp invariants
        of :meth:`step` are preserved: the clock never goes backwards.
        """
        queue = self._queue
        for index, entry in enumerate(queue):
            if entry[1] == seq:
                break
        else:
            raise KeyError(f"no pending event with seq {seq}")
        if seq in self._cancelled:
            raise KeyError(f"event {seq} was cancelled")
        time_ms, _, callback = entry
        last = queue.pop()
        if index < len(queue):
            queue[index] = last
            heapify(queue)
        self._labels.pop(seq, None)
        if time_ms > self._now:
            self._now = time_ms
        self._processed_events += 1
        callback()
