"""Deterministic Byzantine behaviours for the simulated network.

The paper's safety argument (Section II-C, Example 3) is about what a
*malicious* primary can do, not merely a crashed one: it can equivocate
(send conflicting proposals to disjoint halves of the replicas), keep
replicas in the dark, replay or delay messages, and ship stale or garbage
certificates.  The fault schedule in :mod:`repro.net.faults` only covers
omission faults; this module adds active misbehaviour.

A :class:`ByzantineBehavior` is attached to one replica through
:meth:`repro.net.network.SimNetwork.set_byzantine`.  The replica keeps
running its *honest* protocol state machine — Byzantine action happens at
the network boundary, where the behaviour intercepts every outgoing
fan-out and may tamper with, duplicate, delay, drop or fabricate
messages.  Two properties are load-bearing:

* **Transport senders cannot be forged.**  Fabricated messages are still
  transmitted as the Byzantine node, so a protocol that binds vote
  identity to the transport-level sender is immune to identity spoofing
  while one that trusts a ``replica_id`` field in the payload is not
  (this is exactly the regression the safety auditor guards).
* **Determinism.**  Behaviours draw randomness only from a seeded
  :class:`random.Random` bound at attach time, so Byzantine runs are
  byte-identical across same-seed executions (pinned by
  ``tests/test_determinism.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.messages import (
    CertifiedEntry,
    PoeCertify,
    PoePropose,
    PoeSupport,
    PoeViewChangeRequest,
)
from repro.core.view_change import proposal_digest as poe_proposal_digest
from repro.crypto.hashing import digest
from repro.ledger.execution import modelled_result_digest
from repro.protocols.base import Message
from repro.protocols.checkpoint import CheckpointMessage, StateTransferResponse
from repro.protocols.hotstuff import HotStuffProposal
from repro.protocols.pbft import (
    PbftCommit,
    PbftExecutedEntry,
    PbftPrePrepare,
    PbftPrepare,
    PbftViewChange,
)
from repro.protocols.sbft import SbftPrePrepare, SbftViewChange
from repro.protocols.zyzzyva import (
    ZyzzyvaCommitCertificate,
    ZyzzyvaHistoryEntry,
    ZyzzyvaOrderRequest,
    ZyzzyvaProofOfMisbehaviour,
    ZyzzyvaViewChange,
)
from repro.workload.transactions import RequestBatch, Transaction


@dataclass(slots=True)
class Delivery:
    """One message scheduled for transmission to one receiver."""

    receiver: str
    message: Message
    delay_ms: float = 0.0


class ByzantineBehavior:
    """Base class: transforms the fan-outs a Byzantine node transmits.

    Subclasses override :meth:`transform` (and optionally :meth:`on_bind`).
    The identity transform makes the node behave honestly.

    *Replica-level* behaviours additionally override :meth:`install`,
    which receives the replica object itself at cluster build time: unlike
    the network-boundary transforms, an installed behaviour can corrupt
    the replica's *state machine* (execute a wrong batch, journal a forged
    history) — the class of misbehaviour the speculative-consensus
    correctness literature dissects and the wire-level repertoire cannot
    reach.  Installed behaviours must stay deterministic: derive anything
    random from ``self.rng``, never from global randomness.
    """

    def __init__(self) -> None:
        self.node_id: str = ""
        self.replica_ids: List[str] = []
        self.rng: Random = Random(0)
        self.network = None

    def bind(self, node_id: str, replica_ids: Sequence[str], seed: object) -> None:
        """Attach the behaviour to *node_id* in a deployment (idempotent)."""
        self.node_id = node_id
        self.replica_ids = list(replica_ids)
        self.rng = Random(f"byzantine:{node_id}:{seed}")
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses needing derived state (groups, targets...)."""

    def attach_network(self, network) -> None:
        """Hook giving the behaviour a handle on the live network fabric.

        Called by :meth:`SimNetwork.set_byzantine` right after
        :meth:`bind`.  Adaptive behaviours use it to mount reactive
        attacks (crash/partition the *current* primary) that static fault
        schedules cannot express.  The default just stores the handle.
        """
        self.network = network

    def install(self, replica) -> None:
        """Hook for replica-level behaviours: corrupt the state machine.

        Called once by the cluster builder with the Byzantine node's
        replica object, after :meth:`bind`.  The default does nothing —
        network-boundary behaviours never touch the replica.
        """

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        """Rewrite one outgoing fan-out (a unicast is a one-element list)."""
        return deliveries


class EquivocatingPrimary(ByzantineBehavior):
    """A primary that proposes conflicting batches to disjoint halves.

    The honest half (``group_a``, ``f`` replicas) receives the primary's
    real proposals; the dark half (``group_b``, ``nf - 1`` replicas, so
    that together with the primary it can reach an ``nf`` quorum) receives
    a *forged* batch under the same (view, sequence) slot.  Forged batches
    carry fresh batch ids, modelling requests the primary fabricated
    itself — it cannot forge client signatures, so tampering an existing
    client batch in place is not an available attack.

    With ``spoof_votes`` the primary additionally fabricates the vote
    messages of ``group_b`` (PoE MAC SUPPORTs, PBFT PREPARE/COMMITs) and
    sends them to ``group_a``, claiming forged ``replica_id`` values.  If
    a protocol counts those claimed identities, both halves reach a
    quorum on *conflicting* batches at the same sequence number — a
    safety violation the auditor reports as a divergent prefix.  With
    vote identity correctly bound to the transport sender the forged
    votes all collapse onto the primary and the honest half can never
    complete its quorum.
    """

    #: Message types that carry a proposal (per-protocol equivocation points).
    PROPOSAL_TYPES = (PoePropose, PbftPrePrepare, SbftPrePrepare,
                      ZyzzyvaOrderRequest, HotStuffProposal)

    def __init__(self, spoof_votes: bool = True) -> None:
        super().__init__()
        self.spoof_votes = spoof_votes
        self.group_a: Set[str] = set()
        self.group_b: Set[str] = set()
        self._forged: Dict[Tuple[int, int], RequestBatch] = {}
        #: (view, sequence) -> (real PBFT digest, forged PBFT digest), used
        #: to keep the primary's own PREPARE/COMMIT votes consistent with
        #: whichever proposal each half received.
        self._pbft_digests: Dict[Tuple[int, int], Tuple[bytes, bytes]] = {}
        #: (view, sequence) -> forged Zyzzyva history digest: the dark half
        #: must see a *coherent* alternative history chain, or the forgery
        #: is trivially detectable from one message.
        self._forged_history: Dict[Tuple[int, int], bytes] = {}
        #: (view, sequence) -> the *real* Zyzzyva history digest observed on
        #: the wire.  A windowed equivocator (``CheckpointEquivocator``)
        #: sends the dark half honest orderings between windows, so a forged
        #: slot must chain from the real history of its predecessor — not
        #: from a forged entry that was never sent.
        self._real_history: Dict[Tuple[int, int], bytes] = {}
        self._spoofed_slots: Set[Tuple[type, int, int]] = set()

    def on_bind(self) -> None:
        others = [r for r in self.replica_ids if r != self.node_id]
        n = len(self.replica_ids)
        f = (n - 1) // 3
        nf = n - f
        # group_b must reach nf together with the primary itself.
        split = max(0, min(len(others), nf - 1))
        self.group_b = set(others[len(others) - split:])
        self.group_a = set(others[: len(others) - split])

    # ------------------------------------------------------------- forgery
    def _forged_batch(self, view: int, sequence: int, real: RequestBatch) -> RequestBatch:
        key = (view, sequence)
        forged = self._forged.get(key)
        if forged is None:
            transactions = tuple(
                Transaction(txn_id=f"byz:{view}:{sequence}:{i}",
                            client_id=self.node_id, operations=(),
                            created_at_ms=real.created_at_ms)
                for i in range(len(real.transactions))
            )
            forged = RequestBatch(
                batch_id=f"byz:{self.node_id}:{view}:{sequence}",
                transactions=transactions,
                created_at_ms=real.created_at_ms,
                reply_to=real.reply_to,
                logical_size=real.logical_size,
            )
            self._forged[key] = forged
        return forged

    def _pbft_digest_pair(self, view: int, sequence: int,
                          real_batch: RequestBatch) -> Tuple[bytes, bytes]:
        key = (view, sequence)
        pair = self._pbft_digests.get(key)
        if pair is None:
            forged = self._forged_batch(view, sequence, real_batch)
            pair = (digest("pbft", view, sequence, real_batch.digest()),
                    digest("pbft", view, sequence, forged.digest()))
            self._pbft_digests[key] = pair
        return pair

    def _equivocate(self, message: Message) -> Optional[Message]:
        """Build the conflicting variant of a proposal for ``group_b``."""
        if isinstance(message, HotStuffProposal):
            # HotStuff is the only proposal whose digest chains to a parent
            # block; the forged block must recompute it or receivers reject.
            if message.batch is None:
                return None
            forged = self._forged_batch(0, message.round_number, message.batch)
            justify = message.justify
            parent = justify.block_digest if justify is not None else b"genesis"
            block_digest = digest("hotstuff-block", message.round_number,
                                  forged.digest(), parent)
            return dataclasses.replace(message, batch=forged,
                                       block_digest=block_digest)
        if isinstance(message, ZyzzyvaOrderRequest):
            # Zyzzyva orderings chain a history digest; the forged ordering
            # recomputes the chain over the forged batches so the dark half
            # accepts (and echoes) a self-consistent alternative history.
            forged = self._forged_batch(message.view, message.sequence, message.batch)
            key = (message.view, message.sequence)
            previous = self._forged_history.get((message.view, message.sequence - 1))
            if previous is None:
                previous = self._real_history.get(
                    (message.view, message.sequence - 1),
                    digest("zyzzyva-history", "genesis"))
            forged_history = digest("zyzzyva-history", previous,
                                    message.sequence, forged.digest())
            self._forged_history[key] = forged_history
            return dataclasses.replace(message, batch=forged,
                                       history_digest=forged_history)
        if isinstance(message, (PoePropose, PbftPrePrepare, SbftPrePrepare)):
            forged = self._forged_batch(message.view, message.sequence, message.batch)
            if isinstance(message, PbftPrePrepare):
                # Cache the digest pair so the primary's own PREPARE/COMMIT
                # votes can be kept consistent with each half's proposal.
                self._pbft_digest_pair(message.view, message.sequence, message.batch)
            return dataclasses.replace(message, batch=forged)
        return None

    def _spoofed_votes(self, message: Message) -> List[Delivery]:
        """Fabricate group_b's votes for the *real* proposal, addressed to
        group_a under forged identities."""
        votes: List[Delivery] = []
        slot_key = (type(message), getattr(message, "view", 0),
                    getattr(message, "sequence", getattr(message, "round_number", 0)))
        if slot_key in self._spoofed_slots:
            return votes
        self._spoofed_slots.add(slot_key)
        if isinstance(message, PoePropose):
            real_digest = poe_proposal_digest(message.sequence, message.view,
                                              message.batch.digest())
            for forged_id in sorted(self.group_b):
                support = PoeSupport(view=message.view, sequence=message.sequence,
                                     proposal_digest=real_digest,
                                     replica_id=forged_id)
                for receiver in sorted(self.group_a):
                    votes.append(Delivery(receiver, support))
        elif isinstance(message, PbftPrePrepare):
            real_digest, _ = self._pbft_digest_pair(message.view, message.sequence,
                                                    message.batch)
            for forged_id in sorted(self.group_b):
                prepare = PbftPrepare(view=message.view, sequence=message.sequence,
                                      batch_digest=real_digest, replica_id=forged_id)
                commit = PbftCommit(view=message.view, sequence=message.sequence,
                                    batch_digest=real_digest, replica_id=forged_id)
                for receiver in sorted(self.group_a):
                    votes.append(Delivery(receiver, prepare))
                    votes.append(Delivery(receiver, commit))
        return votes

    def _consistent_vote(self, message: Message, receiver: str) -> Message:
        """Keep the primary's own PBFT votes consistent per half."""
        if receiver in self.group_b and isinstance(message, (PbftPrepare, PbftCommit)):
            digests = self._pbft_digests.get((message.view, message.sequence))
            if digests is not None and message.batch_digest == digests[0]:
                return dataclasses.replace(message, batch_digest=digests[1])
        return message

    def _equivocation_active(self, message: Message) -> bool:
        """Whether *this* proposal is equivocated (hook for windowed
        variants such as :class:`CheckpointEquivocator`)."""
        return True

    # ------------------------------------------------------------ transform
    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out: List[Delivery] = []
        spoofed: List[Delivery] = []
        for delivery in deliveries:
            message = delivery.message
            if isinstance(message, self.PROPOSAL_TYPES):
                if isinstance(message, ZyzzyvaOrderRequest):
                    self._real_history.setdefault(
                        (message.view, message.sequence), message.history_digest)
                if self._equivocation_active(message):
                    if delivery.receiver in self.group_b:
                        forged = self._equivocate(message)
                        if forged is not None:
                            out.append(Delivery(delivery.receiver, forged,
                                                delivery.delay_ms))
                            continue
                    elif self.spoof_votes:
                        spoofed.extend(self._spoofed_votes(message))
            out.append(Delivery(delivery.receiver,
                                self._consistent_vote(message, delivery.receiver),
                                delivery.delay_ms))
        out.extend(spoofed)
        return out


class AdaptiveBehavior(ByzantineBehavior):
    """Base for behaviours that *react* to live protocol state.

    Static behaviours fix their strategy at t = 0; the reactive strategies
    the speculative-consensus correctness literature dissects (target the
    current primary, misbehave only near recovery boundaries) need to
    observe the system as it runs.  An adaptive behaviour reads that state
    from two handles it already gets for free: the replica object passed
    to :meth:`install` (live view number, checkpoint state — the replica
    keeps running its honest state machine, so its view tracks the
    cluster's) and the network fabric from :meth:`attach_network` (to
    mount crash/partition attacks mid-run).

    Determinism is preserved because every decision is a function of
    virtual time and the replica's own deterministic state; ``self.rng``
    remains the only randomness source.
    """

    def __init__(self) -> None:
        super().__init__()
        self.replica = None

    def install(self, replica) -> None:
        self.replica = replica

    def observed_view(self) -> int:
        """The view the behaviour's own (honest) replica is currently in."""
        return getattr(self.replica, "view", 0) if self.replica is not None else 0

    def observed_primary(self) -> str:
        """Who the behaviour's replica believes is primary right now."""
        if self.replica is None:
            return ""
        return self.replica.config.primary_of_view(self.observed_view())


class PrimaryTargeter(AdaptiveBehavior):
    """Attacks whoever is primary *now*, re-targeting after view changes.

    A static schedule can only crash the primary of view 0; this adaptive
    attacker follows the leadership as it moves — each time its own
    replica's view advances past an attacked primary, the *new* primary
    becomes the target.  Two modes:

    * ``partition`` (default): sever all replica links to the current
      primary for ``window_ms``, then heal.  The isolated primary keeps
      serving clients into a void; the backups' progress timers fire and
      drive a view change.  Healed primaries rejoin via checkpoints.
    * ``crash``: crash the primary outright (permanent).  The attack
      budget must then stay within ``f`` or the attacker trades its own
      liveness away with everyone else's.

    ``max_targets`` bounds the campaign so targeted cells terminate: after
    the budget is spent the behaviour goes silent and the last elected
    primary makes progress.
    """

    def __init__(self, mode: str = "partition", window_ms: float = 60.0,
                 max_targets: int = 2, initial_delay_ms: float = 10.0) -> None:
        super().__init__()
        if mode not in ("partition", "crash"):
            raise ValueError(f"unknown PrimaryTargeter mode {mode!r}")
        self.mode = mode
        self.window_ms = window_ms
        self.max_targets = max_targets
        self.initial_delay_ms = initial_delay_ms
        self.attacked: List[str] = []

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        self._maybe_attack(now_ms)
        return deliveries

    def _maybe_attack(self, now_ms: float) -> None:
        if self.network is None or len(self.attacked) >= self.max_targets:
            return
        if now_ms < self.initial_delay_ms:
            return
        primary = self.observed_primary()
        if not primary or primary == self.node_id or primary in self.attacked:
            return
        self.attacked.append(primary)
        if self.mode == "crash":
            self.network.crash(primary, at_ms=now_ms)
        else:
            others = [r for r in self.replica_ids if r != primary]
            self.network.faults.add_partition(
                [primary], others, at_ms=now_ms,
                until_ms=now_ms + self.window_ms)


class CheckpointEquivocator(EquivocatingPrimary, AdaptiveBehavior):
    """Equivocates only within a window of checkpoint boundaries.

    An always-on equivocator is loud: every slot disagrees, so the first
    vote round already exposes it.  This variant behaves honestly for most
    slots and forks only the last ``window`` slots before each checkpoint
    boundary — exactly where a divergent batch would be laundered into a
    stable checkpoint if the checkpoint vote did not require ``f + 1``
    *matching* digests.  The boundary position is read live from the
    replica's own configuration, so the attack tracks whatever interval
    the deployment runs with.

    Zyzzyva note: between windows the dark half accepts the *real*
    orderings, so forged slots chain from the real predecessor history
    (see ``EquivocatingPrimary._real_history``) — each forged message
    stays locally coherent and only the vote round catches the fork.
    """

    def __init__(self, spoof_votes: bool = False, window: int = 2) -> None:
        super().__init__(spoof_votes=spoof_votes)
        self.window = max(1, window)

    def _equivocation_active(self, message: Message) -> bool:
        replica = self.replica
        interval = replica.config.checkpoint_interval if replica is not None else 0
        if interval <= 0:
            return True
        sequence = getattr(message, "sequence", None)
        if sequence is None:
            sequence = getattr(message, "round_number", 0)
        # Distance (in slots) from this sequence to its checkpoint
        # boundary; boundaries sit at (sequence + 1) % interval == 0.
        distance = interval - 1 - (sequence % interval)
        return distance < self.window


class TimeoutStaller(AdaptiveBehavior):
    """Withholds its view-change vote until just before the retry deadline.

    The recovery protocol retries an unfinished view change after an
    exponential backoff.  A replica that simply never votes is eventually
    routed around; this one *rides the schedule*: it joins each view
    change it is needed for, but delays its VIEW-CHANGE broadcast so it
    lands ``lead_ms`` before the honest replicas' retry deadline — the
    maximum stall that still lets the view change complete, repeated for
    ``max_stalls`` views before the budget forces honesty.  Nothing it
    does is provably faulty (the messages are well-formed and honest),
    which is what makes the timing attack a pure liveness probe: the
    auditor must find every cell safe, just slower.

    HotStuff rotates leaders on a pacemaker instead of running this
    recovery protocol, so the behaviour is a no-op there.
    """

    VC_REQUEST_TYPES = (PoeViewChangeRequest, PbftViewChange,
                        SbftViewChange, ZyzzyvaViewChange)

    def __init__(self, lead_ms: float = 10.0, max_stalls: int = 2) -> None:
        super().__init__()
        self.lead_ms = lead_ms
        self.max_stalls = max_stalls
        self.stalls = 0
        self._stalled_views: Set[int] = set()

    def _stall_delay(self) -> float:
        replica = self.replica
        attempts = getattr(replica, "_vc_failed_attempts", 0)
        cap = getattr(replica, "VC_BACKOFF_CAP", 5)
        backoff = replica.config.request_timeout_ms * 2 * (2 ** min(attempts, cap))
        return max(0.0, backoff - self.lead_ms)

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        if self.replica is None or not deliveries:
            return deliveries
        message = deliveries[0].message
        if not isinstance(message, self.VC_REQUEST_TYPES):
            return deliveries
        view = getattr(message, "view", 0)
        if view in self._stalled_views or self.stalls >= self.max_stalls:
            return deliveries
        self._stalled_views.add(view)
        self.stalls += 1
        extra = self._stall_delay()
        if extra <= 0.0:
            return deliveries
        return [Delivery(d.receiver, d.message, d.delay_ms + extra)
                for d in deliveries]


# ---------------------------------------------------------------------------
# The colluding tier: up to ``f`` conspirators sharing one playbook.


@dataclass
class ColludingPlaybook:
    """Shared strategy state for a cabal of up to ``f`` conspirators.

    Independent Byzantine replicas each fight alone; the reconfiguration
    attack surface (epoch-activation windows, membership churn) rewards
    *coordination* — equivocate only while the cabal holds the primary
    seat, park a poisoned vote until the activation boundary.  The
    playbook is the cabal's out-of-band channel: one shared object the
    cluster builder links into every conspirator of a deployment, so a
    behaviour can ask "does one of us hold the seat right now?" without
    any in-band (auditable) traffic.  It holds only replica ids, so
    determinism is inherited from the deterministic protocol state the
    conspirators observe.
    """

    members: List[str] = field(default_factory=list)

    def enroll(self, node_id: str) -> None:
        if node_id and node_id not in self.members:
            self.members.append(node_id)

    def is_conspirator(self, replica_id: str) -> bool:
        return replica_id in self.members


class ColludingBehavior(AdaptiveBehavior):
    """Base for conspirators: adaptive behaviours linked to a playbook.

    The cluster builder recognises the ``wants_playbook`` marker and
    assigns one shared :class:`ColludingPlaybook` to every conspirator
    (after :meth:`bind`, so enrolment sees the real ``node_id``).
    """

    wants_playbook = True

    def __init__(self) -> None:
        super().__init__()
        self._playbook: Optional[ColludingPlaybook] = None

    @property
    def playbook(self) -> Optional[ColludingPlaybook]:
        return self._playbook

    @playbook.setter
    def playbook(self, value: Optional[ColludingPlaybook]) -> None:
        self._playbook = value
        if value is not None and self.node_id:
            value.enroll(self.node_id)

    def observed_primary(self) -> str:
        # Epoch-aware: after a reconfiguration the primary rotation runs
        # over the active epoch's membership, not the boot membership.
        replica = self.replica
        if replica is not None and hasattr(replica, "primary_for_view"):
            return replica.primary_for_view(self.observed_view())
        return super().observed_primary()

    def cabal_holds_seat(self) -> bool:
        """Whether the primary this conspirator observes is a conspirator."""
        playbook = self._playbook
        return (playbook is not None
                and playbook.is_conspirator(self.observed_primary()))


class ColludingEquivocator(EquivocatingPrimary, ColludingBehavior):
    """Equivocates only while the cabal holds the primary seat.

    A lone always-on equivocator keeps forking slots even after a view
    change strips it of the seat, so its forged traffic is pure noise
    that unmasks it.  The playbook rule is tighter: fork a slot only
    while the primary this conspirator's own replica observes is a
    cabal member (usually itself), and only for the first ``max_slots``
    forged slots — after the budget the cabal goes permanently covert
    and the cell terminates with honest progress.  A slot already forged
    stays forked for its retransmissions; flipping back mid-slot would
    hand the dark half a digest mismatch that exposes the attack in one
    message.
    """

    def __init__(self, spoof_votes: bool = False, max_slots: int = 6) -> None:
        super().__init__(spoof_votes=spoof_votes)
        self.max_slots = max_slots

    def _slot_key(self, message: Message) -> Tuple[int, int]:
        if isinstance(message, HotStuffProposal):
            return (0, message.round_number)
        return (getattr(message, "view", 0), getattr(message, "sequence", 0))

    def _equivocation_active(self, message: Message) -> bool:
        if self._slot_key(message) in self._forged:
            return True
        if len(self._forged) >= self.max_slots:
            return False
        return self.cabal_holds_seat()


class ColludingVoteParker(ColludingBehavior):
    """Parks its checkpoint votes while the cabal holds the primary seat.

    Checkpoint votes are the only commitment a backup makes about
    *stable* state, and epochs activate exactly at checkpoint boundaries
    — so a conspirator that withholds its votes while a fellow
    conspirator drives consensus maximises ambiguity about which
    boundary stabilised.  Parked votes are released in arrival order
    when (a) the replica's own epoch machinery arms a pending activation
    — the epoch-activation window, where a stale boundary vote is most
    likely to be miscounted against the wrong membership — (b) the cabal
    loses the seat (staying covert), or (c) ``max_park_ms`` passes,
    bounding the stall so every cell terminates.

    With ``poison=True`` each release also fabricates a corrupted
    duplicate (garbage state digest) of the released vote.  Per-digest
    vote buckets mean the poison lands in a bucket of its own and must
    change nothing — a probe for the auditor's quorum-at-the-time
    re-validation, not a liveness attack.
    """

    def __init__(self, poison: bool = False, max_park_ms: float = 120.0,
                 max_parked: int = 12) -> None:
        super().__init__()
        self.poison = poison
        self.max_park_ms = max_park_ms
        self.max_parked = max_parked
        self.released = 0
        self._parked: List[Tuple[float, Delivery]] = []

    def _release_due(self, now_ms: float) -> bool:
        if not self._parked:
            return False
        if getattr(self.replica, "_pending_epochs", None):
            return True  # the epoch-activation window is open
        if not self.cabal_holds_seat():
            return True
        return now_ms - self._parked[0][0] >= self.max_park_ms

    def _poisoned(self, message: CheckpointMessage) -> CheckpointMessage:
        return dataclasses.replace(
            message,
            state_digest=digest("colluding-poison", self.node_id,
                                message.sequence))

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out: List[Delivery] = []
        if self._release_due(now_ms):
            for _, delivery in self._parked:
                out.append(delivery)
                if self.poison and isinstance(delivery.message, CheckpointMessage):
                    out.append(Delivery(delivery.receiver,
                                        self._poisoned(delivery.message),
                                        delivery.delay_ms))
            self.released += len(self._parked)
            self._parked.clear()
        parking = (self.cabal_holds_seat()
                   and len(self._parked) < self.max_parked)
        for delivery in deliveries:
            if parking and isinstance(delivery.message, CheckpointMessage):
                self._parked.append((now_ms, delivery))
            else:
                out.append(delivery)
        return out


class ColludingReconfigAbuser(ColludingBehavior):
    """Proposes a membership change that would strand the honest quorum.

    At ``at_ms`` the conspirator fabricates a
    :class:`~repro.protocols.epoch.ReconfigRecord` removing ``f + 1``
    honest (non-cabal) members of the epoch its own replica currently
    sits in — a change that leaves fewer than ``2 f_old + 1`` old
    members surviving, so an activated version would let the cabal
    outvote the honest remainder.  The record is injected as an ordinary
    retransmitted client request to every member, so the honest primary
    orders it through the normal batch path like any reconfiguration;
    every honest replica then refuses it at execution (the
    quorum-continuity rule of ``reconfig_record_valid``) and journals
    the refusal, which the epoch-aware auditor cross-checks.  The abuse
    is a safety probe only: the run must stay live, and any *legal*
    records in the same run must still activate.
    """

    def __init__(self, at_ms: float = 20.0) -> None:
        super().__init__()
        self.at_ms = at_ms
        self.sent_records = 0

    def _unsafe_record(self, now_ms: float):
        from repro.protocols.epoch import make_reconfig_record

        replica = self.replica
        if replica is None:
            return None, ()
        epoch = getattr(replica, "epoch", 0)
        members = list(replica.config.membership(epoch))
        cabal = (set(self._playbook.members) if self._playbook is not None
                 else {self.node_id})
        honest = [rid for rid in members if rid not in cabal]
        f_old = (len(members) - 1) // 3
        victims = honest[: f_old + 1]
        if not victims:
            return None, ()
        record = make_reconfig_record(new_epoch=epoch + 1, remove=victims,
                                      created_at_ms=now_ms)
        return record, tuple(members)

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        if self.sent_records or now_ms < self.at_ms:
            return deliveries
        record, members = self._unsafe_record(now_ms)
        if record is None:
            return deliveries
        from repro.protocols.client_messages import ClientRequestMessage

        self.sent_records += 1
        request = ClientRequestMessage(batch=record,
                                       reply_to=f"byz:{self.node_id}",
                                       retransmission=True)
        out = list(deliveries)
        for receiver in members:
            out.append(Delivery(receiver, request))
        return out


class MessageDelayer(ByzantineBehavior):
    """Delays every outgoing message by a (deterministically jittered) lag.

    Models a slow-but-correct Byzantine replica trying to push the system
    into timeout-driven paths without ever being provably faulty.
    """

    def __init__(self, delay_ms: float = 40.0, jitter_ms: float = 0.0) -> None:
        super().__init__()
        self.delay_ms = delay_ms
        self.jitter_ms = jitter_ms

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out = []
        for delivery in deliveries:
            extra = self.delay_ms
            if self.jitter_ms > 0:
                extra += self.rng.random() * self.jitter_ms
            out.append(Delivery(delivery.receiver, delivery.message,
                                delivery.delay_ms + extra))
        return out


class MessageReplayer(ByzantineBehavior):
    """Replays previously sent messages alongside the live traffic.

    Every ``replay_every``-th fan-out additionally re-sends one message
    drawn deterministically from a bounded history.  Honest protocols must
    treat duplicates idempotently (vote sets, seen-batch sets), so replay
    alone should never violate safety — the auditor verifies that.
    """

    def __init__(self, replay_every: int = 4, history: int = 64,
                 replay_delay_ms: float = 5.0) -> None:
        super().__init__()
        self.replay_every = max(1, replay_every)
        self.history = max(1, history)
        self.replay_delay_ms = replay_delay_ms
        self._sent: List[Delivery] = []
        self._fanouts = 0

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out = list(deliveries)
        self._fanouts += 1
        if self._sent and self._fanouts % self.replay_every == 0:
            victim = self._sent[self.rng.randrange(len(self._sent))]
            out.append(Delivery(victim.receiver, victim.message,
                                self.replay_delay_ms))
        for delivery in deliveries:
            self._sent.append(delivery)
        if len(self._sent) > self.history:
            del self._sent[: len(self._sent) - self.history]
        return out


class StaleCertifier(ByzantineBehavior):
    """A PoE primary that certifies selectively, with stale/garbage proofs.

    For every :class:`PoeCertify`, one deterministic *victim* replica
    receives the real certificate while everyone else gets either the
    certificate of a previous slot (stale) or none at all (garbage),
    alternating per slot.  Correct replicas verify the threshold signature
    against the slot digest and reject the bad proofs, so consensus stalls
    and a view change replaces the primary — but the victim view-commits
    and speculatively executes alone.  This is the nastiest certificate
    attack in the repertoire: the view change must either adopt the
    victim's certified slots or cleanly supersede its pending speculation
    (the regression that bug-fixed ``_enter_new_view``'s stale-slot
    eviction order).
    """

    def __init__(self) -> None:
        super().__init__()
        self.victim: str = ""
        self._previous_certificate = None
        self._stale_for_slot = None
        self._tampered_slots: Set[Tuple[int, int]] = set()

    def on_bind(self) -> None:
        others = sorted(r for r in self.replica_ids if r != self.node_id)
        self.victim = others[self.rng.randrange(len(others))] if others else ""

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out: List[Delivery] = []
        for delivery in deliveries:
            message = delivery.message
            if isinstance(message, PoeCertify) and delivery.receiver != self.victim:
                slot = (message.view, message.sequence)
                if slot not in self._tampered_slots:
                    self._tampered_slots.add(slot)
                    self._previous_certificate, stale = (
                        message.certificate, self._previous_certificate)
                    self._stale_for_slot = (stale if len(self._tampered_slots) % 2
                                            else None)
                message = dataclasses.replace(message,
                                              certificate=self._stale_for_slot)
            out.append(Delivery(delivery.receiver, message, delivery.delay_ms))
        return out


def _forged_vc_batch(owner: str, sequence: int) -> RequestBatch:
    """A deterministic fabricated batch for a forged view-change history."""
    return RequestBatch(
        batch_id=f"byzvc:{owner}:{sequence}",
        transactions=(Transaction(txn_id=f"byzvc:{owner}:{sequence}:0",
                                  client_id=owner, operations=(),
                                  created_at_ms=0.0),),
        created_at_ms=0.0,
    )


class ForgedHistoryReplica(ByzantineBehavior):
    """A replica that forges view-change histories it never held.

    This is the corner "On the Correctness of Speculative Consensus"
    dissects for PoE-style speculation: a Byzantine *replica* (not the
    primary) answers a view change with a fabricated history — claiming a
    stable checkpoint of ``-1`` and a consecutive run of forged batches
    from slot 0 — below the durable anchor the honest requests prove.
    Before per-slot commit certificates and the certified-or-``f+1``
    support rule, reconciliation resolved sub-anchor slots by bare
    support plurality, so a single forged request could hand a *lagging*
    honest replica fabricated batches for slots the quorum had already
    settled differently: a divergent prefix the auditor flags.

    The behaviour is replica-level: :meth:`install` keeps a reference to
    the replica, so the forgery tracks its live view and checkpoint state,
    and — for Zyzzyva — fabricates the proof of misbehaviour that starts
    the view change in the first place (replicas accept a structurally
    conflicting POM from any sender; a forged one is the documented
    spurious-view-change liveness nuisance).

    With ``forge_certificates`` the forged entries additionally carry
    fabricated commit certificates naming real replicas: these pass the
    structural checks but collide with what up-to-date honest replicas
    know about the slots (at most one genuine certificate can exist per
    slot), so certificate-carrying admission rejects the whole request.
    """

    FORGE_TYPES = (ZyzzyvaViewChange, PoeViewChangeRequest, PbftViewChange)

    def __init__(self, forge_certificates: bool = False,
                 pom_at_ms: float = 40.0, depth: int = 64) -> None:
        super().__init__()
        self.forge_certificates = forge_certificates
        self.pom_at_ms = pom_at_ms
        self.depth = depth
        self.replica = None
        self._pom_sent = False

    def install(self, replica) -> None:
        self.replica = replica

    # ------------------------------------------------------------- forgeries
    def _forged_commit_certificate(self, sequence: int,
                                   batch: RequestBatch) -> ZyzzyvaCommitCertificate:
        responders = tuple(sorted(self.replica_ids)[: max(
            1, 2 * ((len(self.replica_ids) - 1) // 3) + 1)])
        return ZyzzyvaCommitCertificate(
            batch_id=batch.batch_id, view=0, sequence=sequence,
            result_digest=modelled_result_digest(sequence, batch),
            responders=responders, client_id=f"byz:{self.node_id}",
        )

    def _forge_zyzzyva_request(self, message: ZyzzyvaViewChange) -> ZyzzyvaViewChange:
        top = min(self.depth,
                  max(message.stable_checkpoint + len(message.executed), 0))
        entries = []
        history = digest("zyzzyva-history", "genesis")
        for sequence in range(top + 1):
            batch = _forged_vc_batch(self.node_id, sequence)
            history = digest("zyzzyva-history", history, sequence, batch.digest())
            entries.append(ZyzzyvaHistoryEntry(
                sequence=sequence, view=message.view, batch=batch,
                history_digest=history,
                commit_certificate=(self._forged_commit_certificate(sequence, batch)
                                    if self.forge_certificates else None),
            ))
        return dataclasses.replace(
            message, stable_checkpoint=-1, checkpoint_digest=b"",
            commit_certificate=None, executed=tuple(entries),
        )

    def _forge_pbft_request(self, message: PbftViewChange) -> PbftViewChange:
        """Forge a PBFT VIEW-CHANGE claiming a fabricated executed prefix.

        Honest PBFT requests only carry entries *above* their own stable
        checkpoint, so a forged request claiming ``stable_checkpoint = -1``
        with a consecutive run from slot 0 is the unique witness for every
        sub-anchor slot — the first-writer-wins new-view union would adopt
        it wholesale (the PR-5 residual this PR closes with support-ranked
        selection).
        """
        top = min(self.depth,
                  max(message.stable_checkpoint + len(message.executed), 0))
        entries = []
        for sequence in range(top + 1):
            batch = _forged_vc_batch(self.node_id, sequence)
            entries.append(PbftExecutedEntry(
                sequence=sequence, view=0,
                batch_digest=digest("pbft", 0, sequence, batch.digest()),
                batch=batch, committers=(),
            ))
        return dataclasses.replace(
            message, stable_checkpoint=-1, executed=tuple(entries))

    def _forge_poe_request(self, message: PoeViewChangeRequest) -> PoeViewChangeRequest:
        top = min(self.depth,
                  max(message.stable_checkpoint + len(message.executed), 0))
        entries = []
        for sequence in range(top + 1):
            batch = _forged_vc_batch(self.node_id, sequence)
            entries.append(CertifiedEntry(
                sequence=sequence, view=message.view,
                proposal_digest=poe_proposal_digest(sequence, message.view,
                                                    batch.digest()),
                batch=batch, certificate=None,
            ))
        return dataclasses.replace(
            message, stable_checkpoint=-1, executed=tuple(entries))

    def _fabricated_pom(self) -> Optional[ZyzzyvaProofOfMisbehaviour]:
        replica = self.replica
        if replica is None or not hasattr(replica, "_spec_history"):
            return None  # only Zyzzyva replicas have a POM to forge
        if replica.checkpoints.stable_sequence < 0:
            # The forgery targets slots *below* the durable anchor; firing
            # the view change before any checkpoint stabilised would leave
            # nothing below the anchor to rewrite.
            return None
        view = replica.view
        return ZyzzyvaProofOfMisbehaviour(
            view=view,
            evidence=((view, 0, f"byzvc:{self.node_id}:a", b"\x01"),
                      (view, 0, f"byzvc:{self.node_id}:b", b"\x02")),
            client_id=f"byz:{self.node_id}",
        )

    # ------------------------------------------------------------- transform
    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out: List[Delivery] = []
        for delivery in deliveries:
            message = delivery.message
            if isinstance(message, ZyzzyvaViewChange):
                message = self._forge_zyzzyva_request(message)
            elif isinstance(message, PoeViewChangeRequest):
                message = self._forge_poe_request(message)
            elif isinstance(message, PbftViewChange):
                message = self._forge_pbft_request(message)
            out.append(Delivery(delivery.receiver, message, delivery.delay_ms))
        if not self._pom_sent and now_ms >= self.pom_at_ms:
            pom = self._fabricated_pom()
            if pom is not None:
                self._pom_sent = True
                # Including itself makes the forger join the view change
                # it provoked immediately, so its forged request is on the
                # wire in the same window as the honest requests.
                for receiver in sorted(self.replica_ids):
                    out.append(Delivery(receiver, pom))
        return out


class LyingCheckpointer(ByzantineBehavior):
    """A replica that serves corrupted checkpoint/state-transfer state.

    Two attacks in one behaviour:

    * every :class:`StateTransferResponse` this replica serves is
      *poisoned* — garbage state digest and head hash, emptied snapshot —
      modelling a checkpointer that answers a lagging replica's transfer
      request with fabricated state;
    * alongside each of its own checkpoint broadcasts it pushes an
      **unsolicited** fabricated response to every peer, claiming a
      checkpoint ``lie_ahead`` slots in the future: a receiver that
      installs unvalidated transfers fast-forwards onto a state the
      system never reached and silently skips the real slots in between
      (the auditor's ``unvouched-state-transfer`` check pins this down).

    With state-transfer responses validated against ``f + 1`` matching
    checkpoint votes, both poisons are rejected (or parked forever) and
    the victim re-requests from the honest membership.
    """

    def __init__(self, lie_ahead: int = 10) -> None:
        super().__init__()
        self.lie_ahead = lie_ahead
        self._poisoned_sequences: Set[int] = set()

    def _poison(self, message: StateTransferResponse) -> StateTransferResponse:
        return dataclasses.replace(
            message,
            state_digest=digest("byz-checkpoint", self.node_id, message.sequence),
            head_hash=digest("byz-head", self.node_id, message.sequence),
            table_snapshot=None,
        )

    def _fabricated_response(self, sequence: int) -> StateTransferResponse:
        return StateTransferResponse(
            sequence=sequence, view=0,
            state_digest=digest("byz-checkpoint", self.node_id, sequence),
            head_hash=digest("byz-head", self.node_id, sequence),
            table_snapshot=None,
        )

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        out: List[Delivery] = []
        fabricated: List[Delivery] = []
        for delivery in deliveries:
            message = delivery.message
            if isinstance(message, StateTransferResponse):
                message = self._poison(message)
            elif isinstance(message, CheckpointMessage):
                claimed = message.sequence + self.lie_ahead
                if claimed not in self._poisoned_sequences:
                    self._poisoned_sequences.add(claimed)
                    for receiver in sorted(r for r in self.replica_ids
                                           if r != self.node_id):
                        fabricated.append(Delivery(
                            receiver, self._fabricated_response(claimed)))
            out.append(Delivery(delivery.receiver, message, delivery.delay_ms))
        out.extend(fabricated)
        return out


class WrongExecutionReplica(ByzantineBehavior):
    """A replica that executes a divergent batch at one consensus slot.

    The replica's network behaviour stays honest; :meth:`install` wraps
    its ``commit_slot`` so that exactly one slot (``target_slot``) commits
    a fabricated batch in place of the agreed one.  From then on its
    ledger, replies and checkpoint digests diverge while its *height*
    matches the quorum — the case the checkpoint layer historically could
    not repair, because state transfer only triggered for replicas that
    were behind.  With same-height divergence detection the replica spots
    the stable checkpoint contradicting its own journaled digest, excises
    the divergent suffix and resyncs onto the quorum state.
    """

    def __init__(self, target_slot: int = 2) -> None:
        super().__init__()
        self.target_slot = target_slot
        self.forged_executions = 0

    def install(self, replica) -> None:
        behavior = self
        original = replica.commit_slot

        def wrong_commit_slot(sequence, view, batch, proof=None, now_ms=0.0,
                              speculative=False):
            if (sequence == behavior.target_slot and batch is not None
                    and behavior.forged_executions == 0
                    and sequence > replica.last_executed_sequence):
                behavior.forged_executions += 1
                transactions = tuple(
                    Transaction(txn_id=f"byzexec:{behavior.node_id}:{i}",
                                client_id=behavior.node_id, operations=(),
                                created_at_ms=batch.created_at_ms)
                    for i in range(len(batch.transactions))
                )
                batch = RequestBatch(
                    batch_id=f"byzexec:{behavior.node_id}:{sequence}",
                    transactions=transactions,
                    created_at_ms=batch.created_at_ms,
                    reply_to=batch.reply_to,
                    logical_size=batch.logical_size,
                )
            return original(sequence=sequence, view=view, batch=batch,
                            proof=proof, now_ms=now_ms, speculative=speculative)

        replica.commit_slot = wrong_commit_slot


class EquivocatingCoordinator(ByzantineBehavior):
    """A cross-shard 2PC coordinator equivocating commit/abort per shard.

    Runs the honest coordinator state machine, but at the network boundary
    rewrites the COMMIT decide record addressed to the highest touched
    shard of every cross-shard transaction into an (uncertified) ABORT —
    the textbook split-decision attack: sibling shards are told to commit
    while one shard is told to abort.  The forged abort carries no
    certificate (the coordinator only ever gathered *prepared*
    attestations, which justify commit, not abort), so shard replicas that
    validate decide certificates reject it and the client pool's recovery
    path re-drives the transaction to the decision the certificates
    actually support.  Remove the validation and the forgery lands —
    which is exactly what the auditor's cross-shard atomicity check exists
    to flag (see the revert demo in ``tests/test_sharding.py``).
    """

    def __init__(self) -> None:
        super().__init__()
        self.forged_aborts = 0

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        from repro.protocols.client_messages import ClientRequestMessage
        from repro.workload.xshard import ABORT, COMMIT, make_control_batch

        out: List[Delivery] = []
        for delivery in deliveries:
            message = delivery.message
            if isinstance(message, ClientRequestMessage):
                batch = message.batch
                if (batch is not None and batch.control_phase == COMMIT
                        and len(batch.shards) > 1
                        and batch.shard == max(batch.shards)):
                    self.forged_aborts += 1
                    forged = make_control_batch(
                        txn=batch.txn, phase=ABORT, shard=batch.shard,
                        shards=batch.shards, cert=(),
                        reply_to=batch.reply_to,
                        created_at_ms=batch.created_at_ms,
                        logical_size=batch.logical_size,
                    )
                    out.append(Delivery(
                        delivery.receiver,
                        dataclasses.replace(message, batch=forged),
                        delivery.delay_ms,
                    ))
                    continue
            out.append(delivery)
        return out


class StallingCoordinator(ByzantineBehavior):
    """A 2PC coordinator that prepares every shard, then goes silent.

    Prepare records go out honestly — every touched shard locks the
    transaction — but all decide records are dropped at the network
    boundary, leaving the transaction prepared-everywhere with no
    decision.  Liveness then rests entirely on the client pool's
    presumed-abort recovery: probe the shards, observe
    prepared-everywhere, and drive the commit itself with the probe
    replies as the certificate.
    """

    def __init__(self) -> None:
        super().__init__()
        self.stalled_decides = 0

    def transform(self, deliveries: List[Delivery], now_ms: float) -> List[Delivery]:
        from repro.protocols.client_messages import ClientRequestMessage
        from repro.workload.xshard import DECIDE_PHASES

        out: List[Delivery] = []
        for delivery in deliveries:
            message = delivery.message
            if isinstance(message, ClientRequestMessage):
                batch = message.batch
                if batch is not None and batch.control_phase in DECIDE_PHASES:
                    self.stalled_decides += 1
                    continue
            out.append(delivery)
        return out


#: Registry used by the declarative :class:`ByzantineSpec` in cluster
#: configurations (string keys keep configs picklable and seed-stable).
BEHAVIORS: Dict[str, Callable[..., ByzantineBehavior]] = {
    "equivocate": lambda **kw: EquivocatingPrimary(spoof_votes=False, **kw),
    "equivocate-spoof": lambda **kw: EquivocatingPrimary(spoof_votes=True, **kw),
    "delay": MessageDelayer,
    "replay": MessageReplayer,
    "stale-certify": StaleCertifier,
    "forge-history": ForgedHistoryReplica,
    "lying-checkpoint": LyingCheckpointer,
    "wrong-exec": WrongExecutionReplica,
    # The adaptive tier: behaviours reacting to live protocol state.
    "adaptive-primary": PrimaryTargeter,
    "checkpoint-equivocate": CheckpointEquivocator,
    "timeout-stall": TimeoutStaller,
    # The colluding tier: up to f conspirators coordinating via a playbook.
    "colluding-equivocate": ColludingEquivocator,
    "colluding-parker": ColludingVoteParker,
    "colluding-reconfig-abuse": ColludingReconfigAbuser,
    # Cross-shard 2PC coordinator behaviours (sharded clusters only).
    "equivocate-coordinator": EquivocatingCoordinator,
    "stall-coordinator": StallingCoordinator,
}


def make_behavior(name: str, **options) -> ByzantineBehavior:
    """Instantiate a registered behaviour by name."""
    try:
        factory = BEHAVIORS[name]
    except KeyError:
        raise KeyError(f"unknown byzantine behavior {name!r}; "
                       f"known: {sorted(BEHAVIORS)}") from None
    return factory(**options)


@dataclass
class ByzantineSpec:
    """Declarative description of one Byzantine replica in a cluster.

    Attributes:
        behavior: key into :data:`BEHAVIORS`.
        replica_index: index of the misbehaving replica (0 = the primary
            of view 0).
        options: keyword arguments forwarded to the behaviour factory.
    """

    behavior: str = "equivocate-spoof"
    replica_index: int = 0
    options: Dict[str, object] = field(default_factory=dict)
