"""Ledger substrate: hash-chained blocks and a rollback-capable store.

RESILIENTDB maintains an immutable blockchain ledger whose ``i``-th block
holds the sequence number, request digest, view number and the hash of the
previous block (paper, Section III-A).  PoE additionally requires replicas
to be able to *revert* speculatively executed transactions during a
view-change (Section II-C3), so the execution store keeps an undo log per
executed batch.
"""

from repro.ledger.block import Block, GENESIS_PARENT
from repro.ledger.blockchain import Blockchain
from repro.ledger.store import KeyValueStore, ExecutionResult
from repro.ledger.execution import SpeculativeExecutor, ExecutedBatch

__all__ = [
    "Block",
    "GENESIS_PARENT",
    "Blockchain",
    "KeyValueStore",
    "ExecutionResult",
    "SpeculativeExecutor",
    "ExecutedBatch",
]
