"""In-memory key-value table with undo support.

This is the execution substrate: each replica holds an identical copy of
the YCSB table (the paper initialises every replica with the same half a
million records) and applies transactions deterministically, so all
non-faulty replicas produce identical results.  Every applied transaction
records undo entries, which :class:`~repro.ledger.execution.SpeculativeExecutor`
uses to roll back speculation during a view-change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import digest
from repro.workload.transactions import OpType, Transaction


@dataclass(frozen=True)
class ExecutionResult:
    """Deterministic result of executing one transaction.

    Attributes:
        txn_id: the executed transaction's identifier.
        reads: key/value pairs observed by read operations.
        writes_applied: number of write operations applied.
    """

    txn_id: str
    reads: Tuple[Tuple[str, Optional[str]], ...] = ()
    writes_applied: int = 0

    def digest(self) -> bytes:
        return digest("result", self.txn_id, list(self.reads), self.writes_applied)


@dataclass
class UndoEntry:
    """Previous value of one key, captured before a write."""

    key: str
    previous_value: Optional[str]
    existed: bool


class KeyValueStore:
    """Deterministic in-memory key-value table."""

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._table: Dict[str, str] = dict(initial or {})
        self.applied_transactions = 0

    # -- basic access -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: str) -> Optional[str]:
        return self._table.get(key)

    def put(self, key: str, value: str) -> None:
        self._table[key] = value

    def snapshot_digest(self) -> bytes:
        """Digest of the full table (used by checkpoint messages)."""
        return digest("store", sorted(self._table.items()))

    def snapshot(self) -> Dict[str, str]:
        """A copy of the full table (used by checkpoint state transfer)."""
        return dict(self._table)

    def replace_all(self, table: Dict[str, str]) -> None:
        """Replace the table contents (installing a transferred checkpoint)."""
        self._table = dict(table)

    # -- transaction execution ----------------------------------------------------
    def apply(self, transaction: Transaction) -> Tuple[ExecutionResult, List[UndoEntry]]:
        """Apply *transaction* and return its result plus undo entries."""
        reads: List[Tuple[str, Optional[str]]] = []
        undo: List[UndoEntry] = []
        writes = 0
        for op in transaction.operations:
            if op.op_type is OpType.READ:
                reads.append((op.key, self._table.get(op.key)))
            elif op.op_type is OpType.WRITE:
                undo.append(
                    UndoEntry(
                        key=op.key,
                        previous_value=self._table.get(op.key),
                        existed=op.key in self._table,
                    )
                )
                self._table[op.key] = op.value if op.value is not None else ""
                writes += 1
        self.applied_transactions += 1
        result = ExecutionResult(
            txn_id=transaction.txn_id, reads=tuple(reads), writes_applied=writes
        )
        return result, undo

    def revert(self, undo_entries: List[UndoEntry]) -> None:
        """Revert previously applied writes (most recent first)."""
        for entry in reversed(undo_entries):
            if entry.existed:
                self._table[entry.key] = entry.previous_value or ""
            else:
                self._table.pop(entry.key, None)
