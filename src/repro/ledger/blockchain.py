"""Hash-chained, append-only (but truncatable) blockchain.

Each replica's execute thread appends one block per executed batch
(Section III-A of the paper).  Because PoE executes speculatively, a
replica may need to discard the suffix of its chain when a view-change
reveals that some executed batches were not accepted system-wide; the
:meth:`Blockchain.truncate_after` method supports exactly that, and the
paired :class:`~repro.ledger.execution.SpeculativeExecutor` reverts the
corresponding state changes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.ledger.block import Block


class InvalidBlockError(Exception):
    """Raised when appending a block that does not extend the chain."""


class Blockchain:
    """An in-memory chain of :class:`Block` objects."""

    def __init__(self, initial_primary: str = "replica:0") -> None:
        self._blocks: List[Block] = [Block.genesis(initial_primary)]

    # -- inspection -------------------------------------------------------------
    def __len__(self) -> int:
        """Number of blocks excluding the genesis block."""
        return len(self._blocks) - 1

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    @property
    def genesis(self) -> Block:
        return self._blocks[0]

    @property
    def head(self) -> Block:
        """The most recently appended block (genesis if the chain is empty)."""
        return self._blocks[-1]

    def block_at(self, sequence: int) -> Optional[Block]:
        """Return the block for consensus sequence *sequence*, if present."""
        for block in self._blocks[1:]:
            if block.sequence == sequence:
                return block
        return None

    def blocks(self) -> List[Block]:
        """All non-genesis blocks in order."""
        return list(self._blocks[1:])

    # -- mutation ----------------------------------------------------------------
    def append(self, sequence: int, batch_digest: bytes, view: int,
               proof: Any = None, payload: Any = None) -> Block:
        """Create and append the next block.

        Raises:
            InvalidBlockError: if *sequence* does not directly follow the
                head block's sequence number.
        """
        expected = self.head.sequence + 1
        if sequence != expected:
            raise InvalidBlockError(
                f"expected block sequence {expected}, got {sequence}"
            )
        block = Block(
            sequence=sequence,
            batch_digest=batch_digest,
            view=view,
            parent_hash=self.head.block_hash,
            proof=proof,
            payload=payload,
        )
        self._blocks.append(block)
        return block

    def append_checkpoint(self, sequence: int, state_digest: bytes, view: int,
                          adopted_hash: Optional[bytes] = None) -> Block:
        """Append a checkpoint-sync block, skipping the missing sequences.

        Used when a lagging replica installs a transferred checkpoint: the
        block records the adopted state digest at *sequence* and is marked
        with a ``"checkpoint-sync"`` payload so :meth:`verify_chain` knows
        the sequence gap before it is intentional.  When *adopted_hash* is
        given (the source chain's block hash at *sequence*, vouched through
        the checkpoint digest) the sync block re-joins the canonical hash
        chain, so the receiver's subsequent state digests match the
        quorum's again.
        """
        if sequence <= self.head.sequence:
            raise InvalidBlockError(
                f"checkpoint sequence {sequence} does not advance the chain "
                f"(head is {self.head.sequence})"
            )
        block = Block(
            sequence=sequence,
            batch_digest=state_digest,
            view=view,
            parent_hash=self.head.block_hash,
            payload="checkpoint-sync",
            adopted_hash=adopted_hash,
        )
        self._blocks.append(block)
        return block

    def truncate_after(self, sequence: int) -> List[Block]:
        """Discard every block with a sequence number greater than *sequence*.

        Returns the removed blocks (most recent last).  Used when a
        view-change rolls back speculative execution.
        """
        kept: List[Block] = []
        removed: List[Block] = []
        for block in self._blocks:
            if block.sequence > sequence:
                removed.append(block)
            else:
                kept.append(block)
        self._blocks = kept
        return removed

    # -- validation ---------------------------------------------------------------
    def verify_chain(self) -> bool:
        """Check hash-chaining and sequence continuity of the whole ledger."""
        previous = self._blocks[0]
        for block in self._blocks[1:]:
            if block.parent_hash != previous.block_hash:
                return False
            if block.payload == "checkpoint-sync":
                if block.sequence <= previous.sequence:
                    return False
            elif block.sequence != previous.sequence + 1:
                return False
            previous = block
        return True
