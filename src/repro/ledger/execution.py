"""Speculative execution journal: execute, record, roll back.

PoE replicas execute a batch as soon as it is view-committed — before the
system as a whole is guaranteed to keep it (paper, ingredient I1).  The
:class:`SpeculativeExecutor` therefore keeps, per executed sequence
number, the undo entries and the ledger block it created, so a
view-change can call :meth:`rollback_to` and restore the exact state as
of any earlier sequence number (ingredient I2, "safe rollbacks").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import digest
from repro.ledger.blockchain import Blockchain
from repro.ledger.store import ExecutionResult, KeyValueStore, UndoEntry
from repro.workload.transactions import RequestBatch


def modelled_result_digest(sequence: int, batch: RequestBatch) -> bytes:
    """The deterministic result digest of cost-modelled execution.

    Exposed so protocol code (e.g. Zyzzyva's commit-certificate admission
    check) can re-derive what executing *batch* at *sequence* must have
    produced when operations are not really applied.
    """
    return digest("results-modelled", sequence, batch.digest())


@dataclass
class ExecutedBatch:
    """Record of one speculatively executed batch.

    Attributes:
        sequence: consensus sequence number ``k``.
        view: view in which the batch was certified.
        batch: the executed request batch.
        results: per-transaction execution results (empty if execution was
            cost-modelled rather than applied).
        result_digest: digest of the results, included in INFORM messages.
        undo: undo entries needed to revert this batch.
    """

    sequence: int
    view: int
    batch: RequestBatch
    results: Tuple[ExecutionResult, ...]
    result_digest: bytes
    undo: List[UndoEntry] = field(default_factory=list)


class SpeculativeExecutor:
    """Executes batches in sequence order and supports rollback.

    Args:
        store: the replica's key-value table.
        blockchain: the replica's ledger (one block appended per batch).
        apply_operations: if ``False``, transactions are not really applied
            (their execution is cost-modelled by the simulator); results
            are then deterministic digests of the batch alone, which keeps
            replicas mutually consistent.
    """

    def __init__(self, store: KeyValueStore, blockchain: Blockchain,
                 apply_operations: bool = True) -> None:
        self.store = store
        self.blockchain = blockchain
        self.apply_operations = apply_operations
        self._executed: Dict[int, ExecutedBatch] = {}
        self.last_executed_sequence = -1

    # -- inspection --------------------------------------------------------------
    @property
    def executed_sequences(self) -> List[int]:
        return sorted(self._executed)

    def executed(self, sequence: int) -> Optional[ExecutedBatch]:
        return self._executed.get(sequence)

    def state_digest(self) -> bytes:
        """Digest summarising store state and ledger head (checkpoints)."""
        return digest("state", self.last_executed_sequence,
                      self.blockchain.head.block_hash,
                      self.store.snapshot_digest() if self.apply_operations else b"")

    # -- execution ----------------------------------------------------------------
    def execute(self, sequence: int, view: int, batch: RequestBatch,
                proof: object = None) -> ExecutedBatch:
        """Execute *batch* as consensus slot *sequence*.

        Raises:
            ValueError: if *sequence* is not the next sequence in order
                (callers must respect the paper's in-order execution rule).
        """
        if sequence != self.last_executed_sequence + 1:
            raise ValueError(
                f"out-of-order execution: expected {self.last_executed_sequence + 1}, "
                f"got {sequence}"
            )
        results: List[ExecutionResult] = []
        undo: List[UndoEntry] = []
        if self.apply_operations:
            for txn in batch.transactions:
                result, txn_undo = self.store.apply(txn)
                results.append(result)
                undo.extend(txn_undo)
            result_digest = digest("results", [r.digest() for r in results])
        else:
            result_digest = modelled_result_digest(sequence, batch)
        block = self.blockchain.append(
            sequence=sequence, batch_digest=batch.digest(), view=view, proof=proof,
            payload=batch.batch_id,
        )
        record = ExecutedBatch(
            sequence=sequence, view=view, batch=batch,
            results=tuple(results), result_digest=result_digest, undo=undo,
        )
        self._executed[sequence] = record
        self.last_executed_sequence = sequence
        return record

    # -- state transfer ------------------------------------------------------------
    def fast_forward(self, sequence: int, view: int, state_digest: bytes,
                     table_snapshot: Optional[Dict[str, str]] = None,
                     head_hash: Optional[bytes] = None) -> bool:
        """Install a transferred checkpoint, skipping missed sequences.

        Used when a replica fell behind (e.g. it was kept in the dark by a
        malicious primary) and the checkpoint protocol proves that the
        system as a whole progressed to *sequence*.  Returns ``False`` if
        the checkpoint does not advance this replica's state.
        """
        if sequence <= self.last_executed_sequence:
            return False
        if self.apply_operations and table_snapshot is not None:
            self.store.replace_all(table_snapshot)
        self.blockchain.append_checkpoint(sequence, state_digest, view,
                                          adopted_hash=head_hash)
        for stale in [s for s in self._executed if s > sequence]:
            # Anything recorded above the checkpoint was speculative and is
            # superseded by the transferred state.
            del self._executed[stale]
        self.last_executed_sequence = sequence
        return True

    def resync(self, sequence: int, view: int, state_digest: bytes,
               table_snapshot: Optional[Dict[str, str]] = None,
               divergent_from: int = 0,
               head_hash: Optional[bytes] = None) -> None:
        """Replace a divergent executed suffix with a transferred checkpoint.

        :meth:`fast_forward` only helps a replica that is *behind*; a
        replica that executed a **wrong** batch sits at the same height as
        the stable checkpoint it disagrees with, so repair must excise the
        divergent suffix (everything from *divergent_from* upward — blocks,
        journal entries and, when operations are applied, table state) and
        install the quorum-vouched checkpoint in its place.  The divergent
        blocks are removed rather than merely superseded: the ledger must
        not retain an executed batch the system never agreed on.
        """
        for stale in [s for s in self._executed if s >= divergent_from]:
            del self._executed[stale]
        self.blockchain.truncate_after(divergent_from - 1)
        if self.apply_operations and table_snapshot is not None:
            self.store.replace_all(table_snapshot)
        self.blockchain.append_checkpoint(sequence, state_digest, view,
                                          adopted_hash=head_hash)
        self.last_executed_sequence = sequence

    # -- rollback -----------------------------------------------------------------
    def rollback_to(self, sequence: int) -> List[ExecutedBatch]:
        """Revert every batch executed after *sequence*.

        Returns the reverted batches, most recently executed first, and
        truncates the ledger accordingly.  ``rollback_to(-1)`` reverts
        everything.
        """
        reverted: List[ExecutedBatch] = []
        for seq in sorted(self._executed, reverse=True):
            if seq <= sequence:
                break
            record = self._executed.pop(seq)
            if self.apply_operations:
                self.store.revert(record.undo)
            reverted.append(record)
        self.blockchain.truncate_after(sequence)
        self.last_executed_sequence = min(self.last_executed_sequence, sequence)
        return reverted

    # -- checkpointing --------------------------------------------------------------
    def prune_before(self, sequence: int) -> None:
        """Forget undo information for batches at or below *sequence*.

        Called once a checkpoint is stable: those batches can no longer be
        rolled back (they are durable system-wide), so their undo logs are
        garbage-collected — this is what keeps view-change messages small.
        """
        for seq in [s for s in self._executed if s <= sequence]:
            self._executed[seq].undo = []
