"""Blocks of the replicated ledger.

A block ``B_i = {k, d, v, H(B_{i-1})}`` records the sequence number ``k``
of a committed batch, the digest ``d`` of that batch, the view ``v`` in
which it was certified, and the hash of the previous block (paper,
Section III-A).  Blocks optionally carry the *proof of acceptance* — in
PoE the aggregated threshold signature from the CERTIFY message — which
lets the chain be audited without re-running consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.hashing import digest

#: Parent hash used by the genesis block.
GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class Block:
    """One block in the replicated ledger.

    Attributes:
        sequence: consensus sequence number ``k`` of the batch.
        batch_digest: digest ``d`` of the batch of client requests.
        view: view number ``v`` in which the batch was certified.
        parent_hash: hash of the previous block.
        proof: protocol-specific acceptance proof (e.g. the PoE threshold
            signature); not included in the block hash so that replicas
            aggregating different-but-valid share subsets still agree.
        payload: optional opaque payload (the batch itself, results, ...).
    """

    sequence: int
    batch_digest: bytes
    view: int
    parent_hash: bytes
    proof: Any = None
    payload: Any = None
    #: Checkpoint-sync blocks adopt the *source* chain's head hash (the
    #: hash is quorum-vouched through the checkpoint state digest), so a
    #: transferred replica rejoins the canonical hash chain instead of
    #: forking onto a private one whose digests never match the quorum
    #: again.
    adopted_hash: Optional[bytes] = None

    @property
    def block_hash(self) -> bytes:
        """Hash chaining this block to its parent."""
        if self.adopted_hash is not None:
            return self.adopted_hash
        return digest("block", self.sequence, self.batch_digest, self.view,
                      self.parent_hash)

    @classmethod
    def genesis(cls, initial_primary: str) -> "Block":
        """Create the genesis block.

        The paper uses the hash of the initial primary's identity as the
        genesis content because every replica knows it without extra
        communication (Section III-A).
        """
        return cls(
            sequence=-1,
            batch_digest=digest("genesis", initial_primary),
            view=0,
            parent_hash=GENESIS_PARENT,
        )
