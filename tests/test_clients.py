"""Tests for client pools: load generation, completion rules, retransmission."""

import pytest

from repro.protocols.base import NodeConfig
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.workload.clients import (
    ClientPool,
    ClosedLoopClient,
    synthetic_batch_source,
)

REPLICAS = [f"replica:{i}" for i in range(4)]


def make_pool(**kwargs):
    config = NodeConfig(replica_ids=list(REPLICAS), batch_size=10,
                        request_timeout_ms=100.0)
    defaults = dict(completion_quorum=3, target_outstanding=2, total_batches=5)
    defaults.update(kwargs)
    return ClientPool("client:0", config, **defaults), config


def reply(batch_id, replica, digest=b"r", view=0, sequence=0):
    return ClientReplyMessage(batch_id=batch_id, view=view, sequence=sequence,
                              result_digest=digest, replica_id=replica)


class TestLoadGeneration:
    def test_start_fills_pipeline_to_target(self):
        pool, _ = make_pool(target_outstanding=3)
        output = pool.start(0.0)
        assert pool.outstanding == 3
        assert len(output.sends()) == 3
        assert len(output.timers()) == 3

    def test_requests_go_to_current_primary(self):
        pool, _ = make_pool()
        output = pool.start(0.0)
        assert all(send.to == "replica:0" for send in output.sends())

    def test_broadcast_mode_sends_to_all_replicas(self):
        pool, _ = make_pool(broadcast_requests=True, target_outstanding=1)
        output = pool.start(0.0)
        assert len(output.broadcasts()) == 1

    def test_completion_triggers_next_submission(self):
        pool, _ = make_pool(target_outstanding=1, total_batches=3)
        pool.start(0.0)
        first = list(pool._pending)[0]
        for i in range(3):
            pool.deliver(f"replica:{i}", reply(first, f"replica:{i}"), 1.0)
        assert pool.completed_batches == 1
        assert pool.outstanding == 1  # the next batch was submitted

    def test_pool_stops_after_total_batches(self):
        pool, _ = make_pool(target_outstanding=2, total_batches=2)
        pool.start(0.0)
        for batch_id in list(pool._pending):
            for i in range(3):
                pool.deliver(f"replica:{i}", reply(batch_id, f"replica:{i}"), 2.0)
        assert pool.is_done()
        assert pool.outstanding == 0

    def test_unbounded_pool_is_never_done(self):
        pool, _ = make_pool(total_batches=None)
        pool.start(0.0)
        assert not pool.is_done()

    def test_closed_loop_client_keeps_one_outstanding(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=10)
        client = ClosedLoopClient("client:0", config, completion_quorum=1,
                                  total_batches=5)
        client.start(0.0)
        assert client.outstanding == 1


class TestCompletionRules:
    def test_replies_from_same_replica_count_once(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for _ in range(5):
            pool.deliver("replica:1", reply(batch_id, "replica:1"), 1.0)
        assert pool.completed_batches == 0

    def test_mismatched_sequence_numbers_do_not_match(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        pool.deliver("replica:1", reply(batch_id, "replica:1", sequence=1), 1.0)
        pool.deliver("replica:2", reply(batch_id, "replica:2", sequence=2), 1.0)
        pool.deliver("replica:3", reply(batch_id, "replica:3", sequence=3), 1.0)
        assert pool.completed_batches == 0

    def test_unknown_batch_replies_ignored(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        pool.deliver("replica:1", reply("not-a-batch", "replica:1"), 1.0)
        assert pool.completed_batches == 0

    def test_completion_records_latency_and_counts(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for i in range(3):
            pool.deliver(f"replica:{i}", reply(batch_id, f"replica:{i}"), 25.0)
        record = pool.completions[0]
        assert record.latency_ms == pytest.approx(25.0)
        assert record.num_txns == 10

    def test_view_learned_from_replies(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        pool.deliver("replica:1", reply(batch_id, "replica:1", view=3), 1.0)
        assert pool.current_view == 3

    def test_forged_replica_ids_count_as_the_transport_sender(self):
        """The vectorised reply bitset stays keyed by the wire sender: one
        Byzantine replica cannot mint a quorum of forged INFORMs."""
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for forged in ("replica:1", "replica:2", "replica:3"):
            pool.deliver("replica:1", reply(batch_id, forged), 1.0)
        assert pool.completed_batches == 0
        voters = pool._pending[batch_id].replies
        assert all(votes.count == 1 for votes in voters.values())

    def test_replies_from_unknown_senders_still_count(self):
        """Senders outside the replica membership (e.g. an SBFT executor
        answering from a fresh id in tests) go through the bitset's
        overflow path rather than being dropped."""
        pool, _ = make_pool(target_outstanding=1, completion_quorum=3)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        pool.deliver("replica:1", reply(batch_id, "replica:1"), 1.0)
        pool.deliver("stranger:a", reply(batch_id, "stranger:a"), 1.0)
        pool.deliver("stranger:b", reply(batch_id, "stranger:b"), 1.0)
        assert pool.completed_batches == 1


class TestRetransmission:
    def test_timeout_broadcasts_to_all_replicas(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        output = pool.timer_fired(f"request:{batch_id}", batch_id, 150.0)
        broadcasts = output.broadcasts()
        assert len(broadcasts) == 1
        assert isinstance(broadcasts[0].message, ClientRequestMessage)
        assert broadcasts[0].message.retransmission

    def test_retransmission_uses_exponential_backoff(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        first = pool.timer_fired(f"request:{batch_id}", batch_id, 150.0)
        second = pool.timer_fired(f"request:{batch_id}", batch_id, 400.0)
        assert first.timers()[0].delay_ms < second.timers()[0].delay_ms

    def test_timeout_for_completed_batch_is_ignored(self):
        pool, _ = make_pool(target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for i in range(3):
            pool.deliver(f"replica:{i}", reply(batch_id, f"replica:{i}"), 1.0)
        output = pool.timer_fired(f"request:{batch_id}", batch_id, 150.0)
        assert output.actions == []


class TestBatchSources:
    def test_synthetic_source_produces_unique_sized_batches(self):
        source = synthetic_batch_source("client:0", 42)
        a = source(0, 1.0)
        b = source(1, 2.0)
        assert len(a) == 42
        assert a.batch_id != b.batch_id
        assert a.created_at_ms == 1.0
